//! `unimatch-cli` — the framework as a command-line tool.
//!
//! ```text
//! unimatch-cli generate  --profile ecomp --scale 0.5 --seed 7 --out log.csv
//! unimatch-cli fit       --log log.csv --out model.json
//! unimatch-cli recommend --model model.json --log log.csv --user <id> --k 10
//! unimatch-cli target    --model model.json --log log.csv --item <id> --k 10
//! unimatch-cli evaluate  --model model.json --log log.csv
//! unimatch-cli serve     --checkpoint model.json --log log.csv --addr 127.0.0.1:7878
//! unimatch-cli bench snapshot --smoke --out .
//! unimatch-cli bench diff --baseline . --current /tmp/snap
//! ```
//!
//! Logs are CSV with a `user,item,day` header; user and item ids may be
//! arbitrary strings — they are interned to dense ids and the vocabularies
//! are persisted next to the model (`<model>.users.json`,
//! `<model>.items.json`) so results translate back. The HTTP API exposed
//! by `serve` speaks the dense ids directly.

use std::collections::HashMap;
use std::process::exit;
use std::sync::Arc;
use std::time::Duration;
use unimatch_core::{
    evaluate, evaluate_ir_rerank, load_model, save_checkpoint_with_table, DurableConfig,
    ModelHandle, RerankConfig, RetrieverKind, RowFormat, ShardPolicy, UniMatch, UniMatchConfig,
};
use unimatch_data::json::Json;
use unimatch_data::vocab::Vocab;
use unimatch_data::{DatasetProfile, InteractionLog};
use unimatch_eval::ProtocolConfig;
use unimatch_rerank::{BusinessRules, RerankChain};
use unimatch_serve::{BrownoutSpec, ServeConfig, Server, ShadowSpec};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else {
        usage("missing command");
    };
    // `bench` has a positional subcommand and boolean flags, so it parses
    // its own arguments.
    if command == "bench" {
        cmd_bench(&argv[1..]);
        return;
    }
    // `loadgen` has a boolean --smoke flag, so it also parses its own argv.
    if command == "loadgen" {
        cmd_loadgen(&argv[1..]);
        return;
    }
    let flags = parse_flags(&argv[1..]);
    // every command funnels through the same compute kernels, so the thread
    // configuration is installed once, up front (0 = auto-detect)
    unimatch_parallel::Parallelism::threads(flag_or(&flags, "threads", 0)).install_global();
    match command.as_str() {
        "generate" => cmd_generate(&flags),
        "fit" => cmd_fit(&flags),
        "recommend" => cmd_recommend(&flags),
        "target" => cmd_target(&flags),
        "evaluate" => cmd_evaluate(&flags),
        "serve" => cmd_serve(&flags),
        other => usage(&format!("unknown command {other}")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: unimatch-cli <generate|fit|recommend|target|evaluate|serve|bench> [--flag value]...\n\
         \n\
         generate  --profile <books|electronics|ecomp|wcomp|large> [--scale F] [--seed N] --out FILE\n\
         fit       --log FILE --out FILE [--epochs N] [--temperature F] [--batch N] [--seed N]\n\
         \u{20}         [--run-dir DIR] [--retriever KIND] [--shards N]   (crash-safe resume)\n\
         \u{20}         [--rerank SPEC] [--rerank-rules FILE] [--store f32|f16|i8] [--mmap true]\n\
         recommend --model FILE --log FILE --user ID [--k N] [--retriever KIND] [--shards N]\n\
         \u{20}         [--rerank SPEC] [--rerank-rules FILE] [--store f32|f16|i8] [--mmap true]\n\
         target    --model FILE --log FILE --item ID [--k N] [--retriever KIND] [--shards N]\n\
         \u{20}         [--rerank SPEC] [--rerank-rules FILE] [--store f32|f16|i8] [--mmap true]\n\
         evaluate  --model FILE --log FILE [--top-n N] [--negatives N] [--seed N]\n\
         \u{20}         [--rerank SPEC] [--rerank-rules FILE]   (gates a chain before rollout:\n\
         \u{20}          prints raw vs reranked recall/NDCG/coverage/gini + popularity lift)\n\
         \u{20}         [--store-deltas true]   (per-format recall/NDCG deltas vs exact f32)\n\
         \u{20}         [--backend-deltas true] (per-index-backend IR/UT deltas vs the exact\n\
         \u{20}          oracle at realistic hnsw ef / ivf nprobe operating points)\n\
         serve     --checkpoint FILE --log FILE [--addr HOST:PORT] [--batch-window-ms F]\n\
         \u{20}         [--batch-max N] [--cache N] [--max-conns N] [--deadline-ms F]\n\
         \u{20}         [--queue-bound N] [--faults SPEC] [--fault-seed N] [--retriever KIND]\n\
         \u{20}         [--shards N] [--min-shards N] [--shard-deadline-ms F] [--obs true]\n\
         \u{20}         [--rerank SPEC] [--rerank-rules FILE] [--brownout LADDER]\n\
         \u{20}         [--store f32|f16|i8] [--mmap true] [--shadow-sample-rate F]\n\
         \u{20}         [--shadow-ckpt FILE] [--shadow-spec 'key=value;…']\n\
         \u{20}         (KIND: exact|hnsw|ivf — the serving index backend; default hnsw)\n\
         \u{20}         (--store: row format of the serving embedding arenas — f16/i8 are\n\
         \u{20}          2×/4× smaller, scored by the fused dequant-dot kernel;\n\
         \u{20}          --mmap true memory-maps the sidecar table, zero-copy load)\n\
         \u{20}         (--shards N: split each tower's index into N row-range shards,\n\
         \u{20}          searched in parallel and merged exactly; default 1)\n\
         \u{20}         (--min-shards N: quorum — answer degraded while ≥N shards are\n\
         \u{20}          healthy; --shard-deadline-ms: per-shard time budget; defaults\n\
         \u{20}          are strict: every shard must answer, no deadline)\n\
         \u{20}         (--brownout LADDER: graceful degradation under load, e.g.\n\
         \u{20}          'drop-explore,shrink-overfetch,shed;high=64;low=4' —\n\
         \u{20}          see docs/OPERATIONS.md for the grammar and tuning)\n\
         \u{20}         (SPEC: point=kind[@prob][xMAX][+SKIP];… — e.g. ann.search=latency:2000@0.5)\n\
         \u{20}         (--rerank SPEC: post-retrieval chain, stage[@w][:k=v],… —\n\
         \u{20}          e.g. 'debias@0.5,mmr@0.3,cap:category=3,explore@0.1';\n\
         \u{20}          --rerank-rules: JSON sidecar with allow/deny/categories)\n\
         \u{20}         (--shadow-sample-rate F: mirror that fraction of answered\n\
         \u{20}          queries to a second pipeline off the critical path;\n\
         \u{20}          --shadow-ckpt defaults to the primary checkpoint (an A/A);\n\
         \u{20}          --shadow-spec overrides knobs vs the primary, `;`-separated:\n\
         \u{20}          retriever|shards|min-shards|shard-deadline-ms|store|mmap|\n\
         \u{20}          rerank|rerank-rules — paired overlap@k / score-delta / lag\n\
         \u{20}          series land on /metrics as unimatch_shadow_*)\n\
         bench snapshot [--smoke] [--scale F] [--seed N] [--out DIR]\n\
         bench diff [--baseline DIR] [--current DIR] [--tolerance F] [--fail-on-regression]\n\
         loadgen   --addr HOST:PORT --qps F [--seconds F] [--concurrency N] [--k N]\n\
         \u{20}         [--route recommend|target|mixed] [--seed N] [--out DIR] [--smoke]\n\
         \u{20}         [--rerank-mix] [--retries N]\n\
         \u{20}         (open-loop Poisson load against a running unimatch-serve;\n\
         \u{20}          writes BENCH_load.json for bench diff; --rerank-mix varies\n\
         \u{20}          histories and k to exercise a server's --rerank chain;\n\
         \u{20}          --retries N: retry sheds/transport failures with backoff,\n\
         \u{20}          honoring Retry-After, behind a circuit breaker)\n\
         \n\
         every command also accepts --threads N (worker threads for the\n\
         compute kernels; 0 = auto-detect, 1 = exact sequential execution)"
    );
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--").unwrap_or_else(|| usage(&format!("expected flag, got {}", args[i])));
        let Some(value) = args.get(i + 1) else {
            usage(&format!("flag --{key} needs a value"));
        };
        out.insert(key.to_string(), value.clone());
        i += 2;
    }
    out
}

fn flag<'a>(flags: &'a HashMap<String, String>, key: &str) -> &'a str {
    flags.get(key).unwrap_or_else(|| usage(&format!("missing required --{key}"))).as_str()
}

fn flag_or<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    match flags.get(key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| usage(&format!("invalid value for --{key}: {v}"))),
    }
}

/// The serving index backend (`--retriever exact|hnsw|ivf`), defaulting to
/// the framework's configured kind.
fn retriever_flag(flags: &HashMap<String, String>) -> RetrieverKind {
    match flags.get("retriever") {
        None => RetrieverKind::default(),
        Some(v) => RetrieverKind::parse(v)
            .unwrap_or_else(|| usage(&format!("unknown retriever {v} (exact|hnsw|ivf)"))),
    }
}

/// Shard fan-out for the serving indexes (`--shards N`, default 1).
fn shards_flag(flags: &HashMap<String, String>) -> usize {
    let shards: usize = flag_or(flags, "shards", 1);
    if shards == 0 {
        usage("--shards must be at least 1");
    }
    shards
}

/// Shard failure-isolation policy (`--min-shards N` quorum +
/// `--shard-deadline-ms F`). The default (no flags) is strict: no
/// deadline, every shard must answer — the historical behavior.
fn shard_policy_flag(flags: &HashMap<String, String>) -> ShardPolicy {
    let min_shards = match flag_or(flags, "min-shards", 0usize) {
        0 => None,
        n => Some(n),
    };
    let deadline = match flag_or(flags, "shard-deadline-ms", 0.0f64) {
        ms if !(0.0..=600_000.0).contains(&ms) => {
            usage("--shard-deadline-ms must be between 0 and 600000")
        }
        0.0 => None,
        ms => Some(Duration::from_micros((ms * 1000.0) as u64)),
    };
    ShardPolicy { deadline, min_shards }
}

/// Serving-store row format (`--store f32|f16|i8`, default f32).
fn store_flag(flags: &HashMap<String, String>) -> RowFormat {
    match flags.get("store") {
        None => RowFormat::F32,
        Some(v) => RowFormat::parse(v)
            .unwrap_or_else(|| usage(&format!("unknown store format {v} (f32|f16|i8)"))),
    }
}

/// Memory-map the item table sidecar (`--mmap true`, default false).
fn mmap_flag(flags: &HashMap<String, String>) -> bool {
    flag_or(flags, "mmap", false)
}

/// The post-retrieval re-ranking pipeline (`--rerank SPEC` +
/// `--rerank-rules FILE`). The spec is validated here so a typo fails
/// with the grammar's typed error before any training or index build;
/// the rules sidecar is loaded once, up front.
fn rerank_flag(flags: &HashMap<String, String>) -> RerankConfig {
    let spec = flags.get("rerank").cloned().unwrap_or_default();
    if let Err(e) = RerankChain::parse(&spec) {
        usage(&format!("invalid --rerank spec: {e}"));
    }
    let rules = flags.get("rerank-rules").map(|path| {
        Arc::new(
            BusinessRules::load(path)
                .unwrap_or_else(|e| usage(&format!("cannot load --rerank-rules {path}: {e}"))),
        )
    });
    RerankConfig { spec, rules }
}

fn cmd_generate(flags: &HashMap<String, String>) {
    let profile = match flag(flags, "profile").to_ascii_lowercase().as_str() {
        "books" => DatasetProfile::Books,
        "electronics" => DatasetProfile::Electronics,
        "ecomp" | "e_comp" => DatasetProfile::EComp,
        "wcomp" | "w_comp" => DatasetProfile::WComp,
        "large" => DatasetProfile::Large,
        other => usage(&format!("unknown profile {other}")),
    };
    let scale: f64 = flag_or(flags, "scale", 0.5);
    let seed: u64 = flag_or(flags, "seed", 42);
    let out = flag(flags, "out");
    let log = profile.generate(scale, seed);
    let csv = unimatch_data::csv::log_to_csv(&log, None, None);
    std::fs::write(out, csv).unwrap_or_else(|e| usage(&format!("cannot write {out}: {e}")));
    println!(
        "wrote {} interactions ({} users, {} items, {} months) to {out}",
        log.len(),
        log.distinct_users(),
        log.distinct_items(),
        log.span_months()
    );
}

fn read_log(path: &str) -> (InteractionLog, Vocab, Vocab) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    unimatch_data::csv::log_from_csv(&text).unwrap_or_else(|e| usage(&e.to_string()))
}

fn vocab_paths(model_path: &str) -> (String, String) {
    (format!("{model_path}.users.json"), format!("{model_path}.items.json"))
}

/// Serializes a vocabulary in the shape serde would emit for it
/// (`{"forward": {...}, "reverse": [...]}`), via the workspace's own JSON
/// writer so the CLI works where the external crates are unavailable.
fn vocab_to_json(vocab: &Vocab) -> Vec<u8> {
    let reverse: Vec<&str> = (0..vocab.len() as u32)
        .map(|ix| vocab.external(ix).expect("dense vocab"))
        .collect();
    Json::obj(vec![
        (
            "forward",
            Json::Obj(reverse.iter().enumerate().map(|(i, s)| (s.to_string(), Json::int(i))).collect()),
        ),
        ("reverse", Json::Arr(reverse.iter().map(|s| Json::str(*s)).collect())),
    ])
    .to_bytes()
}

/// Rebuilds a vocabulary from its JSON form: `reverse` alone determines
/// the bijection, so files written by serde or by [`vocab_to_json`] both
/// load.
fn vocab_from_json(bytes: &[u8]) -> Result<Vocab, String> {
    let doc = Json::parse(bytes).map_err(|e| e.to_string())?;
    let reverse = doc
        .get("reverse")
        .and_then(Json::as_array)
        .ok_or_else(|| "vocab file has no reverse list".to_string())?;
    let mut vocab = Vocab::new();
    for entry in reverse {
        let s = entry.as_str().ok_or_else(|| "vocab entries must be strings".to_string())?;
        vocab.intern(s);
    }
    Ok(vocab)
}

fn read_vocab(path: &str) -> Vocab {
    let bytes =
        std::fs::read(path).unwrap_or_else(|e| usage(&format!("cannot read {path}: {e}")));
    vocab_from_json(&bytes).unwrap_or_else(|e| usage(&format!("bad vocab {path}: {e}")))
}

fn cmd_fit(flags: &HashMap<String, String>) {
    let (log, users, items) = read_log(flag(flags, "log"));
    let out = flag(flags, "out");
    let config = UniMatchConfig {
        epochs_per_month: flag_or(flags, "epochs", 2),
        temperature: flag_or(flags, "temperature", 0.15),
        batch_size: flag_or(flags, "batch", 64),
        seed: flag_or(flags, "seed", 42),
        parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
        retriever: retriever_flag(flags),
        shards: shards_flag(flags),
        shard_policy: shard_policy_flag(flags),
        rerank: rerank_flag(flags),
        store: store_flag(flags),
        mmap: mmap_flag(flags),
        ..Default::default()
    };
    let filtered = log.filter_min_interactions(3);
    println!(
        "fitting on {} interactions ({} after min-count filtering)…",
        log.len(),
        filtered.len()
    );
    // --run-dir switches to the crash-safe trainer: each month commits an
    // atomic checkpoint + manifest entry, so re-running the same command
    // after a crash resumes from the last completed month.
    let fitted = match flags.get("run-dir") {
        Some(run_dir) => {
            let durable = DurableConfig::new(run_dir.as_str());
            UniMatch::new(config)
                .fit_durable(filtered, &durable)
                .unwrap_or_else(|e| usage(&format!("durable fit failed: {e}")))
        }
        None => UniMatch::new(config).fit(filtered),
    };
    // the training marginals ride along in the checkpoint's optional
    // section, so a serving process can debias with the exact p̂ tables;
    // a quantized serving store also writes its sidecar table next to
    // the checkpoint (recorded in the quant_tables section)
    save_checkpoint_with_table(&fitted.model, Some(fitted.marginals()), fitted.item_store(), out)
        .unwrap_or_else(|e| usage(&format!("cannot write {out}: {e}")));
    let (up, ip) = vocab_paths(out);
    std::fs::write(&up, vocab_to_json(&users))
        .unwrap_or_else(|e| usage(&format!("cannot write {up}: {e}")));
    std::fs::write(&ip, vocab_to_json(&items))
        .unwrap_or_else(|e| usage(&format!("cannot write {ip}: {e}")));
    println!(
        "model ({} parameters) saved to {out}; vocabularies alongside",
        fitted.model.num_parameters()
    );
}

fn load_serving(flags: &HashMap<String, String>) -> (unimatch_core::FittedUniMatch, Vocab, Vocab) {
    let model_path = flag(flags, "model");
    let store_format = store_flag(flags);
    let mmap = mmap_flag(flags);
    let (model, store, marginals) =
        unimatch_core::load_checkpoint_with_format(model_path, store_format, mmap)
            .unwrap_or_else(|e| usage(&format!("cannot load {model_path}: {e}")));
    let (log, _, _) = read_log(flag(flags, "log"));
    let (up, ip) = vocab_paths(model_path);
    let users = read_vocab(&up);
    let items = read_vocab(&ip);
    let config = UniMatchConfig {
        parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
        retriever: retriever_flag(flags),
        shards: shards_flag(flags),
        shard_policy: shard_policy_flag(flags),
        rerank: rerank_flag(flags),
        store: store_format,
        mmap,
        ..Default::default()
    };
    let mut config = config;
    config.embed_dim = model.config().embed_dim;
    config.max_seq_len = model.config().max_seq_len;
    config.extractor = model.config().extractor;
    config.aggregator = model.config().aggregator;
    let fitted = UniMatch::new(config).serve_with_store_and_marginals(
        model,
        log.filter_min_interactions(3),
        store,
        marginals,
    );
    (fitted, users, items)
}

fn cmd_recommend(flags: &HashMap<String, String>) {
    let (fitted, users, items) = load_serving(flags);
    let user_ext = flag(flags, "user");
    let k: usize = flag_or(flags, "k", 10);
    let Some(user) = users.get(user_ext) else {
        usage(&format!("unknown user id {user_ext}"));
    };
    let Some(ix) = fitted.user_pool.index_of(user) else {
        usage(&format!("user {user_ext} has no usable history"));
    };
    let history = fitted.user_pool.history(ix).to_vec();
    println!("top {k} items for user {user_ext} (history of {} purchases):", history.len());
    for hit in fitted.recommend_items(&history, k) {
        let name = items.external(hit.id).unwrap_or("?");
        println!("  {name:<12} score {:+.4}", hit.score);
    }
}

fn cmd_target(flags: &HashMap<String, String>) {
    let (fitted, users, items) = load_serving(flags);
    let item_ext = flag(flags, "item");
    let k: usize = flag_or(flags, "k", 10);
    let Some(item) = items.get(item_ext) else {
        usage(&format!("unknown item id {item_ext}"));
    };
    println!("top {k} users to target for item {item_ext}:");
    for (user, score) in fitted.target_users(item, k) {
        let name = users.external(user).unwrap_or("?");
        println!("  {name:<12} score {score:+.4}");
    }
}

fn cmd_evaluate(flags: &HashMap<String, String>) {
    let model_path = flag(flags, "model");
    let model = load_model(model_path)
        .unwrap_or_else(|e| usage(&format!("cannot load {model_path}: {e}")));
    let (log, _, _) = read_log(flag(flags, "log"));
    let filtered = log.filter_min_interactions(3);
    let prepared =
        unimatch_core::PreparedData::from_log(filtered.clone(), model.config().max_seq_len);
    let protocol = ProtocolConfig {
        top_n: flag_or(flags, "top-n", 10),
        negatives: flag_or(flags, "negatives", 99),
    };
    let seed: u64 = flag_or(flags, "seed", 7);
    // --rerank SPEC gates a chain before rollout: the same model answers
    // the same full-catalog IR cases raw and through the chain, and the
    // accuracy / diversity / popularity deltas are printed side by side.
    if flags.contains_key("rerank") {
        let rerank = rerank_flag(flags);
        let config = UniMatchConfig {
            embed_dim: model.config().embed_dim,
            max_seq_len: model.config().max_seq_len,
            extractor: model.config().extractor,
            aggregator: model.config().aggregator,
            parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
            retriever: retriever_flag(flags),
            shards: shards_flag(flags),
            shard_policy: shard_policy_flag(flags),
            rerank,
            ..Default::default()
        };
        let counts = filtered.item_counts();
        let fitted = UniMatch::new(config).serve(model, filtered);
        let r = evaluate_ir_rerank(&fitted, &prepared.split, &protocol, seed, &counts);
        println!("rerank chain: {:?} ({} cases, top-{})", r.spec, r.cases, protocol.top_n);
        println!(
            "           {:>10} {:>10} {:>10} {:>10} {:>12}",
            "Recall", "NDCG", "coverage", "gini", "popularity"
        );
        for (name, side) in [("raw", &r.raw), ("reranked", &r.reranked)] {
            println!(
                "{name:<10} {:>9.2}% {:>9.2}% {:>9.2}% {:>10.4} {:>12.1}",
                100.0 * side.ir.recall,
                100.0 * side.ir.ndcg,
                100.0 * side.coverage,
                side.gini,
                side.popularity.mean
            );
        }
        println!(
            "delta      {:>+9.2}% {:>+9.2}% {:>+9.2}% {:>+10.4}  lift {:>+6.2}%",
            100.0 * (r.reranked.ir.recall - r.raw.ir.recall),
            100.0 * (r.reranked.ir.ndcg - r.raw.ir.ndcg),
            100.0 * (r.reranked.coverage - r.raw.coverage),
            r.reranked.gini - r.raw.gini,
            100.0 * r.popularity_lift()
        );
        return;
    }
    // --store-deltas true prints what each row encoding costs in end
    // metrics: one exact-retriever deployment per format answers the same
    // full-catalog IR cases, reported as deltas against the f32 oracle.
    if flag_or(flags, "store-deltas", false) {
        let config = UniMatchConfig {
            parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
            ..Default::default()
        };
        let evals = unimatch_core::evaluate_store_formats(&model, &filtered, &config, &protocol, seed);
        println!("store-format end metrics (exact retriever, top-{}):", protocol.top_n);
        println!(
            "           {:>10} {:>10} {:>12} {:>12}",
            "Recall", "NDCG", "ΔRecall", "ΔNDCG"
        );
        for e in &evals {
            println!(
                "{:<10} {:>9.2}% {:>9.2}% {:>+11.2}% {:>+11.2}%",
                e.format.name(),
                100.0 * e.ir.recall,
                100.0 * e.ir.ndcg,
                100.0 * e.delta_recall,
                100.0 * e.delta_ndcg
            );
        }
        return;
    }
    // --backend-deltas true prints what each index backend costs in end
    // metrics: one deployment materializes both towers' stores, then
    // HNSW / IVF indexes at realistic operating points answer the same
    // seeded IR and UT cases, reported as deltas against the exact
    // (brute-force) oracle over those very arenas.
    if flag_or(flags, "backend-deltas", false) {
        let config = UniMatchConfig {
            parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
            ..Default::default()
        };
        let evals =
            unimatch_core::evaluate_backend_deltas(&model, &filtered, &config, &protocol, seed);
        println!("index-backend end metrics (top-{}):", protocol.top_n);
        println!(
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "", "IR-Rec", "IR-NDCG", "UT-Rec", "UT-NDCG", "ΔIR-Rec", "ΔUT-Rec"
        );
        for e in &evals {
            println!(
                "{:<22} {:>8.2}% {:>8.2}% {:>8.2}% {:>8.2}% {:>+8.2}% {:>+8.2}%",
                e.label(),
                100.0 * e.ir.recall,
                100.0 * e.ir.ndcg,
                100.0 * e.ut.recall,
                100.0 * e.ut.ndcg,
                100.0 * e.delta_ir_recall,
                100.0 * e.delta_ut_recall
            );
        }
        return;
    }
    let out = evaluate(&model, &prepared.split, &protocol, prepared.max_seq_len, seed);
    println!(
        "IR : Recall@{} {:.2}%  NDCG@{} {:.2}%  ({} cases)",
        protocol.top_n,
        100.0 * out.ir.recall,
        protocol.top_n,
        100.0 * out.ir.ndcg,
        out.ir_cases
    );
    println!(
        "UT : Recall@{} {:.2}%  NDCG@{} {:.2}%  ({} cases)",
        protocol.top_n,
        100.0 * out.ut.recall,
        protocol.top_n,
        100.0 * out.ut.ndcg,
        out.ut_cases
    );
    println!("AVG NDCG {:.2}%", 100.0 * out.avg_ndcg());
}

/// `bench snapshot` / `bench diff` — the perf-baseline tooling
/// (`crates/bench::snapshot` + `::schema`). Parses its own argv because
/// it mixes a positional subcommand with boolean flags.
fn cmd_bench(args: &[String]) {
    let Some(sub) = args.first() else {
        usage("bench needs a subcommand: snapshot or diff");
    };
    let mut smoke = false;
    let mut fail_on_regression = false;
    let mut rest: Vec<String> = Vec::new();
    for a in &args[1..] {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--fail-on-regression" => fail_on_regression = true,
            _ => rest.push(a.clone()),
        }
    }
    let flags = parse_flags(&rest);
    unimatch_parallel::Parallelism::threads(flag_or(&flags, "threads", 0)).install_global();
    match sub.as_str() {
        "snapshot" => {
            let opts = unimatch_bench::snapshot::SnapshotOptions {
                scale: flag_or(&flags, "scale", 1.0),
                seed: flag_or(&flags, "seed", 42),
                smoke,
                threads: flag_or(&flags, "threads", 0),
                out_dir: flags.get("out").cloned().unwrap_or_else(|| ".".to_string()).into(),
            };
            let started = std::time::Instant::now();
            let paths = unimatch_bench::snapshot::run_all(&opts)
                .unwrap_or_else(|e| usage(&format!("snapshot failed: {e}")));
            for path in &paths {
                println!("wrote {} (schema-valid)", path.display());
            }
            println!(
                "snapshot complete in {:.1}s ({} mode)",
                started.elapsed().as_secs_f64(),
                if smoke { "smoke" } else { "baseline" }
            );
        }
        "diff" => {
            let baseline_dir = flags.get("baseline").cloned().unwrap_or_else(|| ".".to_string());
            let current_dir = flags.get("current").cloned().unwrap_or_else(|| ".".to_string());
            let tolerance: f64 = flag_or(&flags, "tolerance", 0.10);
            let mut regressions = 0usize;
            let mut compared = 0usize;
            for suite in unimatch_bench::schema::SUITES {
                let file = format!("BENCH_{suite}.json");
                let base_path = std::path::Path::new(&baseline_dir).join(&file);
                let cur_path = std::path::Path::new(&current_dir).join(&file);
                let (Ok(base), Ok(cur)) = (std::fs::read(&base_path), std::fs::read(&cur_path))
                else {
                    println!("{suite}: skipped ({file} missing on one side)");
                    continue;
                };
                let parse = |bytes: &[u8], path: &std::path::Path| {
                    Json::parse(bytes)
                        .unwrap_or_else(|e| usage(&format!("{}: {e}", path.display())))
                };
                let rows = unimatch_bench::schema::diff(
                    &parse(&base, &base_path),
                    &parse(&cur, &cur_path),
                    tolerance,
                )
                .unwrap_or_else(|e| usage(&format!("{suite}: {e}")));
                for row in rows {
                    compared += 1;
                    let marker = if row.regressed {
                        regressions += 1;
                        "REGRESSED"
                    } else if row.improvement > tolerance {
                        "improved"
                    } else {
                        "ok"
                    };
                    println!(
                        "{suite}/{:<28} {:>14.2} -> {:>14.2}  {:>+7.1}%  {marker}",
                        row.name,
                        row.baseline,
                        row.current,
                        100.0 * row.improvement
                    );
                }
            }
            println!(
                "{compared} metrics compared, {regressions} regressed beyond {:.0}%",
                100.0 * tolerance
            );
            if fail_on_regression && regressions > 0 {
                exit(1);
            }
        }
        other => usage(&format!("unknown bench subcommand {other}")),
    }
}

/// `loadgen` — open-loop Poisson load against a running `unimatch-serve`
/// (`crates/bench::loadgen`). Parses its own argv for the booleans
/// `--smoke` and `--rerank-mix`.
fn cmd_loadgen(args: &[String]) {
    let mut smoke = false;
    let mut rerank_mix = false;
    let mut rest: Vec<String> = Vec::new();
    for a in args {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--rerank-mix" => rerank_mix = true,
            _ => rest.push(a.clone()),
        }
    }
    let flags = parse_flags(&rest);
    let route_name = flags.get("route").map(String::as_str).unwrap_or("mixed");
    let route = unimatch_bench::loadgen::RouteMix::parse(route_name)
        .unwrap_or_else(|| usage(&format!("unknown route {route_name} (recommend|target|mixed)")));
    let opts = unimatch_bench::loadgen::LoadgenOptions {
        addr: flag(&flags, "addr").to_string(),
        qps: flag_or(&flags, "qps", if smoke { 50.0 } else { 500.0 }),
        seconds: flag_or(&flags, "seconds", if smoke { 2.0 } else { 10.0 }),
        concurrency: flag_or(&flags, "concurrency", 32),
        k: flag_or(&flags, "k", 10),
        route,
        seed: flag_or(&flags, "seed", 42),
        out_dir: flags.get("out").cloned().unwrap_or_else(|| ".".to_string()).into(),
        smoke,
        rerank_mix,
        retries: flag_or(&flags, "retries", 0),
    };
    let (report, path) = unimatch_bench::loadgen::run(&opts)
        .unwrap_or_else(|e| usage(&format!("loadgen failed: {e}")));
    println!(
        "offered {:.0} req/s for {:.1}s ({} requests, concurrency {})",
        opts.qps, opts.seconds, report.requests, opts.concurrency
    );
    println!(
        "sustained {:.0} req/s ok — p50 {:.0}µs  p99 {:.0}µs  p99.9 {:.0}µs",
        report.sustained_qps,
        report.latency_p50_us,
        report.latency_p99_us,
        report.latency_p999_us
    );
    println!(
        "shed {:.2}%  errors {:.2}%  schedule lag p99 {:.0}µs",
        100.0 * report.shed_rate,
        100.0 * report.error_rate,
        report.schedule_lag_p99_us
    );
    if opts.retries > 0 {
        println!(
            "retries {:.3}/req  breaker fast-fails {:.2}%",
            report.retry_rate,
            100.0 * report.breaker_fast_fail_rate
        );
    }
    println!("wrote {} (schema-valid)", path.display());
}

fn cmd_serve(flags: &HashMap<String, String>) {
    let checkpoint = flag(flags, "checkpoint");
    let (log, _, _) = read_log(flag(flags, "log"));
    let addr = flags.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7878".to_string());
    let window_ms: f64 = flag_or(flags, "batch-window-ms", 2.0);
    if !(0.0..=10_000.0).contains(&window_ms) {
        usage("--batch-window-ms must be between 0 and 10000");
    }
    let deadline_ms: f64 = flag_or(flags, "deadline-ms", 2_000.0);
    if !(1.0..=600_000.0).contains(&deadline_ms) {
        usage("--deadline-ms must be between 1 and 600000");
    }
    // --obs true turns on the process-global span collection so the
    // per-shard and retrieval histograms populate on /metrics (off by
    // default per the observability no-op contract)
    if flag_or(flags, "obs", false) {
        unimatch_obs::set_enabled(true);
    }
    // chaos drills: arm a deterministic fault plan for this process before
    // the server starts, so the degradation paths can be exercised live
    if let Some(spec) = flags.get("faults") {
        let seed: u64 = flag_or(flags, "fault-seed", 42);
        let plan = unimatch_faults::FaultPlan::parse(spec, seed)
            .unwrap_or_else(|e| usage(&e.to_string()));
        eprintln!("warning: fault injection armed ({} rule(s), seed {seed})", plan.rules.len());
        unimatch_faults::set_plan(plan);
    }
    let brownout = flags.get("brownout").map(|spec| {
        BrownoutSpec::parse(spec).unwrap_or_else(|e| usage(&format!("--brownout: {e}")))
    });
    let serve_cfg = ServeConfig {
        batch_window: Duration::from_micros((window_ms * 1000.0) as u64),
        max_batch: flag_or(flags, "batch-max", 64),
        cache_capacity: flag_or(flags, "cache", 4096),
        max_connections: flag_or(flags, "max-conns", 256),
        queue_bound: flag_or(flags, "queue-bound", 1024),
        request_deadline: Duration::from_micros((deadline_ms * 1000.0) as u64),
        brownout,
        ..ServeConfig::default()
    };
    let framework = UniMatch::new(UniMatchConfig {
        parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
        retriever: retriever_flag(flags),
        shards: shards_flag(flags),
        shard_policy: shard_policy_flag(flags),
        rerank: rerank_flag(flags),
        store: store_flag(flags),
        mmap: mmap_flag(flags),
        ..Default::default()
    });
    let handle = ModelHandle::from_checkpoint(framework, checkpoint, log.filter_min_interactions(3))
        .unwrap_or_else(|e| usage(&format!("cannot serve {checkpoint}: {e}")));
    // --shadow-sample-rate > 0 arms a shadow deployment: a second full
    // pipeline (checkpoint + retriever + store + rerank chain) that a
    // deterministic sample of answered query traffic is mirrored to, off
    // the critical path. Its flags start as a copy of the primary's;
    // --shadow-spec overrides individual knobs (`;`-separated so a
    // rerank chain may contain commas) and --shadow-ckpt points it at a
    // different checkpoint (defaulting to the primary's — an A/A test).
    let shadow_rate: f64 = flag_or(flags, "shadow-sample-rate", 0.0);
    if !(0.0..=1.0).contains(&shadow_rate) {
        usage("--shadow-sample-rate must be between 0 and 1");
    }
    let shadow = (shadow_rate > 0.0).then(|| {
        let mut sflags = flags.clone();
        if let Some(spec) = flags.get("shadow-spec") {
            for pair in spec.split(';').filter(|s| !s.is_empty()) {
                let Some((key, value)) = pair.split_once('=') else {
                    usage(&format!("--shadow-spec entries must be key=value, got {pair}"));
                };
                match key {
                    "retriever" | "shards" | "min-shards" | "shard-deadline-ms" | "store"
                    | "mmap" | "rerank" | "rerank-rules" => {
                        sflags.insert(key.to_string(), value.to_string());
                    }
                    other => usage(&format!(
                        "unknown --shadow-spec knob {other} (retriever|shards|min-shards|\
                         shard-deadline-ms|store|mmap|rerank|rerank-rules)"
                    )),
                }
            }
        }
        let shadow_ckpt = flags.get("shadow-ckpt").map(String::as_str).unwrap_or(checkpoint);
        let shadow_framework = UniMatch::new(UniMatchConfig {
            parallelism: unimatch_parallel::Parallelism::threads(flag_or(flags, "threads", 0)),
            retriever: retriever_flag(&sflags),
            shards: shards_flag(&sflags),
            shard_policy: shard_policy_flag(&sflags),
            rerank: rerank_flag(&sflags),
            store: store_flag(&sflags),
            mmap: mmap_flag(&sflags),
            ..Default::default()
        });
        let shadow_handle = ModelHandle::from_checkpoint(
            shadow_framework,
            shadow_ckpt,
            log.filter_min_interactions(3),
        )
        .unwrap_or_else(|e| usage(&format!("cannot shadow {shadow_ckpt}: {e}")));
        ShadowSpec::new(Arc::new(shadow_handle), shadow_rate)
    });
    let server = Server::start_with_shadow(addr.as_str(), Arc::new(handle), serve_cfg, shadow)
        .unwrap_or_else(|e| usage(&format!("cannot bind {addr}: {e}")));
    println!(
        "unimatch-serve listening on http://{} (model version {}, {} items, {} pool users)",
        server.addr(),
        server.model().version(),
        server.model().current().fitted.num_items(),
        server.model().current().fitted.num_pool_users(),
    );
    let chain = server.model().current().fitted.rerank_spec().to_string();
    println!(
        "rerank chain: {}",
        if chain.is_empty() { "identity (raw top-k)" } else { chain.as_str() }
    );
    if shadow_rate > 0.0 {
        println!(
            "shadow: mirroring {:.1}% of answered queries off the critical path \
             (paired deltas on /metrics as unimatch_shadow_*)",
            100.0 * shadow_rate
        );
    }
    println!("routes: POST /recommend /target /reload — GET /healthz /metrics");
    // serve until the process is killed
    loop {
        std::thread::park();
    }
}
