//! Facade crate for the UniMatch workspace. See `unimatch_core` for the
//! framework entry point; this crate re-exports everything and hosts the
//! runnable examples and cross-crate integration tests.
pub use unimatch_ann as ann;
pub use unimatch_bench as bench;
pub use unimatch_core as core;
pub use unimatch_data as data;
pub use unimatch_eval as eval;
pub use unimatch_faults as faults;
pub use unimatch_losses as losses;
pub use unimatch_models as models;
pub use unimatch_obs as obs;
pub use unimatch_parallel as parallel;
pub use unimatch_rerank as rerank;
pub use unimatch_serve as serve;
pub use unimatch_tensor as tensor;
pub use unimatch_train as train;
