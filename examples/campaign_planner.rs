//! Multi-campaign planning with business rules: several promotion
//! subjects (single items and a bundle), recent-buyer exclusion and a
//! per-user contact cap — the "multiple targeting lists according to
//! different promotion subjects" workflow of the paper's introduction,
//! all served by ONE model.
//!
//! ```text
//! cargo run --release --example campaign_planner
//! ```

use std::collections::HashSet;
use unimatch::core::{plan_campaigns, CampaignSpec, CampaignSubject, UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;

fn main() {
    let log = DatasetProfile::WComp.generate(0.4, 77).filter_min_interactions(3);
    println!(
        "merchant with {} customers, {} SKUs — planning this month's campaigns\n",
        log.distinct_users(),
        log.distinct_items()
    );
    let fitted = UniMatch::new(UniMatchConfig::default()).fit(log.clone());

    // pick subjects from the catalog: the two most popular items plus a
    // bundle of three mid-tail items
    let mut by_pop: Vec<(usize, u64)> = log.item_counts().into_iter().enumerate().collect();
    by_pop.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    let hero = by_pop[0].0 as u32;
    let second = by_pop[1].0 as u32;
    let bundle: Vec<u32> = by_pop[10..13].iter().map(|&(i, _)| i as u32).collect();

    let campaigns = vec![
        CampaignSpec {
            name: "hero product push".into(),
            subject: CampaignSubject::Item(hero),
            list_size: 8,
            // don't advertise what they just bought
            exclude_buyers_within_days: Some(30),
            exclude_users: HashSet::new(),
        },
        CampaignSpec {
            name: "runner-up cross-sell".into(),
            subject: CampaignSubject::Item(second),
            list_size: 8,
            exclude_buyers_within_days: Some(30),
            exclude_users: HashSet::new(),
        },
        CampaignSpec {
            name: "discovery bundle".into(),
            subject: CampaignSubject::Bundle(bundle.clone()),
            list_size: 8,
            exclude_buyers_within_days: None,
            exclude_users: HashSet::new(),
        },
    ];

    // at most 2 messages per customer this month
    let lists = plan_campaigns(&fitted, &log, &campaigns, 2);
    for list in &lists {
        println!("campaign: {}", list.name);
        for (user, score) in &list.users {
            println!("  -> customer {user:>5}  affinity {score:+.3}");
        }
        println!();
    }
    let total: usize = lists.iter().map(|l| l.users.len()).sum();
    println!(
        "{total} messages across {} campaigns, frequency-capped at 2 per \
         customer — all three lists came from the single bbcNCE model's \
         user embeddings (bundle queries are just averaged item vectors).",
        lists.len()
    );
}
