//! A realistic private-domain marketing cycle, as the paper's introduction
//! motivates: a merchant runs monthly campaigns over their own channels —
//! a personalized recommendation mail-out for loyal customers (IR) and a
//! targeted promotion list for a newly trending product (UT) — from one
//! incrementally-trained model.
//!
//! ```text
//! cargo run --release --example merchant_campaign
//! ```

use unimatch::core::{evaluate, PreparedData, UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;
use unimatch::eval::ProtocolConfig;

fn main() {
    // The merchant: a "w_comp"-like client — small catalog, huge audience.
    let profile = DatasetProfile::WComp;
    let log = profile.generate(0.5, 7).filter_min_interactions(3);
    println!("== {} — monthly campaign cycle ==", profile.name());
    println!(
        "{} purchases by {} customers over {} items\n",
        log.len(),
        log.distinct_users(),
        log.distinct_items()
    );

    // Fit once. Incremental training means next month we'd resume from
    // the checkpoint with one extra month of data — see the Fig. 3
    // experiment for what that buys.
    let framework = UniMatch::new(UniMatchConfig {
        max_seq_len: profile.max_seq_len(),
        ..UniMatchConfig::default()
    });
    let fitted = framework.fit(log.clone());

    // Campaign 1 (IR): a personalized mail-out. For three loyal customers
    // (longest histories), pick their top-3 items.
    println!("campaign 1 — personalized recommendation mail-out:");
    let mut loyal: Vec<(u32, Vec<u32>)> = log
        .timelines()
        .map(|(u, t)| (u, t.iter().map(|r| r.item).collect::<Vec<_>>()))
        .collect();
    loyal.sort_by_key(|(_, h)| std::cmp::Reverse(h.len()));
    for (user, history) in loyal.iter().take(3) {
        let recs: Vec<u32> = fitted
            .recommend_items(history, 3)
            .iter()
            .map(|h| h.id)
            .collect();
        println!("  dear customer {user:>5} ({} purchases): consider items {recs:?}", history.len());
    }

    // Campaign 2 (UT): the most popular recent item gets a push
    // notification to the 5 most receptive customers.
    let counts = log.item_counts();
    let hot_item = (0..counts.len()).max_by_key(|&i| counts[i]).expect("items") as u32;
    println!("\ncampaign 2 — targeting list for trending item {hot_item}:");
    for (user, score) in fitted.target_users(hot_item, 5) {
        println!("  push to customer {user:>5} (affinity {score:+.3})");
    }

    // Offline sanity: next-month metrics under the paper's protocol.
    let prepared = PreparedData::from_log(log, profile.max_seq_len());
    let protocol = ProtocolConfig {
        top_n: profile.top_n(),
        negatives: profile.num_eval_negatives(),
    };
    let outcome = evaluate(&fitted.model, &prepared.split, &protocol, profile.max_seq_len(), 99);
    println!(
        "\noffline check (next-month holdout): IR NDCG@{} = {:.1}%, UT NDCG@{} = {:.1}%",
        profile.top_n(),
        100.0 * outcome.ir.ndcg,
        profile.top_n(),
        100.0 * outcome.ut.ndcg
    );
    println!("one model, two campaign types — that is the 1/2 of the paper's cost story.");
}
