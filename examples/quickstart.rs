//! Quickstart: train one UniMatch model and serve *both* marketing tasks.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use unimatch::core::{UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;

fn main() {
    // A merchant's purchase log. Here we synthesize one shaped like the
    // paper's "QA e_comp" client; in production you'd build an
    // `InteractionLog` from your own (user, item, day) records.
    let log = DatasetProfile::EComp.generate(0.5, 42).filter_min_interactions(3);
    println!(
        "merchant log: {} interactions, {} users, {} items, {} months",
        log.len(),
        log.distinct_users(),
        log.distinct_items(),
        log.span_months()
    );

    // One `fit` = one model = both tasks. Defaults follow the paper's
    // production setup: Youtube-DNN + mean pooling, d = 16, bbcNCE loss,
    // month-by-month incremental training.
    let fitted = UniMatch::new(UniMatchConfig::default()).fit(log);
    println!(
        "trained; serving {} items and {} pool users through HNSW indexes\n",
        fitted.num_items(),
        fitted.num_pool_users()
    );

    // Item recommendation (IR): "what should we promote to this user?"
    let history = [3u32, 17, 42];
    println!("IR — top 5 items for a user who bought {history:?}:");
    for hit in fitted.recommend_items(&history, 5) {
        println!("  item {:>4}  score {:+.4}", hit.id, hit.score);
    }

    // User targeting (UT): "who should hear about this item?" — answered
    // by the SAME model, which is the point of the framework.
    let item = fitted.recommend_items(&history, 1)[0].id;
    println!("\nUT — top 5 users to target for item {item}:");
    for (user, score) in fitted.target_users(item, 5) {
        println!("  user {user:>5}  score {score:+.4}");
    }
}
