//! Serving-path deep dive: compare the three ANN indexes (brute force,
//! IVF, HNSW) on trained item embeddings — recall vs. the exact scan and
//! rough query latency, the trade-off behind Sec. III-B1's architecture
//! choice.
//!
//! ```text
//! cargo run --release --example ann_serving
//! ```

use std::time::Instant;
use unimatch::ann::{AnnIndex, BruteForceIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};
use unimatch::core::{UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;
use unimatch::eval::Table;
use rand::SeedableRng;

fn main() {
    // Train embeddings with the default framework on a mid-sized catalog.
    let log = DatasetProfile::Books.generate(0.5, 3).filter_min_interactions(3);
    let fitted = UniMatch::new(UniMatchConfig::default()).fit(log);
    let items = fitted.model.infer_items();
    let dim = items.shape().dim(1);
    let n = items.shape().dim(0);
    println!("indexing {n} trained item embeddings (d = {dim})\n");

    let data = items.data().to_vec();
    let bf = BruteForceIndex::new(data.clone(), dim);
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let ivf = IvfIndex::build(data.clone(), dim, IvfConfig { nlist: 32, nprobe: 4, kmeans_iters: 8 }, &mut rng);
    let hnsw = HnswIndex::build(data, dim, HnswConfig::default(), &mut rng);

    // queries: user embeddings for random histories
    let queries: Vec<Vec<f32>> = (0..200)
        .map(|k| fitted.user_embedding(&[(k % 97) as u32, ((k * 7) % 89) as u32]))
        .collect();

    let mut table = Table::new("serving indexes: recall@10 vs exact + mean query time", &[
        "index", "recall@10", "µs/query",
    ]);
    let mut bench = |name: &str, index: &dyn AnnIndex| {
        let t0 = Instant::now();
        let mut hits = 0usize;
        for q in &queries {
            let exact: std::collections::HashSet<u32> =
                bf.search(q, 10).iter().map(|h| h.id).collect();
            hits += index.search(q, 10).iter().filter(|h| exact.contains(&h.id)).count();
        }
        let us = t0.elapsed().as_micros() as f64 / queries.len() as f64;
        table.row(vec![
            name.into(),
            format!("{:.3}", hits as f64 / (queries.len() * 10) as f64),
            format!("{us:.0}"),
        ]);
    };
    bench("brute force", &bf);
    bench("IVF (nprobe 4/32)", &ivf);
    bench("HNSW (ef 50)", &hnsw);
    println!("{}", table.render());
    println!(
        "(brute-force recall is 1.0 by construction but costs O(catalog); \
         the approximate indexes trade a little recall for sublinear scans — \
         at production catalog sizes this is what makes two-tower serving viable.)"
    );
}
