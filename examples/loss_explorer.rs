//! Why bbcNCE? Train the same two-tower model under several losses on one
//! dataset and compare IR/UT quality plus the popularity profile of what
//! each loss retrieves — a miniature of the paper's Tabs. IX–XI.
//!
//! ```text
//! cargo run --release --example loss_explorer
//! ```

use unimatch::core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch::data::DatasetProfile;
use unimatch::eval::Table;
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::train::TrainLoss;

fn main() {
    let profile = DatasetProfile::EComp;
    let scale = 0.6;
    let prepared = PreparedData::synthetic(profile, scale, 11);
    println!(
        "dataset: {} at scale {scale} — {} train samples, test month {}\n",
        profile.name(),
        prepared.split.train.len(),
        prepared.split.test_month
    );

    let losses = [
        ("InfoNCE (no correction)", MultinomialLoss::Nce(BiasConfig::infonce())),
        ("row-bcNCE (IR specialist)", MultinomialLoss::Nce(BiasConfig::row_bcnce())),
        ("col-bcNCE (UT specialist)", MultinomialLoss::Nce(BiasConfig::col_bcnce())),
        ("bbcNCE (unified)", MultinomialLoss::Nce(BiasConfig::bbcnce())),
    ];

    let mut table = Table::new(
        format!("loss comparison on {} (NDCG@{} %)", profile.name(), profile.top_n()),
        &["loss", "IR", "UT", "AVG", "IR pop med", "train secs"],
    );
    for (label, loss) in losses {
        let spec = ExperimentSpec::baseline(profile, scale, 11, TrainLoss::Multinomial(loss));
        let out = run_experiment_on(
            &spec,
            &ExperimentOptions { curve_points: 0, audit: true },
            &prepared,
        );
        let audit = out.audit.expect("audit");
        table.row(vec![
            label.to_string(),
            format!("{:.2}", 100.0 * out.eval.ir.ndcg),
            format!("{:.2}", 100.0 * out.eval.ut.ndcg),
            format!("{:.2}", 100.0 * out.eval.avg_ndcg()),
            format!("{:.0}", audit.ir_item_popularity.median),
            format!("{:.1}", out.train_secs),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reading guide: the row specialist should lead IR, the column\n\
         specialist UT, and bbcNCE should sit at/near the top of BOTH —\n\
         that is what lets one model replace two. InfoNCE's low 'IR pop\n\
         med' shows its bias toward unpopular items (paper Tab. XI)."
    );
}
