//! The production monthly cycle with checkpoints: fit once, persist the
//! model, and each following month resume from disk with only the newest
//! month of data — the paper's incremental-training deployment (1/12 of
//! the retraining cost, Sec. IV-B5) made concrete.
//!
//! ```text
//! cargo run --release --example monthly_update
//! ```

use unimatch::core::{load_model, save_model, UniMatch, UniMatchConfig};
use unimatch::data::calendar::month_start;
use unimatch::data::DatasetProfile;

fn main() {
    // The full history a merchant will eventually accumulate…
    let full_log = DatasetProfile::EComp.generate(0.5, 31).filter_min_interactions(3);
    let total_months = full_log.span_months();
    // …but in month `m0` they only have the first part of it.
    let m0 = total_months - 2;
    let early_log = full_log.filtered(|r| r.day < month_start(m0));
    println!(
        "month {m0}: initial fit on {} interactions ({} months of history)",
        early_log.len(),
        m0
    );

    let framework = UniMatch::new(UniMatchConfig { epochs_per_month: 2, ..Default::default() });
    let fitted = framework.fit(early_log);

    // Persist the checkpoint, exactly as a nightly job would.
    let path = std::env::temp_dir().join("unimatch_monthly_checkpoint.json");
    save_model(&fitted.model, &path).expect("persist checkpoint");
    println!("checkpoint saved to {}", path.display());

    // A month passes. Reload and resume with ONE new month of data instead
    // of retraining on everything.
    let model = load_model(&path).expect("reload checkpoint");
    println!(
        "month {}: resuming from checkpoint, consuming only month {}'s data",
        m0 + 1,
        m0
    );
    // `trained_through` is the last month whose data the checkpoint saw:
    // the initial fit holds out its final month for evaluation, so it
    // trained through m0 - 2.
    let updated = framework.resume(model, full_log.clone(), m0 - 2);

    let history = [2u32, 4, 6];
    println!("\nfresh recommendations after the update:");
    for hit in updated.recommend_items(&history, 5) {
        println!("  item {:>4}  score {:+.4}", hit.id, hit.score);
    }
    println!(
        "\ncost note: this update consumed only the new months' samples; a \
         from-scratch yearly retrain would have consumed ~12x more — \
         multiply by the one-model-for-two-tasks factor and the bbcNCE \
         epoch savings and you reach the paper's 94%+ figure \
         (`cargo run -p unimatch-bench --bin cost_saving`)."
    );
    std::fs::remove_file(&path).ok();
}
