//! Determinism audit for the full training pipeline.
//!
//! Three guarantees, checked on serialized checkpoint bytes (not just
//! eval numbers, which can agree by accident):
//!
//! 1. **Seed determinism** — two `UniMatch::fit` runs with the same config
//!    and data produce byte-identical checkpoints.
//! 2. **Observer effect** — enabling the observability layer must not
//!    change a single byte of the trained model. Instrumentation only
//!    reads state (timers, counters, gradient norms after `backward`); it
//!    never consumes RNG or reorders float ops. A regression here would
//!    silently invalidate every benchmark taken with metrics on.
//! 3. **Backing independence** — the `mmap` serving flag and the obs flag
//!    are pure deployment knobs: flipping either (in any combination,
//!    for f32 and quantized store formats alike) must not change a byte
//!    of the checkpoint, nor of a quantized format's sidecar table.

use unimatch::core::{
    save_checkpoint_with_table, table_path, RowFormat, UniMatch, UniMatchConfig,
};
use unimatch::data::DatasetProfile;
use unimatch::obs;

/// Fits with the given serving knobs and returns the serialized
/// checkpoint bytes plus the sidecar table bytes (quantized formats).
fn checkpoint_bytes(tag: &str, store: RowFormat, mmap: bool) -> (Vec<u8>, Option<Vec<u8>>) {
    let log = DatasetProfile::EComp.generate(0.12, 7).filter_min_interactions(2);
    let framework = UniMatch::new(UniMatchConfig {
        epochs_per_month: 1,
        max_seq_len: 8,
        seed: 1337,
        store,
        mmap,
        ..Default::default()
    });
    let fitted = framework.fit(log);
    let dir = std::env::temp_dir().join(format!("unimatch_determinism_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.json");
    save_checkpoint_with_table(&fitted.model, Some(fitted.marginals()), fitted.item_store(), &path)
        .expect("save checkpoint");
    let bytes = std::fs::read(&path).expect("read checkpoint back");
    let sidecar = std::fs::read(table_path(&path, store)).ok();
    let _ = std::fs::remove_dir_all(&dir);
    (bytes, sidecar)
}

/// One test function on purpose: `obs::set_enabled` flips a process-global
/// flag, so the enabled/disabled phases must be sequenced, not run as
/// parallel `#[test]`s.
#[test]
fn seeded_fits_are_byte_identical_with_and_without_observability() {
    obs::set_enabled(false);
    let (a, a_side) = checkpoint_bytes("a", RowFormat::F32, false);
    let (b, _) = checkpoint_bytes("b", RowFormat::F32, false);
    assert!(!a.is_empty(), "checkpoint must not be empty");
    assert_eq!(a, b, "same seed + same data must give byte-identical checkpoints");
    assert!(a_side.is_none(), "f32 checkpoints carry no sidecar table");

    // the mmap flag is a serving knob: it must never leak into the bytes
    let (m, _) = checkpoint_bytes("m", RowFormat::F32, true);
    assert_eq!(a, m, "mmap on/off changed the checkpoint bytes");

    // quantized fits: the checkpoint AND the sidecar table are seed-
    // deterministic and mmap-independent
    let (qa, qa_side) = checkpoint_bytes("qa", RowFormat::I8, false);
    let (qb, qb_side) = checkpoint_bytes("qb", RowFormat::I8, true);
    assert_eq!(qa, qb, "mmap on/off changed the quantized checkpoint bytes");
    let qa_side = qa_side.expect("i8 checkpoints advertise a sidecar table");
    assert_eq!(qa_side, qb_side.expect("sidecar"), "mmap on/off changed the sidecar bytes");

    obs::set_enabled(true);
    let (c, _) = checkpoint_bytes("c", RowFormat::F32, false);
    let (qc, qc_side) = checkpoint_bytes("qc", RowFormat::I8, true);
    obs::set_enabled(false);
    assert_eq!(
        a, c,
        "enabling observability changed the trained model bytes — \
         instrumentation must be read-only with respect to training state"
    );
    assert_eq!(qa, qc, "observability changed the quantized checkpoint bytes");
    assert_eq!(qa_side, qc_side.expect("sidecar"), "observability changed the sidecar bytes");

    // And the instrumented run did actually record: the trainer's step
    // counter is process-global, so it must be non-zero after fitting with
    // the flag on.
    let scrape = obs::registry::render();
    assert!(
        scrape.contains("unimatch_train_steps_total"),
        "instrumented fit must register trainer series, got:\n{scrape}"
    );
}
