//! Determinism audit for the full training pipeline.
//!
//! Two guarantees, checked on serialized model bytes (not just eval
//! numbers, which can agree by accident):
//!
//! 1. **Seed determinism** — two `UniMatch::fit` runs with the same config
//!    and data produce byte-identical checkpoints.
//! 2. **Observer effect** — enabling the observability layer must not
//!    change a single byte of the trained model. Instrumentation only
//!    reads state (timers, counters, gradient norms after `backward`); it
//!    never consumes RNG or reorders float ops. A regression here would
//!    silently invalidate every benchmark taken with metrics on.

use unimatch::core::{save_model, UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;
use unimatch::obs;

fn checkpoint_bytes(tag: &str) -> Vec<u8> {
    let log = DatasetProfile::EComp.generate(0.12, 7).filter_min_interactions(2);
    let framework = UniMatch::new(UniMatchConfig {
        epochs_per_month: 1,
        max_seq_len: 8,
        seed: 1337,
        ..Default::default()
    });
    let fitted = framework.fit(log);
    let dir = std::env::temp_dir().join(format!("unimatch_determinism_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("model.json");
    save_model(&fitted.model, &path).expect("save checkpoint");
    let bytes = std::fs::read(&path).expect("read checkpoint back");
    let _ = std::fs::remove_dir_all(&dir);
    bytes
}

/// One test function on purpose: `obs::set_enabled` flips a process-global
/// flag, so the enabled/disabled phases must be sequenced, not run as
/// parallel `#[test]`s.
#[test]
fn seeded_fits_are_byte_identical_with_and_without_observability() {
    obs::set_enabled(false);
    let a = checkpoint_bytes("a");
    let b = checkpoint_bytes("b");
    assert!(!a.is_empty(), "checkpoint must not be empty");
    assert_eq!(a, b, "same seed + same data must give byte-identical checkpoints");

    obs::set_enabled(true);
    let c = checkpoint_bytes("c");
    obs::set_enabled(false);
    assert_eq!(
        a, c,
        "enabling observability changed the trained model bytes — \
         instrumentation must be read-only with respect to training state"
    );

    // And the instrumented run did actually record: the trainer's step
    // counter is process-global, so it must be non-zero after fitting with
    // the flag on.
    let scrape = obs::registry::render();
    assert!(
        scrape.contains("unimatch_train_steps_total"),
        "instrumented fit must register trainer series, got:\n{scrape}"
    );
}
