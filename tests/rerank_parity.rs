//! Differential suite for the post-retrieval re-ranking pipeline.
//!
//! The chain sits between the retrieval engine and every caller, so the
//! two properties that matter are proved at the call sites a user feels:
//!
//! 1. **Identity is invisible.** An unconfigured deployment (empty
//!    `--rerank` spec) must be bitwise identical to raw top-k retrieval
//!    for every backend (exact/HNSW/IVF) and shard count — the chain
//!    must not over-fetch, re-sort, or even re-allocate.
//! 2. **Chains are seeded functions.** A configured chain with a fixed
//!    seed must produce byte-identical results across process restarts
//!    and observability settings, and a different seed must actually
//!    change what exploration does.
//!
//! Each identity test mirrors `build_serving_with`'s index construction
//! exactly (same `seed ^ 0x1d` RNG, item index built before user index,
//! same default backend configs) so the oracle is the pre-chain serving
//! path, not a weaker re-derivation.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch::ann::{
    BruteForceIndex, EmbeddingStore, Hit, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Retriever,
    ShardedRetriever,
};
use unimatch::core::{
    load_checkpoint, save_model_with_marginals, FittedUniMatch, RerankConfig, RetrieverKind,
    UniMatch, UniMatchConfig,
};
use unimatch::data::{DatasetProfile, InteractionLog};
use unimatch::rerank::BusinessRules;

const SEED: u64 = 42;

fn base_config(kind: RetrieverKind, shards: usize, spec: &str) -> UniMatchConfig {
    UniMatchConfig {
        epochs_per_month: 1,
        max_seq_len: 8,
        seed: SEED,
        retriever: kind,
        shards,
        rerank: RerankConfig { spec: spec.to_string(), rules: None },
        ..Default::default()
    }
}

/// Trains once and persists a marginals-bearing checkpoint; every serving
/// variant under test reloads from this single artifact, so any
/// divergence between variants is the chain's doing, not training noise.
/// `OnceLock` serializes the write across the binary's parallel tests.
fn checkpoint() -> (std::path::PathBuf, InteractionLog) {
    static CKPT: std::sync::OnceLock<(std::path::PathBuf, InteractionLog)> =
        std::sync::OnceLock::new();
    CKPT.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("unimatch_rerank_parity_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        let log = DatasetProfile::EComp.generate(0.1, 4).filter_min_interactions(3);
        let fitted = UniMatch::new(base_config(RetrieverKind::Exact, 1, "")).fit(log.clone());
        save_model_with_marginals(&fitted.model, Some(fitted.marginals()), &path)
            .expect("save checkpoint");
        (path, log)
    })
    .clone()
}

fn serve_variant(kind: RetrieverKind, shards: usize, spec: &str, seed: u64) -> FittedUniMatch {
    let (path, log) = checkpoint();
    let (model, store, marginals) = load_checkpoint(&path).expect("load checkpoint");
    let mut cfg = base_config(kind, shards, spec);
    cfg.seed = seed;
    UniMatch::new(cfg).serve_with_store_and_marginals(model, log, store, marginals)
}

/// One unsharded index, exactly as `RetrieverKind::build_one` does it.
fn mirror_one(kind: RetrieverKind, store: Arc<EmbeddingStore>, rng: &mut StdRng) -> Box<dyn Retriever> {
    match kind {
        RetrieverKind::Exact => Box::new(BruteForceIndex::over(store)),
        RetrieverKind::Hnsw => Box::new(HnswIndex::build_over(store, HnswConfig::default(), rng)),
        RetrieverKind::Ivf => Box::new(IvfIndex::build_over(store, IvfConfig::default(), rng)),
    }
}

/// The serving facade's index pair, rebuilt outside the facade: same RNG
/// stream (`seed ^ 0x1d`), item index first, shard split second.
fn mirror_indexes(
    fitted: &FittedUniMatch,
    kind: RetrieverKind,
    shards: usize,
) -> (Box<dyn Retriever>, Box<dyn Retriever>) {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x1d);
    let build = |store: &Arc<EmbeddingStore>, rng: &mut StdRng| -> Box<dyn Retriever> {
        if shards > 1 {
            Box::new(ShardedRetriever::build(store, shards, |view| mirror_one(kind, view, rng)))
        } else {
            mirror_one(kind, store.clone(), rng)
        }
    };
    let item = build(fitted.item_store(), &mut rng);
    let user = build(fitted.user_store(), &mut rng);
    (item, user)
}

fn assert_hits_bitwise(got: &[Hit], want: &[Hit], site: &str) {
    assert_eq!(got.len(), want.len(), "{site}: length diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!((g.id, g.score.to_bits()), (w.id, w.score.to_bits()), "{site}");
    }
}

#[test]
fn identity_chain_is_bitwise_raw_top_k_across_backends_and_shards() {
    for kind in [RetrieverKind::Exact, RetrieverKind::Hnsw, RetrieverKind::Ivf] {
        for shards in [1usize, 3] {
            let fitted = serve_variant(kind, shards, "", SEED);
            assert_eq!(fitted.rerank_spec(), "", "empty spec must stay identity");
            let (item_index, user_index) = mirror_indexes(&fitted, kind, shards);
            let site = format!("{}/shards={shards}", kind.name());

            // IR, single and batched
            let histories: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5], vec![0]];
            let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
            let batched = fitted.recommend_items_batch(&refs, 10);
            for (i, h) in histories.iter().enumerate() {
                let query = fitted.user_embedding(h);
                let want = item_index.search(&query, 10);
                assert_hits_bitwise(&fitted.recommend_items(h, 10), &want, &format!("{site} IR"));
                assert_hits_bitwise(&batched[i], &want, &format!("{site} IR batch"));
            }

            // UT, single and batched
            let items = [1u32, 2, 5];
            let batched = fitted.target_users_batch(&items, 12);
            for (i, &item) in items.iter().enumerate() {
                let query = fitted.item_store().row(item as usize);
                let want: Vec<(u32, f32)> = user_index
                    .search(query, 12)
                    .into_iter()
                    .map(|h| (fitted.user_store().id_of_row(h.id as usize), h.score))
                    .collect();
                let got = fitted.target_users(item, 12);
                assert_eq!(got.len(), want.len(), "{site} UT");
                for ((gu, gs), (wu, ws)) in got.iter().zip(&want) {
                    assert_eq!((gu, gs.to_bits()), (wu, ws.to_bits()), "{site} UT");
                }
                assert_eq!(batched[i], got, "{site} UT batch");
            }
        }
    }
}

#[test]
fn debias_stage_reweights_the_raw_scores_arithmetically() {
    // Exact backend so the over-fetched raw list is itself bit-exact;
    // the chained result must then be `score − 1·log p̂(i)` re-sorted
    // under the canonical order and truncated to k.
    let fitted = serve_variant(RetrieverKind::Exact, 1, "debias@1", SEED);
    let (item_index, _) = mirror_indexes(&fitted, RetrieverKind::Exact, 1);
    let k = 10;
    let fetch_k = (k * 4).max(k + 16);
    for history in [vec![1u32, 2, 3], vec![7, 8]] {
        let query = fitted.user_embedding(&history);
        let mut want: Vec<Hit> = item_index
            .search(&query, fetch_k)
            .into_iter()
            .map(|h| Hit { id: h.id, score: h.score - fitted.marginals().log_pi(h.id) })
            .collect();
        want.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.id.cmp(&b.id)));
        want.truncate(k);
        assert_hits_bitwise(&fitted.recommend_items(&history, k), &want, "debias IR");
    }
}

#[test]
fn chained_results_are_seed_deterministic_and_seed_sensitive() {
    let spec = "debias@0.5,mmr@0.3,explore@0.4";
    let a = serve_variant(RetrieverKind::Exact, 1, spec, SEED);
    let b = serve_variant(RetrieverKind::Exact, 1, spec, SEED);
    let other = serve_variant(RetrieverKind::Exact, 1, spec, SEED + 1);
    let histories: Vec<Vec<u32>> = (0..12u32).map(|i| vec![i, i + 1, i + 2]).collect();
    let mut diverged = false;
    for h in &histories {
        let ra = a.recommend_items(h, 10);
        assert_hits_bitwise(&b.recommend_items(h, 10), &ra, "rebuild determinism");
        let ta = a.target_users(h[0], 10);
        assert_eq!(other.target_users(h[0], 10).len(), ta.len());
        if other.recommend_items(h, 10) != ra {
            diverged = true;
        }
    }
    assert!(diverged, "a different seed must change exploration somewhere across 12 queries");
}

#[test]
fn observability_toggle_never_changes_chained_bytes() {
    // The per-stage spans must be pure observers: flipping the global
    // obs flag cannot move a single bit of the reranked response.
    let spec = "debias@0.5,mmr@0.3,explore@0.2";
    let fitted = serve_variant(RetrieverKind::Exact, 1, spec, SEED);
    let history = vec![1u32, 2, 3];
    let was = unimatch::obs::enabled();
    unimatch::obs::set_enabled(false);
    let dark = fitted.recommend_items(&history, 10);
    unimatch::obs::set_enabled(true);
    let lit = fitted.recommend_items(&history, 10);
    unimatch::obs::set_enabled(was);
    assert_hits_bitwise(&lit, &dark, "obs toggle");
}

#[test]
fn rules_filter_caps_and_refills_from_the_overfetch() {
    // Deny the top raw hit and cap categories; the chain must refill to
    // a full k from the over-fetched tail, never serve a denied id, and
    // respect the per-category cap.
    let fitted = serve_variant(RetrieverKind::Exact, 1, "", SEED);
    let (item_index, _) = mirror_indexes(&fitted, RetrieverKind::Exact, 1);
    let history = vec![1u32, 2, 3];
    let query = fitted.user_embedding(&history);
    let raw = item_index.search(&query, 10);
    let denied = raw[0].id;
    let n = fitted.num_items() as u32;
    let categories: Vec<String> = (0..n).map(|id| format!("[{},{}]", id, id % 7)).collect();
    let rules_json = format!("{{\"deny\":[{denied}],\"categories\":[{}]}}", categories.join(","));
    let rules = BusinessRules::parse(
        &unimatch::data::json::Json::parse(rules_json.as_bytes()).expect("json"),
    )
    .expect("rules");

    let (path, log) = checkpoint();
    let (model, store, marginals) = load_checkpoint(&path).expect("load checkpoint");
    let mut cfg = base_config(RetrieverKind::Exact, 1, "filter,cap:category=2");
    cfg.rerank.rules = Some(Arc::new(rules));
    let chained =
        UniMatch::new(cfg).serve_with_store_and_marginals(model, log, store, marginals);

    let got = chained.recommend_items(&history, 10);
    assert_eq!(got.len(), 10, "filter must refill to k from the over-fetch");
    assert!(got.iter().all(|h| h.id != denied), "denied id served");
    for cat in 0..7u32 {
        let served = got.iter().filter(|h| h.id % 7 == cat).count();
        assert!(served <= 2, "category {cat} served {served} > cap 2");
    }
}
