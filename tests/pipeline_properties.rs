//! Cross-crate property tests: invariants of the data pipeline on
//! arbitrary logs, and protocol invariants on arbitrary splits.

use proptest::prelude::*;
use unimatch::data::windowing::{build_samples, WindowConfig};
use unimatch::data::{temporal_split, Interaction, InteractionLog, Marginals};

fn arbitrary_log() -> impl Strategy<Value = InteractionLog> {
    proptest::collection::vec(
        (0u32..20, 0u32..15, 0u32..150).prop_map(|(user, item, day)| Interaction { user, item, day }),
        10..200,
    )
    .prop_map(InteractionLog::new)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn windowing_never_leaks_future_items(log in arbitrary_log()) {
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        for s in &samples {
            // every history item must exist in the user's log strictly
            // before the target day
            let timeline = log.timeline_of(s.user);
            for &h in &s.history {
                prop_assert!(
                    timeline.iter().any(|r| r.item == h && r.day < s.day),
                    "history item {h} not strictly before day {} for user {}",
                    s.day,
                    s.user
                );
            }
        }
    }

    #[test]
    fn windowing_emits_one_sample_per_eligible_interaction(log in arbitrary_log()) {
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        // eligible = interactions with at least one strictly-earlier record
        let mut eligible = 0usize;
        for (_, timeline) in log.timelines() {
            for r in timeline {
                if timeline.iter().any(|p| p.day < r.day) {
                    eligible += 1;
                }
            }
        }
        prop_assert_eq!(samples.len(), eligible);
    }

    #[test]
    fn split_partitions_samples(log in arbitrary_log()) {
        let span = log.span_months().max(3);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        let split = temporal_split(&samples, span);
        let in_span = samples.iter().filter(|s| s.month() < span).count();
        prop_assert_eq!(split.train.len() + split.test.len(), in_span);
        for s in &split.train {
            prop_assert!(s.month() < split.test_month);
        }
        for s in &split.test {
            prop_assert_eq!(s.month(), split.test_month);
        }
    }

    #[test]
    fn marginals_are_log_probabilities(log in arbitrary_log()) {
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        prop_assume!(!samples.is_empty());
        let m = Marginals::from_samples(&samples, log.num_users(), log.num_items());
        // seen-entity probabilities sum to 1
        let sum_u: f64 = m.user_probs().iter().sum();
        let sum_i: f64 = m.item_probs().iter().sum();
        // unseen entities contribute their floor mass; filter via counts
        prop_assert!(sum_u >= 0.99, "user probs sum {sum_u}");
        prop_assert!(sum_i >= 0.99, "item probs sum {sum_i}");
        for s in &samples {
            prop_assert!(m.log_pu(s.user) <= 0.0);
            prop_assert!(m.log_pi(s.target) <= 0.0);
        }
    }
}

mod ann_properties {
    use proptest::prelude::*;
    use unimatch::ann::{AnnIndex, BruteForceIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};

    fn unit_vectors(n: usize, dim: usize) -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-1.0f32..1.0, n * dim).prop_map(move |mut v| {
            for row in v.chunks_mut(dim) {
                let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
                for x in row {
                    *x /= norm;
                }
            }
            v
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn indexes_return_sorted_valid_hits(data in unit_vectors(64, 8)) {
            let bf = BruteForceIndex::new(data.clone(), 8);
            let mut rng = rand::rngs::StdRng::seed_from_u64(3);
            use rand::SeedableRng as _;
            let ivf = IvfIndex::build(data.clone(), 8, IvfConfig { nlist: 8, nprobe: 8, kmeans_iters: 4 }, &mut rng);
            let hnsw = HnswIndex::build(data.clone(), 8, HnswConfig { m: 8, ef_construction: 64, ef_search: 64 }, &mut rng);
            let query = &data[..8];
            for index in [&bf as &dyn AnnIndex, &ivf, &hnsw] {
                let hits = index.search(query, 10);
                prop_assert!(!hits.is_empty());
                prop_assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
                prop_assert!(hits.iter().all(|h| (h.id as usize) < 64));
                // no duplicate ids
                let ids: std::collections::HashSet<u32> = hits.iter().map(|h| h.id).collect();
                prop_assert_eq!(ids.len(), hits.len());
            }
            // full-probe IVF is exact
            let exact: Vec<u32> = bf.search(query, 5).iter().map(|h| h.id).collect();
            let ivf_ids: Vec<u32> = ivf.search(query, 5).iter().map(|h| h.id).collect();
            prop_assert_eq!(exact, ivf_ids);
        }
    }
}
