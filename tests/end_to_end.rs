//! Cross-crate integration: raw log → windowing → incremental training →
//! protocol evaluation, per dataset profile.

use unimatch::core::{evaluate, run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch::data::DatasetProfile;
use unimatch::eval::ProtocolConfig;
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::models::{ModelConfig, TwoTower};
use unimatch::train::TrainLoss;
use rand::SeedableRng;

fn bbcnce() -> TrainLoss {
    TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce()))
}

#[test]
fn training_beats_untrained_on_every_profile() {
    for profile in DatasetProfile::ALL {
        let scale = 0.25;
        let prepared = PreparedData::synthetic(profile, scale, 5);
        let spec = ExperimentSpec::baseline(profile, scale, 5, bbcnce());
        let trained = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);

        let mut rng = rand::rngs::StdRng::seed_from_u64(1234);
        let untrained = TwoTower::new(
            ModelConfig::youtube_dnn_mean(prepared.num_items(), prepared.max_seq_len, 0.125),
            &mut rng,
        );
        let protocol = ProtocolConfig {
            top_n: profile.top_n(),
            negatives: profile.num_eval_negatives(),
        };
        let base = evaluate(&untrained, &prepared.split, &protocol, prepared.max_seq_len, 5 ^ 0x5eed);
        assert!(
            trained.eval.avg_ndcg() > base.avg_ndcg(),
            "{}: trained {:.4} <= untrained {:.4}",
            profile.name(),
            trained.eval.avg_ndcg(),
            base.avg_ndcg()
        );
    }
}

#[test]
fn no_test_leakage_into_training_windows() {
    // Every training sample's target day must precede the test month, and
    // every history item must come strictly before its own target day.
    let prepared = PreparedData::synthetic(DatasetProfile::Books, 0.2, 9);
    let test_start = prepared.split.test_month * 30;
    for s in &prepared.split.train {
        assert!(s.day < test_start, "train sample in test month");
    }
    for s in &prepared.split.test {
        assert!(s.day >= test_start, "test sample before test month");
    }
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let spec = ExperimentSpec::baseline(DatasetProfile::EComp, 0.2, 77, bbcnce());
        let prepared = PreparedData::synthetic(DatasetProfile::EComp, 0.2, 77);
        let out = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        (out.eval.ir.ndcg, out.eval.ut.ndcg)
    };
    assert_eq!(run(), run());
}

#[test]
fn bce_pathway_also_learns() {
    use unimatch::data::NegativeStrategy;
    let prepared = PreparedData::synthetic(DatasetProfile::EComp, 0.25, 3);
    let spec = ExperimentSpec::baseline(
        DatasetProfile::EComp,
        0.25,
        3,
        TrainLoss::Bce(NegativeStrategy::Uniform),
    );
    let out = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
    // chance hitrate@10 with <=99 negatives is <= ~0.11 on this pool size;
    // also compare against the untrained tower to be safe
    let mut rng = rand::rngs::StdRng::seed_from_u64(4321);
    let untrained = TwoTower::new(
        ModelConfig::youtube_dnn_mean(prepared.num_items(), prepared.max_seq_len, 0.25),
        &mut rng,
    );
    let protocol = spec.protocol();
    let base = evaluate(&untrained, &prepared.split, &protocol, prepared.max_seq_len, 3 ^ 0x5eed);
    assert!(
        out.eval.avg_ndcg() > base.avg_ndcg(),
        "BCE trained {:.4} <= untrained {:.4}",
        out.eval.avg_ndcg(),
        base.avg_ndcg()
    );
}
