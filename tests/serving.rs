//! Serving-path integration: the fitted framework's ANN answers agree
//! with exact brute-force ranking over the same embeddings.

use unimatch::ann::{AnnIndex, BruteForceIndex};
use unimatch::core::{UniMatch, UniMatchConfig};
use unimatch::data::DatasetProfile;

#[test]
fn recommend_items_agrees_with_bruteforce() {
    let log = DatasetProfile::EComp.generate(0.3, 5).filter_min_interactions(3);
    let fitted = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() }).fit(log);

    let items = fitted.model.infer_items();
    let bf = BruteForceIndex::new(items.data().to_vec(), items.shape().dim(1));

    let mut agree = 0usize;
    let mut total = 0usize;
    for seed_item in [1u32, 5, 9, 13, 17] {
        let history = [seed_item, seed_item + 1];
        let query = fitted.user_embedding(&history);
        let exact: std::collections::HashSet<u32> =
            bf.search(&query, 10).iter().map(|h| h.id).collect();
        for hit in fitted.recommend_items(&history, 10) {
            total += 1;
            if exact.contains(&hit.id) {
                agree += 1;
            }
        }
    }
    let recall = agree as f64 / total as f64;
    assert!(recall >= 0.9, "HNSW serving recall vs exact = {recall}");
}

#[test]
fn target_users_returns_real_pool_users() {
    let log = DatasetProfile::WComp.generate(0.2, 6).filter_min_interactions(3);
    let users: std::collections::HashSet<u32> =
        log.timelines().map(|(u, _)| u).collect();
    let fitted = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() }).fit(log);
    for (user, score) in fitted.target_users(0, 10) {
        assert!(users.contains(&user), "targeted unknown user {user}");
        assert!(score.is_finite());
    }
}

#[test]
fn scores_are_cosines_in_range() {
    let log = DatasetProfile::EComp.generate(0.2, 8).filter_min_interactions(3);
    let fitted = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() }).fit(log);
    for hit in fitted.recommend_items(&[2, 3], 20) {
        assert!((-1.01..=1.01).contains(&hit.score), "cosine out of range: {}", hit.score);
    }
}
