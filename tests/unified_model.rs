//! The paper's headline claim, as an executable test: ONE bbcNCE model is
//! competitive with BOTH task-specialized models.
//!
//! Metrics are averaged over three seeds; single-seed UT orderings between
//! the specialists sit within noise on synthetic data (a documented
//! deviation — see EXPERIMENTS.md), so the UT-side claim is asserted in
//! its robust *relative* form: the row specialist's advantage over the
//! column specialist must be larger on IR than on UT (the corrections are
//! task-aligned).

use unimatch::core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch::data::DatasetProfile;
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::train::TrainLoss;

const SCALE: f64 = 0.4;
const SEEDS: [u64; 3] = [13, 21, 34];

fn mean_metrics(profile: DatasetProfile, cfg: BiasConfig) -> (f64, f64) {
    let (mut ir, mut ut) = (0.0, 0.0);
    for &seed in &SEEDS {
        let prepared = PreparedData::synthetic(profile, SCALE, seed);
        let spec = ExperimentSpec::baseline(
            profile,
            SCALE,
            seed,
            TrainLoss::Multinomial(MultinomialLoss::Nce(cfg)),
        );
        let out = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        ir += out.eval.ir.ndcg;
        ut += out.eval.ut.ndcg;
    }
    (ir / SEEDS.len() as f64, ut / SEEDS.len() as f64)
}

#[test]
fn one_bbcnce_model_serves_both_tasks() {
    // Books: the dense-user profile where the paper says the user-bias
    // correction is most reliable.
    let profile = DatasetProfile::Books;
    let (row_ir, row_ut) = mean_metrics(profile, BiasConfig::row_bcnce());
    let (col_ir, col_ut) = mean_metrics(profile, BiasConfig::col_bcnce());
    let (bbc_ir, bbc_ut) = mean_metrics(profile, BiasConfig::bbcnce());

    // The IR specialist clearly beats the UT specialist at IR.
    assert!(
        row_ir > 1.1 * col_ir,
        "row-bcNCE IR {row_ir:.4} should clearly beat col-bcNCE IR {col_ir:.4}"
    );

    // The corrections are task-aligned: row's advantage over col must be
    // decisively larger on IR than on UT.
    let ir_gap = row_ir - col_ir;
    let ut_gap = row_ut - col_ut;
    assert!(
        ir_gap > ut_gap + 0.02,
        "row-over-col gap should shrink from IR ({ir_gap:.4}) to UT ({ut_gap:.4})"
    );

    // The unified model stays within a modest margin of each specialist on
    // its home turf (the paper reports parity/second-best)…
    assert!(bbc_ir > 0.9 * row_ir, "bbcNCE IR {bbc_ir:.4} << row-bcNCE {row_ir:.4}");
    assert!(bbc_ut > 0.9 * col_ut, "bbcNCE UT {bbc_ut:.4} << col-bcNCE {col_ut:.4}");

    // …and its average matches or beats both single-purpose models — the
    // one-model-for-two-tasks argument.
    let bbc_avg = (bbc_ir + bbc_ut) / 2.0;
    let row_avg = (row_ir + row_ut) / 2.0;
    let col_avg = (col_ir + col_ut) / 2.0;
    assert!(
        bbc_avg >= 0.98 * row_avg.max(col_avg),
        "bbcNCE AVG {bbc_avg:.4} below specialists ({row_avg:.4}, {col_avg:.4})"
    );
}
