//! Cross-layer differential suite for the unified retrieval engine.
//!
//! The refactor routed every scoring path — batch inference, the serving
//! facade's IR/UT calls, campaign audience queries, and checkpoint
//! loading — through `unimatch_ann`'s `EmbeddingStore` + `Retriever`
//! engine. Each test here replays one *call site* against the
//! pre-refactor oracle (sequential dot + stable sort, ties to the lowest
//! id) and requires bitwise agreement, so an engine regression is caught
//! at the layer a user would feel it, not just inside the ann crate.

use unimatch::core::{
    build_targeting_list, load_item_store, save_model, top_k_blocked, CampaignSpec, PreparedData,
    RetrieverKind, UniMatch, UniMatchConfig,
};
use unimatch::data::DatasetProfile;
use unimatch::eval::ranking::EmbeddingMatrix;

fn exact_fitted() -> (unimatch::core::FittedUniMatch, unimatch::data::InteractionLog) {
    let log = DatasetProfile::EComp.generate(0.12, 6).filter_min_interactions(3);
    let cfg = UniMatchConfig {
        epochs_per_month: 1,
        max_seq_len: 8,
        retriever: RetrieverKind::Exact,
        ..Default::default()
    };
    (UniMatch::new(cfg).fit(log.clone()), log)
}

/// The pre-refactor reduction every call site shared: sequential dot over
/// all rows, stable sort descending, truncate.
fn oracle_top_k(query: &[f32], rows: &[f32], dim: usize, k: usize) -> Vec<(u32, f32)> {
    let mut scored: Vec<(u32, f32)> = rows
        .chunks(dim)
        .enumerate()
        .map(|(i, row)| (i as u32, query.iter().zip(row).map(|(x, y)| x * y).sum()))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    scored.truncate(k);
    scored
}

#[test]
fn batch_inference_top_k_matches_the_oracle() {
    let dim = 8;
    let mk = |n: usize, seed: u64| -> Vec<f32> {
        // deterministic pseudo-random floats without an RNG dependency
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    };
    let queries = mk(150, 3);
    let targets = mk(600, 4);
    let got = top_k_blocked(EmbeddingMatrix::new(&queries, dim), EmbeddingMatrix::new(&targets, dim), 9);
    for (qi, q) in queries.chunks(dim).enumerate() {
        let want = oracle_top_k(q, &targets, dim, 9);
        assert_eq!(got[qi].len(), want.len());
        for ((gid, gscore), (wid, wscore)) in got[qi].iter().zip(&want) {
            assert_eq!((gid, gscore.to_bits()), (wid, wscore.to_bits()), "query {qi}");
        }
    }
}

#[test]
fn target_users_is_the_oracle_over_the_user_store() {
    let (fitted, _log) = exact_fitted();
    assert_eq!(fitted.retriever_backend(), "bruteforce");
    let item = 1u32;
    let k = 12;
    let store = fitted.user_store();
    let query = fitted.item_store().row(item as usize).to_vec();
    let want: Vec<(u32, f32)> = oracle_top_k(&query, store.as_slice(), store.dim(), k)
        .into_iter()
        .map(|(row, score)| (store.id_of_row(row as usize), score))
        .collect();
    let got = fitted.target_users(item, k);
    assert_eq!(got.len(), want.len());
    for ((gu, gs), (wu, ws)) in got.iter().zip(&want) {
        assert_eq!((gu, gs.to_bits()), (wu, ws.to_bits()));
    }
    // and the batched UT path returns the same bits
    let batched = fitted.target_users_batch(&[item], k);
    assert_eq!(batched[0], got);
}

#[test]
fn recommend_items_exact_matches_hit_for_hit_across_batch_sizes() {
    let (fitted, _log) = exact_fitted();
    let histories: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5], vec![0]];
    let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
    let batched = fitted.recommend_items_batch(&refs, 10);
    for (i, h) in histories.iter().enumerate() {
        let single = fitted.recommend_items(h, 10);
        assert_eq!(batched[i].len(), single.len());
        for (b, s) in batched[i].iter().zip(&single) {
            assert_eq!((b.id, b.score.to_bits()), (s.id, s.score.to_bits()));
        }
    }
}

#[test]
fn audience_lists_reduce_to_target_users_by_embedding() {
    let (fitted, log) = exact_fitted();
    let spec = CampaignSpec::item("promo", 2, 15);
    let list = build_targeting_list(&fitted, &log, &spec);
    // replay subject_query by hand: normalized single-item store row
    let store = fitted.item_store();
    let row = store.row(2);
    let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
    let query: Vec<f32> = row.iter().map(|x| x / norm).collect();
    let direct = fitted.target_users_by_embedding(&query, 15);
    assert_eq!(list.users.len(), 15);
    for ((lu, ls), (du, ds)) in list.users.iter().zip(&direct) {
        assert_eq!((lu, ls.to_bits()), (du, ds.to_bits()));
    }
}

#[test]
fn checkpoint_store_reproduces_the_fit_path_bit_for_bit() {
    let (fitted, _log) = exact_fitted();
    let dir = std::env::temp_dir()
        .join(format!("unimatch_retrieval_engine_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("model.json");
    save_model(&fitted.model, &path).expect("save checkpoint");

    // the store decoded straight from the checkpoint's embedding section —
    // no model, no ParamSet, no item-tower forward pass
    let store = load_item_store(&path).expect("load item store");
    let fit_store = fitted.item_store();
    assert_eq!(store.rows(), fit_store.rows());
    assert_eq!(store.dim(), fit_store.dim());
    for (a, b) in store.as_slice().iter().zip(fit_store.as_slice()) {
        assert_eq!(a.to_bits(), b.to_bits(), "checkpoint store diverged from infer_items");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn eval_split_ranks_with_the_engine_dot() {
    // The eval ranking pool scores candidates through the same canonical
    // dot as the engine; a handful of spot checks pin the equivalence.
    let (fitted, log) = exact_fitted();
    let prepared = PreparedData::from_log(log, 8);
    let _ = prepared; // split construction exercised; scoring parity below
    let store = fitted.item_store();
    let matrix = EmbeddingMatrix::new(store.as_slice(), store.dim());
    let query = store.row(0);
    let candidates: Vec<u32> = (0..store.rows() as u32).collect();
    let scores = unimatch::eval::ranking::score_candidates(query, matrix, &candidates);
    for (i, s) in scores.iter().enumerate() {
        let want = unimatch::ann::dot(query, store.row(i));
        assert_eq!(s.to_bits(), want.to_bits(), "candidate {i}");
    }
}
