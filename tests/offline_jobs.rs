//! Integration of the offline production paths: nightly batch inference
//! and the multi-positive evaluation variant, on trained models.

use rand::SeedableRng;
use unimatch::core::{
    evaluate_multi_ir_model, materialize, run_experiment_on, ExperimentOptions, ExperimentSpec,
    PreparedData, UniMatch, UniMatchConfig,
};
use unimatch::data::DatasetProfile;
use unimatch::eval::{EmbeddingMatrix, ProtocolConfig};
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::models::{ModelConfig, TwoTower};
use unimatch::train::TrainLoss;

#[test]
fn nightly_batch_job_agrees_with_online_serving() {
    let log = DatasetProfile::EComp.generate(0.3, 61).filter_min_interactions(3);
    let fitted = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() }).fit(log);

    // materialize the full per-user top-5 offline
    let items_t = fitted.model.infer_items();
    let dim = items_t.shape().dim(1);
    let histories: Vec<&[u32]> = (0..fitted.user_pool.len())
        .map(|ix| fitted.user_pool.history(ix))
        .collect();
    let user_emb = unimatch::core::evaluate::embed_histories(&fitted.model, &histories, 20);
    let rec = materialize(
        EmbeddingMatrix::new(&user_emb, dim),
        EmbeddingMatrix::new(items_t.data(), dim),
        5,
        5,
    );
    assert_eq!(rec.per_user.len(), fitted.user_pool.len());
    assert_eq!(rec.per_item.len(), items_t.shape().dim(0));

    // online HNSW answers must overlap the exact offline lists heavily
    let mut agree = 0usize;
    let mut total = 0usize;
    for ix in (0..fitted.user_pool.len()).step_by(37) {
        let online: std::collections::HashSet<u32> = fitted
            .recommend_items(fitted.user_pool.history(ix), 5)
            .iter()
            .map(|h| h.id)
            .collect();
        for &(item, _) in &rec.per_user[ix] {
            total += 1;
            if online.contains(&item) {
                agree += 1;
            }
        }
    }
    let overlap = agree as f64 / total as f64;
    assert!(overlap > 0.85, "offline/online overlap {overlap}");
}

#[test]
fn multi_positive_eval_tracks_single_positive() {
    let profile = DatasetProfile::EComp;
    let prepared = PreparedData::synthetic(profile, 0.5, 71);
    let spec = ExperimentSpec::baseline(
        profile,
        0.5,
        71,
        TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
    );
    let trained = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);

    // re-create the trained model is awkward; instead compare trained vs
    // untrained under the multi-positive protocol directly
    let protocol = ProtocolConfig { top_n: 10, negatives: 99 };
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let untrained = TwoTower::new(
        ModelConfig::youtube_dnn_mean(prepared.num_items(), prepared.max_seq_len, 0.125),
        &mut rng,
    );
    let base = evaluate_multi_ir_model(&untrained, &prepared.split, &protocol, prepared.max_seq_len, 9);

    // fit a model through the framework for the trained comparison
    let fitted = UniMatch::new(UniMatchConfig {
        max_seq_len: prepared.max_seq_len,
        ..Default::default()
    })
    .fit(prepared.log.clone());
    let multi =
        evaluate_multi_ir_model(&fitted.model, &prepared.split, &protocol, prepared.max_seq_len, 9);

    assert!(
        multi.recall > base.recall,
        "trained multi-positive recall {:.4} <= untrained {:.4}",
        multi.recall,
        base.recall
    );
    // the single-positive experiment should agree directionally
    assert!(trained.eval.ir.recall > 0.1);
    assert!((0.0..=1.0).contains(&multi.ndcg));
}
