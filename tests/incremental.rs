//! Incremental-training integration (the Fig. 3 mechanism): on a trendy
//! profile, fresher checkpoints must do better on the fixed test month.

use unimatch::core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch::data::DatasetProfile;
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::train::TrainLoss;

#[test]
fn fresh_checkpoints_win_on_trendy_data() {
    let profile = DatasetProfile::EComp; // high trend_strength
    let prepared = PreparedData::synthetic(profile, 0.6, 17);
    let spec = ExperimentSpec::baseline(
        profile,
        0.6,
        17,
        TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
    );
    let out = run_experiment_on(
        &spec,
        &ExperimentOptions { curve_points: 4, audit: false },
        &prepared,
    );
    assert_eq!(out.curve.len(), 4);
    let stale = &out.curve[0];
    let fresh = out.curve.last().expect("points");
    assert_eq!(fresh.months_behind, 0);
    assert!(stale.months_behind >= 3);
    let stale_avg = (stale.ir_ndcg + stale.ut_ndcg) / 2.0;
    let fresh_avg = (fresh.ir_ndcg + fresh.ut_ndcg) / 2.0;
    assert!(
        fresh_avg > stale_avg,
        "fresh {fresh_avg:.4} should beat stale {stale_avg:.4} on a trendy profile"
    );
}

#[test]
fn checkpoints_cover_all_training_months() {
    use rand::SeedableRng;
    use unimatch::models::{ModelConfig, TwoTower};
    use unimatch::train::{AdamConfig, TrainConfig, Trainer};

    let prepared = PreparedData::synthetic(DatasetProfile::WComp, 0.2, 23);
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = TwoTower::new(
        ModelConfig::youtube_dnn_mean(prepared.num_items(), prepared.max_seq_len, 0.1),
        &mut rng,
    );
    let mut trainer = Trainer::new(
        model,
        TrainConfig {
            batch_size: 64,
            epochs_per_month: 1,
            max_seq_len: prepared.max_seq_len,
            optimizer: AdamConfig::default(),
            loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            seed: 2,
        },
    );
    let checkpoints = trainer
        .train_incremental(&prepared.split, &prepared.marginals)
        .expect("incremental training failed");
    let months = prepared.split.train_months();
    assert_eq!(checkpoints.len(), months.len());
    for (cp, m) in checkpoints.iter().zip(months) {
        assert_eq!(cp.month, m);
        assert!(cp.mean_loss.is_finite());
    }
}
