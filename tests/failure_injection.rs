//! Failure-injection and robustness tests: pathological inputs must fail
//! loudly or degrade gracefully, never corrupt training silently.

use rand::SeedableRng;
use unimatch::data::windowing::{build_samples, WindowConfig};
use unimatch::data::{DatasetProfile, Marginals};
use unimatch::losses::{BiasConfig, MultinomialLoss};
use unimatch::models::{ModelConfig, TwoTower};
use unimatch::tensor::{Graph, Tensor};
use unimatch::train::{AdamConfig, Schedule, TrainConfig, TrainLoss, Trainer};

fn setup(lr: f32, clip: Option<f32>) -> (Trainer, Vec<unimatch::data::Sample>, Marginals) {
    let log = DatasetProfile::EComp.generate(0.1, 3).filter_min_interactions(2);
    let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
    let marginals = Marginals::from_samples(&samples, log.num_users(), log.num_items());
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let model = TwoTower::new(
        ModelConfig::youtube_dnn_mean(log.num_items() as usize, 8, 0.125),
        &mut rng,
    );
    let cfg = TrainConfig {
        batch_size: 32,
        epochs_per_month: 1,
        max_seq_len: 8,
        optimizer: AdamConfig { lr, clip_norm: clip, ..Default::default() },
        loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
        seed: 2,
    };
    (Trainer::new(model, cfg), samples, marginals)
}

#[test]
fn absurd_learning_rate_with_clipping_stays_finite() {
    let (mut t, samples, marg) = setup(10.0, Some(1.0));
    let losses = t.train_epochs(&samples, &marg, 2).expect("training failed");
    assert!(losses.iter().all(|l| l.is_finite()), "losses {losses:?}");
    assert!(
        t.model.params.global_norm().is_finite(),
        "parameters diverged to non-finite values"
    );
}

#[test]
fn warmup_schedule_tames_early_steps() {
    // with warmup, the first-step parameter movement must be much smaller
    let movement = |schedule| -> f32 {
        let (mut t, samples, marg) = setup(0.5, None);
        // overwrite the optimizer schedule through a fresh trainer
        let cfg = TrainConfig {
            optimizer: AdamConfig { lr: 0.5, schedule, ..Default::default() },
            ..t.config().clone()
        };
        let before = t.model.params.global_norm();
        let model = std::mem::replace(
            &mut t.model,
            TwoTower::new(
                ModelConfig::youtube_dnn_mean(2, 8, 0.125),
                &mut rand::rngs::StdRng::seed_from_u64(9),
            ),
        );
        let mut t2 = Trainer::new(model, cfg);
        let batches = unimatch::data::batch::multinomial_batches(
            &samples,
            &marg,
            32,
            8,
            &mut rand::rngs::StdRng::seed_from_u64(3),
        );
        t2.step_multinomial(
            &batches[0],
            &MultinomialLoss::Nce(BiasConfig::bbcnce()),
            None,
        )
        .expect("step failed");
        (t2.model.params.global_norm() - before).abs()
    };
    let warm = movement(Schedule::Warmup { steps: 100 });
    let cold = movement(Schedule::Constant);
    assert!(warm < cold, "warmup first-step movement {warm} >= constant {cold}");
}

#[test]
#[should_panic(expected = "out of vocab")]
fn out_of_vocabulary_item_panics_loudly() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let model = TwoTower::new(ModelConfig::youtube_dnn_mean(10, 4, 0.2), &mut rng);
    let mut g = Graph::new();
    model.item_tower(&mut g, &[99]); // vocab is 10
}

#[test]
fn degenerate_single_item_catalog_trains() {
    // a catalog of one item is useless but must not crash
    let samples: Vec<unimatch::data::Sample> = (0..20)
        .map(|k| unimatch::data::Sample {
            user: k % 4,
            history: vec![0],
            target: 0,
            day: k,
        })
        .collect();
    let marginals = Marginals::from_samples(&samples, 4, 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let model = TwoTower::new(ModelConfig::youtube_dnn_mean(1, 4, 0.2), &mut rng);
    let cfg = TrainConfig {
        batch_size: 4,
        epochs_per_month: 1,
        max_seq_len: 4,
        optimizer: AdamConfig::default(),
        loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
        seed: 6,
    };
    let mut trainer = Trainer::new(model, cfg);
    let losses = trainer.train_epochs(&samples, &marginals, 1).expect("training failed");
    assert!(losses[0].is_finite());
}

#[test]
fn nan_input_is_caught_by_loss_computation() {
    // a NaN logit must surface as a NaN loss (not silently vanish), so the
    // caller can detect divergence
    let mut g = Graph::new();
    let logits = g.input(Tensor::from_vec([2, 2], vec![f32::NAN, 0.0, 0.0, 0.0]));
    let loss = unimatch::losses::nce_loss(
        &mut g,
        logits,
        &[0.0, 0.0],
        &[0.0, 0.0],
        &BiasConfig::bbcnce(),
    );
    assert!(g.value(loss).item().is_nan());
}
