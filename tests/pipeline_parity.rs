//! Differential suite for the `MatchPipeline` refactor.
//!
//! Every public query surface — `recommend_items[_batch]`,
//! `target_users[_batch[_checked]]`, `recommend_by_embeddings[_checked]`
//! — is now a thin wrapper over `FittedUniMatch::{item,user}_pipeline()`.
//! This suite proves the refactor is **bitwise invisible**: composing
//! the pipeline's public stages by hand (embed/gather → retrieve →
//! rerank → translate) reproduces every wrapper's bytes exactly, across
//! the full deployment matrix
//!
//! * index backend: exact / HNSW / IVF,
//! * shard fan-out: 1 / 3,
//! * store row format: f32 / i8,
//! * re-ranking: identity / full chain (debias + mmr + explore),
//!
//! for single, batched, and checked (quorum + degrade) call shapes.
//! Scores are compared via `f32::to_bits`, not `==`, so `-0.0`/`NaN`
//! drift or a re-accumulated dot product would fail the suite.

use unimatch::ann::Hit;
use unimatch::core::{
    load_checkpoint_with_format, save_model_with_marginals, DegradeOptions, FittedUniMatch,
    RerankConfig, RetrieverKind, RowFormat, UniMatch, UniMatchConfig,
};
use unimatch::data::{DatasetProfile, InteractionLog};

const SEED: u64 = 42;
const FULL_CHAIN: &str = "debias@0.5,mmr@0.3,explore@0.1";

fn base_config(
    kind: RetrieverKind,
    shards: usize,
    store: RowFormat,
    spec: &str,
) -> UniMatchConfig {
    UniMatchConfig {
        epochs_per_month: 1,
        max_seq_len: 8,
        seed: SEED,
        retriever: kind,
        shards,
        store,
        rerank: RerankConfig { spec: spec.to_string(), rules: None },
        ..Default::default()
    }
}

/// Trains once and persists a marginals-bearing checkpoint; every
/// deployment variant reloads from this single artifact (re-encoding the
/// store per format), so a divergence between a wrapper and the composed
/// pipeline cannot be blamed on training noise.
fn checkpoint() -> (std::path::PathBuf, InteractionLog) {
    static CKPT: std::sync::OnceLock<(std::path::PathBuf, InteractionLog)> =
        std::sync::OnceLock::new();
    CKPT.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("unimatch_pipeline_parity_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let path = dir.join("model.json");
        let log = DatasetProfile::EComp.generate(0.1, 4).filter_min_interactions(3);
        let fitted =
            UniMatch::new(base_config(RetrieverKind::Exact, 1, RowFormat::F32, "")).fit(log.clone());
        save_model_with_marginals(&fitted.model, Some(fitted.marginals()), &path)
            .expect("save checkpoint");
        (path, log)
    })
    .clone()
}

fn serve_variant(
    kind: RetrieverKind,
    shards: usize,
    store: RowFormat,
    spec: &str,
) -> FittedUniMatch {
    let (path, log) = checkpoint();
    let (model, item_store, marginals) =
        load_checkpoint_with_format(&path, store, false).expect("load checkpoint");
    let mut cfg = base_config(kind, shards, store, spec);
    cfg.embed_dim = model.config().embed_dim;
    cfg.max_seq_len = model.config().max_seq_len;
    UniMatch::new(cfg).serve_with_store_and_marginals(model, log, item_store, marginals)
}

fn assert_hits_bitwise(got: &[Hit], want: &[Hit], site: &str) {
    assert_eq!(got.len(), want.len(), "{site}: length diverged");
    for (g, w) in got.iter().zip(want) {
        assert_eq!((g.id, g.score.to_bits()), (w.id, w.score.to_bits()), "{site}");
    }
}

fn assert_pairs_bitwise(got: &[(u32, f32)], want: &[(u32, f32)], site: &str) {
    assert_eq!(got.len(), want.len(), "{site}: length diverged");
    for ((gu, gs), (wu, ws)) in got.iter().zip(want) {
        assert_eq!((gu, gs.to_bits()), (wu, ws.to_bits()), "{site}");
    }
}

/// The deployment matrix every parity check below runs over.
fn matrix() -> Vec<(RetrieverKind, usize, RowFormat, &'static str)> {
    let mut out = Vec::new();
    for kind in [RetrieverKind::Exact, RetrieverKind::Hnsw, RetrieverKind::Ivf] {
        for shards in [1usize, 3] {
            for store in [RowFormat::F32, RowFormat::I8] {
                for spec in ["", FULL_CHAIN] {
                    out.push((kind, shards, store, spec));
                }
            }
        }
    }
    out
}

#[test]
fn recommend_wrappers_equal_the_composed_item_pipeline() {
    let histories: Vec<Vec<u32>> = vec![vec![1, 2, 3], vec![4, 5], vec![0], vec![7, 8, 9, 10]];
    let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
    let k = 10;
    for (kind, shards, store, spec) in matrix() {
        let fitted = serve_variant(kind, shards, store, spec);
        let site = format!("{}/shards={shards}/{}/chain={spec:?}", kind.name(), store.name());
        let pipeline = fitted.item_pipeline();
        if spec.is_empty() {
            assert_eq!(pipeline.fetch_k(k), k, "{site}: identity chain must not over-fetch");
        } else {
            assert!(pipeline.fetch_k(k) > k, "{site}: chain must over-fetch");
        }

        // single: embed_one → run_one is the wrapper, composed by hand
        for h in &refs {
            let query = pipeline.embed_one(h);
            assert_eq!(
                fitted.user_embedding(h).iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                query.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{site}: user_embedding"
            );
            let hits = pipeline.retrieve_one(&query, pipeline.fetch_k(k));
            let want = pipeline.rerank(&query, hits, k);
            assert_hits_bitwise(&fitted.recommend_items(h, k), &want, &format!("{site} single"));
            assert_hits_bitwise(&pipeline.run_one(&query, k), &want, &format!("{site} run_one"));
        }

        // batched: embed → run, and each batch row equals its single
        let queries = pipeline.embed(&refs);
        let want = pipeline.run(&queries, k);
        let got = fitted.recommend_items_batch(&refs, k);
        let d = pipeline.dim();
        for (i, h) in refs.iter().enumerate() {
            assert_hits_bitwise(&got[i], &want[i], &format!("{site} batch row {i}"));
            let row = &queries[i * d..(i + 1) * d];
            assert_hits_bitwise(
                &pipeline.run_one(row, k),
                &want[i],
                &format!("{site} batch-vs-single row {i}"),
            );
            assert_hits_bitwise(
                &fitted.recommend_items(h, k),
                &want[i],
                &format!("{site} wrapper-vs-batch row {i}"),
            );
        }

        // checked with no degradation: same bytes + a healthy fan-out
        let (lists, health) = fitted
            .recommend_by_embeddings_checked(&queries, k, DegradeOptions::NONE)
            .expect("all shards healthy");
        assert!(!health.degraded(), "{site}: healthy run reported degraded");
        for (i, list) in lists.iter().enumerate() {
            assert_hits_bitwise(list, &want[i], &format!("{site} checked row {i}"));
        }
        let (lists, _) =
            pipeline.run_checked(&queries, k, DegradeOptions::NONE).expect("pipeline checked");
        for (i, list) in lists.iter().enumerate() {
            assert_hits_bitwise(list, &want[i], &format!("{site} pipeline-checked row {i}"));
        }
    }
}

#[test]
fn target_wrappers_equal_the_composed_user_pipeline() {
    let items = [1u32, 2, 5, 9];
    let k = 12;
    for (kind, shards, store, spec) in matrix() {
        let fitted = serve_variant(kind, shards, store, spec);
        let site = format!("{}/shards={shards}/{}/chain={spec:?}", kind.name(), store.name());
        let pipeline = fitted.user_pipeline();

        // single: gather → run_one → translate composed by hand
        for &item in &items {
            let query = pipeline.gather(&[item]);
            let hits = pipeline.run_one(&query, k);
            let want = pipeline.translate(hits);
            assert_pairs_bitwise(&fitted.target_users(item, k), &want, &format!("{site} single"));
            assert_pairs_bitwise(
                &fitted.target_users_by_embedding(&query, k),
                &want,
                &format!("{site} by-embedding"),
            );
        }

        // batched + checked: one gather feeds both shapes
        let queries = pipeline.gather(&items);
        let want: Vec<Vec<(u32, f32)>> =
            pipeline.run(&queries, k).into_iter().map(|hits| pipeline.translate(hits)).collect();
        let got = fitted.target_users_batch(&items, k);
        let (checked, health) = fitted
            .target_users_batch_checked(&items, k, DegradeOptions::NONE)
            .expect("all shards healthy");
        assert!(!health.degraded(), "{site}: healthy run reported degraded");
        for i in 0..items.len() {
            assert_pairs_bitwise(&got[i], &want[i], &format!("{site} batch row {i}"));
            assert_pairs_bitwise(&checked[i], &want[i], &format!("{site} checked row {i}"));
        }
    }
}

#[test]
fn composed_runners_equal_manual_stage_sequences() {
    // One chained deployment, stages interleaved by hand exactly as the
    // composed runners document themselves: `run` must be `run_one` per
    // row, `run_raw` must be retrieval at exactly k with no chain.
    let fitted = serve_variant(RetrieverKind::Exact, 1, RowFormat::F32, FULL_CHAIN);
    let pipeline = fitted.item_pipeline();
    let histories: Vec<Vec<u32>> = (0..6u32).map(|i| vec![i, i + 1, i + 2]).collect();
    let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
    let k = 8;
    let queries = pipeline.embed(&refs);
    let d = pipeline.dim();

    let raw = pipeline.run_raw(&queries, k);
    let composed = pipeline.run(&queries, k);
    for (i, _) in refs.iter().enumerate() {
        let row = &queries[i * d..(i + 1) * d];
        assert_hits_bitwise(
            &pipeline.retrieve_one(row, k),
            &raw[i],
            &format!("run_raw row {i} must be plain k-deep retrieval"),
        );
        let over = pipeline.retrieve_one(row, pipeline.fetch_k(k));
        let manual = pipeline.rerank(row, over, k);
        assert_hits_bitwise(&composed[i], &manual, &format!("run row {i} vs manual stages"));
        assert_eq!(composed[i].len(), k.min(pipeline.len()), "row {i} truncated to k");
    }
    assert!(!pipeline.is_empty(), "fixture index must not be empty");
    assert_eq!(pipeline.len(), fitted.num_items(), "item pipeline indexes the catalog");
}

#[test]
fn degrade_none_is_bitwise_invisible_and_skips_change_content() {
    let fitted = serve_variant(RetrieverKind::Exact, 1, RowFormat::F32, FULL_CHAIN);
    let pipeline = fitted.item_pipeline();
    let histories: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i, i + 3]).collect();
    let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
    let queries = pipeline.embed(&refs);
    let k = 10;

    let clean = pipeline.run(&queries, k);
    let (none, _) =
        pipeline.run_checked(&queries, k, DegradeOptions::NONE).expect("healthy");
    for (i, list) in none.iter().enumerate() {
        assert_hits_bitwise(list, &clean[i], &format!("DegradeOptions::NONE row {i}"));
    }

    // skipping explore must actually change bytes somewhere (the chain
    // has an explore stage) and must be flagged as content-affecting
    let degrade = DegradeOptions { skip_explore: true, ..DegradeOptions::NONE };
    assert!(fitted.degrade_affects_content(degrade), "skip_explore must affect content");
    let (skipped, _) = pipeline.run_checked(&queries, k, degrade).expect("healthy");
    let diverged = skipped
        .iter()
        .zip(&clean)
        .any(|(s, c)| {
            s.len() != c.len()
                || s.iter().zip(c.iter()).any(|(a, b)| {
                    (a.id, a.score.to_bits()) != (b.id, b.score.to_bits())
                })
        });
    assert!(diverged, "skipping explore changed nothing across 8 queries");
}
