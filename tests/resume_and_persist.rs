//! Integration: checkpoint persistence round-trips through disk and the
//! resume pathway continues training instead of restarting.

use unimatch::core::{
    load_model, model_from_json, model_to_json, save_model, UniMatch, UniMatchConfig,
};
use unimatch::data::calendar::month_start;
use unimatch::data::DatasetProfile;

#[test]
fn persisted_model_serves_identically() {
    let log = DatasetProfile::EComp.generate(0.2, 41).filter_min_interactions(3);
    let framework = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() });
    let fitted = framework.fit(log);
    let restored = model_from_json(&model_to_json(&fitted.model)).expect("round trip");
    let h = [1u32, 3, 5];
    assert_eq!(
        fitted.user_embedding(&h),
        {
            let batch = unimatch::data::SeqBatch::from_histories(&[&h[..]], 20);
            restored.infer_users(&batch).into_vec()
        },
        "restored model must embed identically"
    );
}

#[test]
fn resume_consumes_only_new_months() {
    let full = DatasetProfile::EComp.generate(0.25, 43).filter_min_interactions(3);
    let span = full.span_months();
    let early = full.filtered(|r| r.day < month_start(span - 2));

    let framework = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() });
    let fitted = framework.fit(early);
    let before = model_to_json(&fitted.model);

    // resuming with trained_through = last trained month: parameters must
    // move (new months are consumed)…
    let updated = framework.resume(fitted.model, full.clone(), span - 4);
    let after = model_to_json(&updated.model);
    assert_ne!(before, after, "resume must train on the new months");

    // …and resuming when nothing is new must leave parameters untouched.
    let noop = framework.resume(updated.model, full, span - 2);
    let after_noop = model_to_json(&noop.model);
    assert_eq!(after, after_noop, "no new months => no parameter movement");
}

#[test]
fn checkpoint_file_round_trip_through_fit() {
    let log = DatasetProfile::WComp.generate(0.15, 44).filter_min_interactions(3);
    let framework = UniMatch::new(UniMatchConfig { epochs_per_month: 1, ..Default::default() });
    let fitted = framework.fit(log);
    let path = std::env::temp_dir().join("unimatch_test_checkpoint.json");
    save_model(&fitted.model, &path).expect("save");
    let loaded = load_model(&path).expect("load");
    assert_eq!(loaded.params.num_scalars(), fitted.model.params.num_scalars());
    std::fs::remove_file(&path).ok();
}
