//! End-to-end test of the `unimatch-cli` binary: generate → fit →
//! recommend → target → evaluate over a temp directory.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_unimatch-cli"))
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("unimatch_cli_test_{name}"));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = tmp_dir("workflow");
    let log = dir.join("log.csv");
    let model = dir.join("model.json");

    let out = cli()
        .args(["generate", "--profile", "ecomp", "--scale", "0.2", "--seed", "9"])
        .args(["--out", log.to_str().expect("utf8 path")])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let csv = std::fs::read_to_string(&log).expect("log written");
    assert!(csv.starts_with("user,item,day\n"));
    assert!(csv.lines().count() > 100);

    let out = cli()
        .args(["fit", "--log", log.to_str().expect("utf8")])
        .args(["--out", model.to_str().expect("utf8"), "--epochs", "1"])
        .output()
        .expect("run fit");
    assert!(out.status.success(), "fit failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(model.exists());
    assert!(dir.join("model.json.users.json").exists());
    assert!(dir.join("model.json.items.json").exists());

    // pick a user that survives filtering: take one with many rows
    let mut counts = std::collections::HashMap::new();
    for line in csv.lines().skip(1) {
        let user = line.split(',').next().expect("user column");
        *counts.entry(user.to_string()).or_insert(0u32) += 1;
    }
    let busy_user = counts
        .iter()
        .max_by_key(|&(_, c)| c)
        .map(|(u, _)| u.clone())
        .expect("non-empty log");

    let out = cli()
        .args(["recommend", "--model", model.to_str().expect("utf8")])
        .args(["--log", log.to_str().expect("utf8"), "--user", &busy_user, "--k", "3"])
        .output()
        .expect("run recommend");
    assert!(out.status.success(), "recommend failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("top 3 items"), "{text}");
    assert!(text.matches("score").count() == 3, "{text}");

    let out = cli()
        .args(["target", "--model", model.to_str().expect("utf8")])
        .args(["--log", log.to_str().expect("utf8"), "--item", "i0", "--k", "3"])
        .output()
        .expect("run target");
    assert!(out.status.success(), "target failed: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("users to target"));

    let out = cli()
        .args(["evaluate", "--model", model.to_str().expect("utf8")])
        .args(["--log", log.to_str().expect("utf8"), "--negatives", "20"])
        .output()
        .expect("run evaluate");
    assert!(out.status.success(), "evaluate failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IR :") && text.contains("UT :"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

/// Sends one HTTP/1.1 request over a fresh connection and returns the raw
/// response (the server always closes the connection after answering).
fn http_request(addr: &str, method: &str, path: &str, body: &str) -> String {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

#[test]
fn serve_subcommand_answers_requests() {
    use std::io::BufRead;

    let dir = tmp_dir("serve");
    let log = dir.join("log.csv");
    let model = dir.join("model.json");

    let out = cli()
        .args(["generate", "--profile", "ecomp", "--scale", "0.15", "--seed", "21"])
        .args(["--out", log.to_str().expect("utf8")])
        .output()
        .expect("run generate");
    assert!(out.status.success(), "generate failed: {}", String::from_utf8_lossy(&out.stderr));
    let out = cli()
        .args(["fit", "--log", log.to_str().expect("utf8")])
        .args(["--out", model.to_str().expect("utf8"), "--epochs", "1"])
        .output()
        .expect("run fit");
    assert!(out.status.success(), "fit failed: {}", String::from_utf8_lossy(&out.stderr));

    // Port 0: the kernel picks a free port, the CLI prints the real one.
    let mut child = cli()
        .args(["serve", "--checkpoint", model.to_str().expect("utf8")])
        .args(["--log", log.to_str().expect("utf8"), "--addr", "127.0.0.1:0"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn serve");
    let stdout = child.stdout.take().expect("child stdout");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines.next().expect("serve exited before listening").expect("read stdout");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.split_whitespace().next().expect("addr token").to_string();
        }
    };

    let health = http_request(&addr, "GET", "/healthz", "");
    assert!(health.starts_with("HTTP/1.1 200"), "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    let rec = http_request(&addr, "POST", "/recommend", r#"{"history":[0,1,2],"k":3}"#);
    assert!(rec.starts_with("HTTP/1.1 200"), "{rec}");
    assert!(rec.contains("\"items\":["), "{rec}");

    let metrics = http_request(&addr, "GET", "/metrics", "");
    assert!(metrics.contains("unimatch_requests_total"), "{metrics}");

    child.kill().expect("kill serve");
    child.wait().expect("reap serve");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_rejects_bad_input() {
    let out = cli().args(["bogus"]).output().expect("run");
    assert!(!out.status.success());

    let dir = tmp_dir("badinput");
    let bad = dir.join("bad.csv");
    std::fs::write(&bad, "wrong,header\n1,2\n").expect("write");
    let out = cli()
        .args(["fit", "--log", bad.to_str().expect("utf8"), "--out", "/dev/null"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("expected header"));
    std::fs::remove_dir_all(&dir).ok();
}
