#!/bin/sh
# The repository's verification pipeline, runnable locally or in CI.
#
#   ./ci.sh
#
# 1. release build of every workspace target
# 2. the full test suite (tier-1)
# 3. the serving end-to-end test (real server on a loopback port)
# 4. the robustness suites: deterministic fault injection (including the
#    faults-disabled overhead assertion), durable/crash-safe training,
#    and the chaos serving e2e (armed fault plans + corrupt reloads
#    under live traffic)
# 5. the retrieval-engine differential suites (blocked kernel + every
#    backend + every refactored call site vs the stable-sort oracle,
#    bitwise)
# 6. a smoke benchmark snapshot (validates the BENCH_*.json schema end to
#    end) plus a report-only diff against the committed baselines
# 7. clippy over every target with warnings denied
# 8. rustdoc for the workspace's own crates, failing on any doc warning
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p unimatch-serve --test e2e (loopback serving)"
cargo test -q -p unimatch-serve --test e2e

echo "==> fault-injection suite (plan semantics + disarmed-overhead assertion)"
# `overhead` pins the no-op contract: a disarmed injection point must
# cost no more than the bound asserted in crates/faults/tests/overhead.rs.
cargo test -q -p unimatch-faults
cargo test -q -p unimatch-faults --test overhead -- --nocapture

echo "==> durable training suite (crash/resume equivalence, NaN rollback)"
cargo test -q -p unimatch-core durable
cargo test -q -p unimatch-core persist

echo "==> chaos serving e2e (armed faults + corrupt reloads under traffic)"
cargo test -q -p unimatch-serve --test chaos

echo "==> retrieval-engine differential suites (bitwise vs oracle)"
cargo test -q -p unimatch-ann --test retrieval_differential
cargo test -q -p unimatch-ann --test differential
cargo test -q --test retrieval_engine

echo "==> bench snapshot --smoke (schema-validated perf baselines)"
SNAP_DIR="$(mktemp -d)"
trap 'rm -rf "$SNAP_DIR"' EXIT
target/release/unimatch-cli bench snapshot --smoke --out "$SNAP_DIR"
# Report-only: smoke numbers are scaled down, so the diff against the
# committed full-run baselines informs rather than gates.
target/release/unimatch-cli bench diff --baseline . --current "$SNAP_DIR" || true

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> ci.sh: all green"
