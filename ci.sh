#!/bin/sh
# The repository's verification pipeline, runnable locally or in CI.
#
#   ./ci.sh
#
# 1. release build of every workspace target
# 2. the full test suite (tier-1)
# 3. the serving end-to-end test (real server on a loopback port)
# 4. the robustness suites: deterministic fault injection (including the
#    faults-disabled overhead assertion), durable/crash-safe training,
#    the chaos serving e2e (armed fault plans + corrupt reloads under
#    live traffic), and the degraded serving e2e (shard quorum partial
#    results + the brownout ladder under deadline pressure)
# 5. the retrieval-engine differential suites (blocked kernel + every
#    backend + every refactored call site vs the stable-sort oracle,
#    bitwise), including sharded-vs-unsharded parity
# 6. the re-ranking suites: the unimatch-rerank unit/property tests and
#    the chain differential suite (identity-chain bitwise parity across
#    backends and shard counts, seeded determinism, obs invariance)
# 7. the quantization suites: codec property tests (f16/i8 error bounds,
#    edge cases, fused dequant-dot oracle) and the recall-gated
#    differential suite (every backend x shard count x store format vs
#    the exact-f32 oracle, plus mmap==owned bitwise parity)
# 8. the pipeline parity suite (every public query wrapper vs the
#    composed MatchPipeline stages, bitwise, across backend x shards x
#    store format x rerank chain) and the shadow-deployment e2e (shadow-
#    off byte identity, A/A overlap 1.0, divergent-shadow comparison)
# 9. a smoke benchmark snapshot (validates the BENCH_*.json schema end to
#    end, including the rerank, quant, and shadow suites) plus a
#    report-only diff against the committed baselines
# 10. a smoke open-loop load run (loadgen --rerank-mix) against a live
#    loopback server running a re-ranking chain over a quantized,
#    mmap-backed store (--store i8 --mmap), diffed report-only against
#    the committed BENCH_load.json; then a second smoke run with client
#    retries against a server whose shard 0 is wedged by an armed fault,
#    proving quorum keeps the 200s flowing under partial failure
# 11. a smoke load run against a server with an A/A shadow armed at
#    --shadow-sample-rate 0.1, asserting the mirror actually pairs
#    answers (nonzero unimatch_shadow_pairs_total on /metrics)
# 12. on machines with >= 4 cores only: a report-only sharded-vs-
#    unsharded loadgen ladder (--shards 1 vs 4), per docs/OPERATIONS.md
# 13. clippy over every target with warnings denied
# 14. rustdoc for the workspace's own crates, failing on any doc warning
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -p unimatch-serve --test e2e (loopback serving)"
cargo test -q -p unimatch-serve --test e2e

echo "==> fault-injection suite (plan semantics + disarmed-overhead assertion)"
# `overhead` pins the no-op contract: a disarmed injection point must
# cost no more than the bound asserted in crates/faults/tests/overhead.rs.
cargo test -q -p unimatch-faults
cargo test -q -p unimatch-faults --test overhead -- --nocapture

echo "==> durable training suite (crash/resume equivalence, NaN rollback)"
cargo test -q -p unimatch-core durable
cargo test -q -p unimatch-core persist

echo "==> chaos serving e2e (armed faults + corrupt reloads under traffic)"
cargo test -q -p unimatch-serve --test chaos

echo "==> degraded serving e2e (shard quorum + brownout ladder under traffic)"
cargo test -q -p unimatch-serve --test degraded

echo "==> retrieval-engine differential suites (bitwise vs oracle)"
cargo test -q -p unimatch-ann --test retrieval_differential
cargo test -q -p unimatch-ann --test differential
cargo test -q -p unimatch-ann --test sharded_differential
cargo test -q --test retrieval_engine

echo "==> re-ranking suites (spec properties + chain differential parity)"
cargo test -q -p unimatch-rerank
cargo test -q --test rerank_parity

echo "==> quantization suites (codec properties + recall-gated differential)"
cargo test -q -p unimatch-ann --test quant_properties
cargo test -q -p unimatch-ann --test quant_differential
cargo test -q --test determinism

echo "==> pipeline parity suite (wrappers vs composed MatchPipeline, bitwise)"
cargo test -q --test pipeline_parity

echo "==> shadow deployment e2e (off = byte-identical, A/A = overlap 1.0)"
cargo test -q -p unimatch-serve --test shadow

echo "==> bench snapshot --smoke (schema-validated perf baselines)"
SNAP_DIR="$(mktemp -d)"
LOAD_DIR="$(mktemp -d)"
SERVE_PID=""
cleanup() {
    if [ -n "$SERVE_PID" ]; then kill "$SERVE_PID" 2>/dev/null || true; fi
    rm -rf "$SNAP_DIR" "$LOAD_DIR"
}
trap cleanup EXIT
target/release/unimatch-cli bench snapshot --smoke --out "$SNAP_DIR"
# Report-only: smoke numbers are scaled down, so the diff against the
# committed full-run baselines informs rather than gates.
target/release/unimatch-cli bench diff --baseline . --current "$SNAP_DIR" || true

echo "==> loadgen --smoke (open-loop load harness vs a loopback server)"
target/release/unimatch-cli generate --profile ecomp --scale 0.1 --seed 7 \
    --out "$LOAD_DIR/log.csv"
# --store i8 advertises a quantized sidecar table next to the checkpoint;
# serve then memory-maps it (--mmap), so the load run exercises the
# quantized read path end to end.
target/release/unimatch-cli fit --log "$LOAD_DIR/log.csv" \
    --out "$LOAD_DIR/model.json" --store i8
target/release/unimatch-cli serve --checkpoint "$LOAD_DIR/model.json" \
    --log "$LOAD_DIR/log.csv" --addr 127.0.0.1:7979 --shards 2 \
    --store i8 --mmap true \
    --rerank 'debias@0.5,mmr@0.3,explore@0.1' &
SERVE_PID=$!
# loadgen probes /healthz itself; retry while the server finishes its
# index build. --rerank-mix varies histories and k so the armed chain is
# exercised across distinct query tags and overfetch sizes.
tries=0
until target/release/unimatch-cli loadgen --addr 127.0.0.1:7979 --smoke \
    --rerank-mix --out "$LOAD_DIR" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -ge 15 ]; then
        echo "loadgen smoke: server never became reachable" >&2
        exit 1
    fi
    sleep 1
done
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""
# Report-only for the same reason as the snapshot diff above.
target/release/unimatch-cli bench diff --baseline . --current "$LOAD_DIR" || true

echo "==> loadgen --smoke vs a wedged shard (quorum keeps 200s flowing)"
# Shard 0 sleeps 60 ms per search against a 30 ms per-shard deadline, so
# every fan-out drops it; --min-shards 1 keeps the merge answering
# (flagged degraded), and the client retries ride out any stragglers.
target/release/unimatch-cli serve --checkpoint "$LOAD_DIR/model.json" \
    --log "$LOAD_DIR/log.csv" --addr 127.0.0.1:7980 --shards 2 \
    --min-shards 1 --shard-deadline-ms 30 \
    --faults 'ann.shard.search.0=latency:60000' &
SERVE_PID=$!
tries=0
until target/release/unimatch-cli loadgen --addr 127.0.0.1:7980 --smoke \
    --retries 2 --out "$LOAD_DIR" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -ge 15 ]; then
        echo "wedged-shard smoke: server never became reachable" >&2
        exit 1
    fi
    sleep 1
done
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

echo "==> loadgen --smoke vs an armed A/A shadow (mirror must pair answers)"
# The shadow serves the same checkpoint (an A/A test); 10% of answered
# queries are mirrored off the critical path. The smoke passes only if
# the scrape shows the mirror actually produced pairs.
target/release/unimatch-cli serve --checkpoint "$LOAD_DIR/model.json" \
    --log "$LOAD_DIR/log.csv" --addr 127.0.0.1:7981 \
    --shadow-sample-rate 0.1 &
SERVE_PID=$!
tries=0
until target/release/unimatch-cli loadgen --addr 127.0.0.1:7981 --smoke \
    --out "$LOAD_DIR" 2>/dev/null; do
    tries=$((tries + 1))
    if [ "$tries" -ge 15 ]; then
        echo "shadow smoke: server never became reachable" >&2
        exit 1
    fi
    sleep 1
done
# let the mirror queue drain, then require nonzero shadow pairs
sleep 1
SHADOW_PAIRS="$(curl -sf http://127.0.0.1:7981/metrics \
    | awk '/^unimatch_shadow_pairs_total/ { sum += $2 } END { print sum + 0 }')"
echo "shadow smoke: unimatch_shadow_pairs_total = $SHADOW_PAIRS"
if [ "$SHADOW_PAIRS" -le 0 ]; then
    echo "shadow smoke: mirror produced no pairs" >&2
    exit 1
fi
kill "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=""

# Report-only sharded-vs-unsharded ladder: shard fan-out only pays for
# itself with cores to fan out onto (docs/OPERATIONS.md), so the ladder
# runs only on machines with at least 4 and never gates.
if [ "$(nproc 2>/dev/null || echo 1)" -ge 4 ]; then
    echo "==> loadgen ladder: --shards 1 vs --shards 4 (report-only)"
    LADDER_A="$(mktemp -d)"
    LADDER_B="$(mktemp -d)"
    for SHARDS in 1 4; do
        OUT_DIR="$LADDER_A"; PORT=7982
        if [ "$SHARDS" = 4 ]; then OUT_DIR="$LADDER_B"; PORT=7983; fi
        target/release/unimatch-cli serve --checkpoint "$LOAD_DIR/model.json" \
            --log "$LOAD_DIR/log.csv" --addr "127.0.0.1:$PORT" \
            --shards "$SHARDS" &
        SERVE_PID=$!
        tries=0
        until target/release/unimatch-cli loadgen --addr "127.0.0.1:$PORT" \
            --smoke --out "$OUT_DIR" 2>/dev/null; do
            tries=$((tries + 1))
            if [ "$tries" -ge 15 ]; then
                echo "ladder smoke (--shards $SHARDS): server never became reachable" >&2
                exit 1
            fi
            sleep 1
        done
        kill "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
        SERVE_PID=""
    done
    echo "ladder: unsharded (baseline) vs 4-way sharded (current), report-only"
    target/release/unimatch-cli bench diff --baseline "$LADDER_A" --current "$LADDER_B" || true
    rm -rf "$LADDER_A" "$LADDER_B"
else
    echo "==> loadgen ladder skipped ($(nproc 2>/dev/null || echo 1) cores < 4)"
fi

echo "==> cargo clippy --workspace --all-targets (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> ci.sh: all green"
