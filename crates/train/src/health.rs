//! Training-health guardrails: cheap per-step checks that catch a run
//! going numerically bad *while it is happening* — a non-finite loss, or
//! a gradient norm spiking far above its recent moving average (the
//! signature of an LR too aggressive for the month's data).
//!
//! The monitor only *observes*; acting on a dirty report (rolling back to
//! the last good checkpoint, backing off the LR) is the durable-training
//! runner's job, which keeps the policy in one place and the hot loop
//! branch-cheap. Counters surface through `unimatch-obs` as
//! `unimatch_train_nonfinite_total` / `unimatch_train_grad_spike_total`.

use unimatch_obs as obs;

/// Detection thresholds.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// A step whose gradient norm exceeds `spike_factor ×` the running
    /// EMA counts as a spike.
    pub spike_factor: f32,
    /// EMA decay per step for the gradient-norm baseline.
    pub ema_decay: f32,
    /// Steps to observe before spike detection starts (the first steps
    /// of a fresh model legitimately have unsettled norms).
    pub warmup_steps: u64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig { spike_factor: 10.0, ema_decay: 0.95, warmup_steps: 20 }
    }
}

/// What the monitor has seen so far (cumulative; diff two snapshots to
/// scope a window).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Steps whose loss was NaN or infinite.
    pub nonfinite_losses: u64,
    /// Steps whose gradient norm was non-finite or spiked past the EMA
    /// threshold.
    pub grad_spikes: u64,
}

impl HealthReport {
    /// No incidents recorded.
    pub fn is_clean(&self) -> bool {
        self.nonfinite_losses == 0 && self.grad_spikes == 0
    }

    /// Incidents recorded since an earlier snapshot.
    pub fn since(&self, earlier: &HealthReport) -> HealthReport {
        HealthReport {
            nonfinite_losses: self.nonfinite_losses - earlier.nonfinite_losses,
            grad_spikes: self.grad_spikes - earlier.grad_spikes,
        }
    }
}

/// Per-trainer monitor state.
#[derive(Clone, Debug)]
pub struct HealthMonitor {
    cfg: HealthConfig,
    ema: f64,
    seen: u64,
    report: HealthReport,
}

impl HealthMonitor {
    /// Creates a monitor with the given thresholds.
    pub fn new(cfg: HealthConfig) -> HealthMonitor {
        HealthMonitor { cfg, ema: 0.0, seen: 0, report: HealthReport::default() }
    }

    /// Feeds one step's loss value and global gradient norm.
    pub fn observe(&mut self, loss: f32, grad_norm: f32) {
        if !loss.is_finite() {
            self.report.nonfinite_losses += 1;
            if obs::enabled() {
                obs::registry::counter("unimatch_train_nonfinite_total").inc();
            }
        }
        if !grad_norm.is_finite() {
            self.spike();
            return; // a non-finite norm must not poison the EMA
        }
        let norm = grad_norm as f64;
        if self.seen >= self.cfg.warmup_steps
            && norm > self.cfg.spike_factor as f64 * self.ema.max(f64::MIN_POSITIVE)
        {
            self.spike();
        } else {
            let d = self.cfg.ema_decay as f64;
            self.ema = if self.seen == 0 { norm } else { d * self.ema + (1.0 - d) * norm };
            self.seen += 1;
        }
    }

    fn spike(&mut self) {
        self.report.grad_spikes += 1;
        if obs::enabled() {
            obs::registry::counter("unimatch_train_grad_spike_total").inc();
        }
    }

    /// Cumulative incident counts.
    pub fn report(&self) -> HealthReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_norms_stay_clean() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        for i in 0..200 {
            m.observe(1.0, 0.5 + 0.01 * (i % 7) as f32);
        }
        assert!(m.report().is_clean(), "{:?}", m.report());
    }

    #[test]
    fn nonfinite_loss_is_counted() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe(f32::NAN, 1.0);
        m.observe(f32::INFINITY, 1.0);
        m.observe(1.0, 1.0);
        assert_eq!(m.report().nonfinite_losses, 2);
    }

    #[test]
    fn spike_detected_after_warmup_only() {
        let cfg = HealthConfig { spike_factor: 5.0, ema_decay: 0.9, warmup_steps: 10 };
        let mut m = HealthMonitor::new(cfg);
        m.observe(1.0, 100.0); // huge, but still warming up
        assert_eq!(m.report().grad_spikes, 0);
        for _ in 0..20 {
            m.observe(1.0, 1.0);
        }
        // the EMA has decayed toward 1 (still tainted by the warmup 100,
        // so use a spike that clears the threshold with margin)
        m.observe(1.0, 1000.0);
        assert_eq!(m.report().grad_spikes, 1);
        // the spike did not contaminate the EMA: a normal step is clean
        m.observe(1.0, 1.0);
        assert_eq!(m.report().grad_spikes, 1);
    }

    #[test]
    fn nonfinite_norm_counts_as_spike_without_poisoning_ema() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        for _ in 0..30 {
            m.observe(1.0, 1.0);
        }
        m.observe(1.0, f32::NAN);
        assert_eq!(m.report().grad_spikes, 1);
        m.observe(1.0, 1.0);
        assert_eq!(m.report().grad_spikes, 1);
    }

    #[test]
    fn report_diffing_scopes_a_window() {
        let mut m = HealthMonitor::new(HealthConfig::default());
        m.observe(f32::NAN, 1.0);
        let snap = m.report();
        m.observe(f32::NAN, 1.0);
        let window = m.report().since(&snap);
        assert_eq!(window.nonfinite_losses, 1);
    }
}
