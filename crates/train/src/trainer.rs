//! The training loop: per-batch steps for every loss pathway, epoch
//! driving, and the paper's month-by-month incremental schedule.
//!
//! Configuration is validated before the first step ([`TrainConfig::validate`],
//! run by every epoch driver and by [`Trainer::try_new`]), so an unusable
//! batch size or a missing SSM context surfaces as a [`TrainError`]
//! rather than a panic mid-run. An optional [`HealthMonitor`] watches
//! each step's loss and gradient norm for the durable-training runner's
//! rollback/LR-backoff policy. The `train.step` fault seam lets the
//! robustness suites inject a NaN exactly where an exploding loss would
//! produce one.

use crate::checkpoint::MonthCheckpoint;
use crate::error::TrainError;
use crate::health::{HealthConfig, HealthMonitor, HealthReport};
use crate::optim::{global_grad_norm, Adam, AdamConfig, AdamState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_data::alias::AliasTable;
use unimatch_data::batch::multinomial_batches;
use unimatch_data::{
    BceBatch, Marginals, MultinomialBatch, NegativeSampler, NegativeStrategy, Sample,
    TemporalSplit,
};
use unimatch_faults::{FaultKind, FaultPoint};
use unimatch_losses::{bce_loss, nce_loss, ssm_loss, MultinomialLoss};
use unimatch_models::TwoTower;
use unimatch_obs as obs;
use unimatch_tensor::Graph;

const STEP_FAULT: FaultPoint = FaultPoint::new("train.step");

/// Which loss pathway to train with.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrainLoss {
    /// A multinomial-family loss over positive-only batches (Tab. IV data).
    Multinomial(MultinomialLoss),
    /// BCE over labeled batches (Tab. V data) with the given negative
    /// sampling strategy.
    Bce(NegativeStrategy),
}

impl TrainLoss {
    /// Display label for tables.
    pub fn label(&self) -> String {
        match self {
            TrainLoss::Multinomial(m) => m.label().to_string(),
            TrainLoss::Bce(s) => format!("BCE {}", s.label()),
        }
    }
}

/// Training configuration (the Tab. VII hyperparameters plus plumbing).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct TrainConfig {
    /// Batch size (row count; for BCE this includes the 1:1 negatives).
    pub batch_size: usize,
    /// Epochs per month of incremental training.
    pub epochs_per_month: usize,
    /// History truncation length.
    pub max_seq_len: usize,
    /// Optimizer settings.
    pub optimizer: AdamConfig,
    /// Loss pathway.
    pub loss: TrainLoss,
    /// RNG seed for shuffling/sampling.
    pub seed: u64,
}

impl TrainConfig {
    /// Sensible defaults for the multinomial pathway (paper: batch 64).
    pub fn multinomial(loss: MultinomialLoss, max_seq_len: usize) -> Self {
        TrainConfig {
            batch_size: 64,
            epochs_per_month: 2,
            max_seq_len,
            optimizer: AdamConfig::default(),
            loss: TrainLoss::Multinomial(loss),
            seed: 17,
        }
    }

    /// Sensible defaults for the Bernoulli pathway (paper: batch 128–256,
    /// more epochs).
    pub fn bce(strategy: NegativeStrategy, max_seq_len: usize) -> Self {
        TrainConfig {
            batch_size: 128,
            epochs_per_month: 6,
            max_seq_len,
            optimizer: AdamConfig::default(),
            loss: TrainLoss::Bce(strategy),
            seed: 17,
        }
    }

    /// Checks every field is usable *before* any training starts. The
    /// epoch drivers run this first, so a bad config is a typed error at
    /// the call site, never a panic (or a NaN factory) steps later.
    pub fn validate(&self) -> Result<(), TrainError> {
        let bad = |msg: &str| Err(TrainError::InvalidConfig(msg.to_string()));
        if self.batch_size == 0 {
            return bad("batch_size must be positive");
        }
        if self.epochs_per_month == 0 {
            return bad("epochs_per_month must be positive");
        }
        if self.max_seq_len == 0 {
            return bad("max_seq_len must be positive");
        }
        let o = &self.optimizer;
        if !o.lr.is_finite() || o.lr <= 0.0 {
            return bad("optimizer.lr must be a positive finite number");
        }
        if !(0.0..1.0).contains(&o.beta1) || !(0.0..1.0).contains(&o.beta2) {
            return bad("optimizer betas must be in [0, 1)");
        }
        if !o.eps.is_finite() || o.eps <= 0.0 {
            return bad("optimizer.eps must be a positive finite number");
        }
        if let Some(c) = o.clip_norm {
            if !c.is_finite() || c <= 0.0 {
                return bad("optimizer.clip_norm must be a positive finite number");
            }
        }
        if let TrainLoss::Multinomial(MultinomialLoss::Ssm { negatives }) = self.loss {
            if negatives == 0 {
                return bad("SSM negatives must be positive");
            }
        }
        Ok(())
    }
}

/// Shared negative pool context for the SSM loss: the vocabulary-wide
/// unigram sampler plus its log-probabilities for the logQ correction.
pub struct SsmContext {
    alias: AliasTable,
    log_q: Vec<f32>,
    negatives: usize,
}

impl SsmContext {
    /// Builds the unigram sampler from training marginals.
    pub fn new(marginals: &Marginals, negatives: usize) -> Self {
        let probs = marginals.item_probs();
        SsmContext {
            alias: AliasTable::new(&probs),
            log_q: marginals.log_pi_all().to_vec(),
            negatives,
        }
    }
}

/// Counters describing how much data a training run consumed — the raw
/// material of the paper's cost analysis (Sec. IV-B5).
#[derive(Clone, Copy, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Optimization steps taken.
    pub steps: u64,
    /// Total records (rows) consumed, negatives included.
    pub records_consumed: u64,
    /// Sum of per-step losses (for averaging).
    pub loss_sum: f64,
}

impl TrainStats {
    /// Mean loss over all steps.
    pub fn mean_loss(&self) -> f32 {
        if self.steps == 0 {
            0.0
        } else {
            (self.loss_sum / self.steps as f64) as f32
        }
    }
}

/// Drives a [`TwoTower`] model through a [`TrainConfig`].
pub struct Trainer {
    /// The model under training.
    pub model: TwoTower,
    cfg: TrainConfig,
    opt: Adam,
    rng: StdRng,
    stats: TrainStats,
    health: Option<HealthMonitor>,
}

impl Trainer {
    /// Creates a trainer around a freshly initialized model. The config
    /// is validated lazily by the epoch drivers; use [`Trainer::try_new`]
    /// to surface a bad config at construction.
    pub fn new(model: TwoTower, cfg: TrainConfig) -> Self {
        let opt = Adam::new(cfg.optimizer);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Trainer { model, cfg, opt, rng, stats: TrainStats::default(), health: None }
    }

    /// Creates a trainer, validating the config first.
    pub fn try_new(model: TwoTower, cfg: TrainConfig) -> Result<Self, TrainError> {
        cfg.validate()?;
        Ok(Trainer::new(model, cfg))
    }

    /// The training configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Cumulative consumption statistics.
    pub fn stats(&self) -> &TrainStats {
        &self.stats
    }

    /// Overwrites the cumulative statistics (a durable resume carries
    /// them across the process boundary so the cost accounting of a
    /// resumed run matches an uninterrupted one).
    pub fn restore_stats(&mut self, stats: TrainStats) {
        self.stats = stats;
    }

    /// Reseeds the shuffling/sampling RNG. The durable runner reseeds at
    /// each month boundary with a per-month derived seed so a resumed run
    /// replays exactly the batches the uninterrupted run would have seen.
    pub fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// The current base learning rate.
    pub fn lr(&self) -> f32 {
        self.opt.lr()
    }

    /// Overrides the base learning rate (health-rollback LR backoff).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.optimizer.lr = lr;
        self.opt.set_lr(lr);
    }

    /// Snapshots the optimizer state for durable checkpointing.
    pub fn export_optimizer(&self) -> AdamState {
        self.opt.export_state(&self.model.params)
    }

    /// Restores an optimizer snapshot taken by [`Trainer::export_optimizer`].
    pub fn import_optimizer(&mut self, state: &AdamState) -> Result<(), TrainError> {
        self.opt.import_state(&self.model.params, state)
    }

    /// Turns on per-step health monitoring (off by default — it costs a
    /// gradient-norm pass per step).
    pub fn enable_health(&mut self, cfg: HealthConfig) {
        self.health = Some(HealthMonitor::new(cfg));
    }

    /// Cumulative health incidents, if monitoring is enabled.
    pub fn health_report(&self) -> Option<HealthReport> {
        self.health.as_ref().map(|h| h.report())
    }

    fn observe_health(&mut self, g: &Graph, loss: f32) {
        if let Some(h) = &mut self.health {
            h.observe(loss, global_grad_norm(g));
        }
    }

    /// One step on a multinomial batch. Returns the loss value, or a
    /// [`TrainError`] if the SSM pathway is driven without (or with a
    /// mismatched) [`SsmContext`].
    pub fn step_multinomial(
        &mut self,
        batch: &MultinomialBatch,
        kind: &MultinomialLoss,
        ssm: Option<&SsmContext>,
    ) -> Result<f32, TrainError> {
        let _step_span = obs::span_us("unimatch_train_step_us", "loss=\"multinomial\"");
        let mut g = Graph::new();
        let users = self.model.user_tower(&mut g, &batch.histories);
        let loss = match kind {
            MultinomialLoss::Nce(cfg) => {
                let items = self.model.item_tower(&mut g, &batch.items);
                let logits = self.model.inbatch_logits(&mut g, users, items);
                nce_loss(&mut g, logits, &batch.log_pu, &batch.log_pi, cfg)
            }
            MultinomialLoss::Ssm { negatives } => {
                let ctx = ssm.ok_or(TrainError::MissingSsmContext)?;
                if ctx.negatives != *negatives {
                    return Err(TrainError::SsmNegativesMismatch {
                        context: ctx.negatives,
                        loss: *negatives,
                    });
                }
                let pos_items = self.model.item_tower(&mut g, &batch.items);
                let pos = self.model.pair_logits(&mut g, users, pos_items);
                let neg_ids: Vec<u32> =
                    (0..ctx.negatives).map(|_| ctx.alias.sample(&mut self.rng)).collect();
                let neg_items = self.model.item_tower(&mut g, &neg_ids);
                let neg = self.model.inbatch_logits(&mut g, users, neg_items);
                let log_q_pos: Vec<f32> =
                    batch.items.iter().map(|&i| ctx.log_q[i as usize]).collect();
                let log_q_neg: Vec<f32> =
                    neg_ids.iter().map(|&i| ctx.log_q[i as usize]).collect();
                ssm_loss(&mut g, pos, neg, &log_q_pos, &log_q_neg)
            }
        };
        g.backward(loss);
        if obs::enabled() {
            record_step_metrics(&g, "loss=\"multinomial\"", batch.items.len() as u64);
        }
        self.opt.step(&mut self.model.params, &g);
        let mut value = g.value(loss).item();
        self.inject_step_fault(&mut value);
        self.observe_health(&g, value);
        self.stats.steps += 1;
        self.stats.records_consumed += batch.items.len() as u64;
        self.stats.loss_sum += value as f64;
        if obs::enabled() {
            obs::registry::gauge("unimatch_train_loss").set(value as f64);
        }
        Ok(value)
    }

    /// One step on a labeled BCE batch. Returns the loss value.
    pub fn step_bce(&mut self, batch: &BceBatch) -> f32 {
        let _step_span = obs::span_us("unimatch_train_step_us", "loss=\"bce\"");
        let mut g = Graph::new();
        let users = self.model.user_tower(&mut g, &batch.histories);
        let items = self.model.item_tower(&mut g, &batch.items);
        let logits = self.model.pair_logits(&mut g, users, items);
        let loss = bce_loss(&mut g, logits, &batch.labels);
        g.backward(loss);
        if obs::enabled() {
            record_step_metrics(&g, "loss=\"bce\"", batch.labels.len() as u64);
        }
        self.opt.step(&mut self.model.params, &g);
        let mut value = g.value(loss).item();
        self.inject_step_fault(&mut value);
        self.observe_health(&g, value);
        self.stats.steps += 1;
        self.stats.records_consumed += batch.labels.len() as u64;
        self.stats.loss_sum += value as f64;
        if obs::enabled() {
            obs::registry::gauge("unimatch_train_loss").set(value as f64);
        }
        value
    }

    /// The `train.step` fault seam: a planned bit-flip poisons this
    /// step's loss *and* one model parameter with NaN — the observable
    /// signature of a numerically exploded step, placed exactly where a
    /// real one would appear so the health/rollback machinery above is
    /// tested against the failure it claims to absorb.
    fn inject_step_fault(&mut self, value: &mut f32) {
        if let Some(FaultKind::BitFlip) = STEP_FAULT.fire() {
            *value = f32::NAN;
            if let Some(id) = self.model.params.ids().next() {
                self.model.params.get_mut(id).data_mut()[0] = f32::NAN;
            }
        }
    }

    /// Trains `epochs` passes over `samples` (shuffled per epoch). Returns
    /// the mean loss per epoch. The config is validated before the first
    /// step; SSM context problems surface as typed errors, not panics.
    pub fn train_epochs(
        &mut self,
        samples: &[Sample],
        marginals: &Marginals,
        epochs: usize,
    ) -> Result<Vec<f32>, TrainError> {
        self.cfg.validate()?;
        if samples.is_empty() {
            return Ok(vec![0.0; epochs]);
        }
        let mut out = Vec::with_capacity(epochs);
        match self.cfg.loss {
            TrainLoss::Multinomial(kind) => {
                let ssm = match kind {
                    MultinomialLoss::Ssm { negatives } => {
                        Some(SsmContext::new(marginals, negatives))
                    }
                    MultinomialLoss::Nce(_) => None,
                };
                for _ in 0..epochs {
                    let _epoch_span = obs::span_us("unimatch_train_epoch_us", "");
                    let batches = multinomial_batches(
                        samples,
                        marginals,
                        self.cfg.batch_size,
                        self.cfg.max_seq_len,
                        &mut self.rng,
                    );
                    let mut sum = 0.0;
                    for b in &batches {
                        sum += self.step_multinomial(b, &kind, ssm.as_ref())?;
                    }
                    let mean = sum / batches.len().max(1) as f32;
                    record_epoch_metrics(mean);
                    out.push(mean);
                }
            }
            TrainLoss::Bce(strategy) => {
                let num_items = self.model.config().num_items as u32;
                let sampler = NegativeSampler::new(samples, num_items);
                for _ in 0..epochs {
                    let _epoch_span = obs::span_us("unimatch_train_epoch_us", "");
                    let batches = sampler.bce_batches(
                        strategy,
                        self.cfg.batch_size,
                        self.cfg.max_seq_len,
                        &mut self.rng,
                    );
                    let mut sum = 0.0;
                    for b in &batches {
                        sum += self.step_bce(b);
                    }
                    let mean = sum / batches.len().max(1) as f32;
                    record_epoch_metrics(mean);
                    out.push(mean);
                }
            }
        }
        Ok(out)
    }

    /// The paper's incremental training: consume training months in
    /// calendar order, running `epochs_per_month` passes over each month's
    /// data from the latest parameters, checkpointing after every month.
    /// Marginals are computed over the full training window once, as the
    /// pre-calculated bias terms of Tab. IV.
    pub fn train_incremental(
        &mut self,
        split: &TemporalSplit,
        marginals: &Marginals,
    ) -> Result<Vec<MonthCheckpoint>, TrainError> {
        self.train_incremental_from(split, marginals, None)
    }

    /// Resumes incremental training from a saved checkpoint: trains only
    /// months strictly after `resume_after` (None ⇒ all training months).
    /// This is the production monthly update — last month's parameters +
    /// one new month of data instead of a from-scratch yearly retrain, the
    /// 1/12 factor of the paper's cost analysis.
    pub fn train_incremental_from(
        &mut self,
        split: &TemporalSplit,
        marginals: &Marginals,
        resume_after: Option<u32>,
    ) -> Result<Vec<MonthCheckpoint>, TrainError> {
        let mut checkpoints = Vec::new();
        for month in split
            .train_months()
            .into_iter()
            .filter(|&m| resume_after.is_none_or(|after| m > after))
        {
            let month_samples = split.train_month(month);
            let losses =
                self.train_epochs(&month_samples, marginals, self.cfg.epochs_per_month)?;
            checkpoints.push(MonthCheckpoint {
                month,
                params: self.model.params.clone(),
                mean_loss: losses.iter().copied().sum::<f32>() / losses.len().max(1) as f32,
            });
        }
        Ok(checkpoints)
    }
}

/// Records per-step observability series from a backpropagated graph:
/// step/record throughput counters and the global gradient L2 norm
/// (dense + sparse leaves). Call sites gate on [`obs::enabled`]; this
/// only *reads* gradient state, so enabling it cannot change training.
fn record_step_metrics(g: &Graph, loss_label: &'static str, records: u64) {
    obs::registry::counter_labeled("unimatch_train_steps_total", loss_label).inc();
    obs::registry::counter("unimatch_train_records_total").add(records);
    let mut sq_sum = 0.0f64;
    for t in g.dense_grads().values() {
        sq_sum += t.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
    }
    for sg in g.sparse_grads().values() {
        for row in sg.rows.values() {
            sq_sum += row.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
        }
    }
    let norm = sq_sum.sqrt();
    obs::registry::gauge("unimatch_train_grad_norm").set(norm);
    // Distribution in milli-units so the integer histogram resolves
    // norms well below 1.0.
    obs::registry::histogram("unimatch_train_grad_norm_milli", "", obs::COUNT_BOUNDS)
        .observe((norm * 1_000.0) as u64);
}

/// Records the per-epoch mean loss gauge and epoch counter.
fn record_epoch_metrics(mean_loss: f32) {
    if obs::enabled() {
        obs::registry::counter("unimatch_train_epochs_total").inc();
        obs::registry::gauge("unimatch_train_epoch_loss").set(mean_loss as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_data::windowing::{build_samples, WindowConfig};
    use unimatch_data::{temporal_split, DatasetProfile};
    use unimatch_losses::BiasConfig;
    use unimatch_models::ModelConfig;

    fn tiny_setup(loss: TrainLoss) -> (Trainer, Vec<Sample>, Marginals) {
        let log = DatasetProfile::EComp.generate(0.1, 3).filter_min_interactions(2);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        let marginals = Marginals::from_samples(&samples, log.num_users(), log.num_items());
        let mut rng = StdRng::seed_from_u64(1);
        let model = TwoTower::new(
            ModelConfig::youtube_dnn_mean(log.num_items() as usize, 8, 0.2),
            &mut rng,
        );
        let cfg = TrainConfig {
            batch_size: 32,
            epochs_per_month: 1,
            max_seq_len: 8,
            optimizer: AdamConfig::with_lr(0.05),
            loss,
            seed: 2,
        };
        (Trainer::new(model, cfg), samples, marginals)
    }

    #[test]
    fn nce_training_reduces_loss() {
        let (mut t, samples, marg) =
            tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())));
        let losses = t.train_epochs(&samples, &marg, 3).expect("train");
        assert!(losses[2] < losses[0], "losses {losses:?}");
        assert!(losses.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn ssm_training_reduces_loss() {
        let (mut t, samples, marg) =
            tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Ssm { negatives: 32 }));
        let losses = t.train_epochs(&samples, &marg, 3).expect("train");
        assert!(losses[2] < losses[0], "losses {losses:?}");
    }

    #[test]
    fn bce_training_reduces_loss() {
        let (mut t, samples, marg) = tiny_setup(TrainLoss::Bce(NegativeStrategy::Uniform));
        let losses = t.train_epochs(&samples, &marg, 3).expect("train");
        assert!(losses[2] < losses[0], "losses {losses:?}");
        // BCE consumes 2x records per positive (1:1 negatives)
        assert!(t.stats().records_consumed as usize >= samples.len() * 2 * 3 - 64);
    }

    #[test]
    fn ssm_without_context_is_a_typed_error() {
        let (mut t, samples, marg) =
            tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Ssm { negatives: 32 }));
        let batches = multinomial_batches(&samples, &marg, 32, 8, &mut StdRng::seed_from_u64(0));
        let err = t
            .step_multinomial(&batches[0], &MultinomialLoss::Ssm { negatives: 32 }, None)
            .expect_err("no context provided");
        assert_eq!(err, TrainError::MissingSsmContext);

        let wrong = SsmContext::new(&marg, 16);
        let err = t
            .step_multinomial(&batches[0], &MultinomialLoss::Ssm { negatives: 32 }, Some(&wrong))
            .expect_err("mismatched context");
        assert_eq!(err, TrainError::SsmNegativesMismatch { context: 16, loss: 32 });
    }

    #[test]
    fn invalid_configs_are_rejected_before_training() {
        let (t, samples, marg) =
            tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())));
        let num_items = t.model.config().num_items;
        let base = t.cfg;
        let fresh_model = || {
            let mut rng = StdRng::seed_from_u64(1);
            TwoTower::new(ModelConfig::youtube_dnn_mean(num_items, 8, 0.2), &mut rng)
        };

        let cases: Vec<(&str, TrainConfig)> = vec![
            ("batch_size", TrainConfig { batch_size: 0, ..base.clone() }),
            ("epochs_per_month", TrainConfig { epochs_per_month: 0, ..base.clone() }),
            ("max_seq_len", TrainConfig { max_seq_len: 0, ..base.clone() }),
            (
                "lr",
                TrainConfig {
                    optimizer: AdamConfig { lr: f32::NAN, ..base.optimizer },
                    ..base.clone()
                },
            ),
            (
                "beta1",
                TrainConfig {
                    optimizer: AdamConfig { beta1: 1.0, ..base.optimizer },
                    ..base.clone()
                },
            ),
            (
                "negatives",
                TrainConfig {
                    loss: TrainLoss::Multinomial(MultinomialLoss::Ssm { negatives: 0 }),
                    ..base.clone()
                },
            ),
        ];
        for (what, cfg) in cases {
            assert!(matches!(cfg.validate(), Err(TrainError::InvalidConfig(_))), "{what}");
            // and the epoch driver refuses before consuming anything
            let mut t = Trainer::new(fresh_model(), cfg);
            assert!(t.train_epochs(&samples, &marg, 1).is_err(), "{what}");
            assert_eq!(t.stats().steps, 0, "{what} must fail before the first step");
        }
        assert!(base.validate().is_ok());
        assert!(Trainer::try_new(fresh_model(), TrainConfig { batch_size: 0, ..base }).is_err());
    }

    #[test]
    fn incremental_training_checkpoints_every_month() {
        let log = DatasetProfile::EComp.generate(0.1, 5).filter_min_interactions(2);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        let split = temporal_split(&samples, log.span_months());
        let marginals = Marginals::from_samples(&split.train, log.num_users(), log.num_items());
        let mut rng = StdRng::seed_from_u64(4);
        let model = TwoTower::new(
            ModelConfig::youtube_dnn_mean(log.num_items() as usize, 8, 0.2),
            &mut rng,
        );
        let cfg = TrainConfig {
            batch_size: 32,
            epochs_per_month: 1,
            max_seq_len: 8,
            optimizer: AdamConfig::with_lr(0.05),
            loss: TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            seed: 5,
        };
        let mut trainer = Trainer::new(model, cfg);
        let checkpoints = trainer.train_incremental(&split, &marginals).expect("train");
        assert_eq!(checkpoints.len(), split.train_months().len());
        assert!(checkpoints.windows(2).all(|w| w[0].month < w[1].month));
        // parameters actually evolve between checkpoints; both snapshots
        // cover the same parameter set, so compare them pairwise rather
        // than unwrapping a single id out of one
        let a = &checkpoints[0].params;
        let b = &checkpoints[checkpoints.len() - 1].params;
        assert_eq!(a.len(), b.len());
        assert!(
            a.iter().zip(b.iter()).any(|((_, pa), (_, pb))| pa.value.data() != pb.value.data()),
            "parameters did not change between first and last checkpoint"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            let (mut t, samples, marg) =
                tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::infonce())));
            t.train_epochs(&samples, &marg, 1).expect("train")
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn health_monitor_catches_injected_nan_step() {
        let _guard = fault_test_lock();
        let (mut t, samples, marg) =
            tiny_setup(TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())));
        t.enable_health(HealthConfig::default());
        unimatch_faults::set_plan(unimatch_faults::FaultPlan {
            seed: 1,
            rules: vec![unimatch_faults::FaultRule::new("train.step", FaultKind::BitFlip)
                .with_max_fires(1)],
        });
        let _ = t.train_epochs(&samples, &marg, 1).expect("train");
        unimatch_faults::clear();
        let report = t.health_report().expect("monitoring enabled");
        assert!(report.nonfinite_losses >= 1, "{report:?}");
    }

    /// Serializes tests that arm the process-global fault plan.
    fn fault_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }
}
