//! Typed training errors.
//!
//! Configuration problems surface *before* the first optimization step —
//! a bad batch size or a missing SSM context is a caller bug that should
//! be reported as a value, not discovered as a panic three epochs into a
//! month of incremental training.

use std::fmt;

/// Why training could not proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TrainError {
    /// The [`crate::TrainConfig`] is unusable; the message names the field.
    InvalidConfig(String),
    /// An SSM step was driven without an [`crate::SsmContext`] — the
    /// shared unigram sampler must be built (once) before stepping.
    MissingSsmContext,
    /// The provided [`crate::SsmContext`] was built for a different
    /// negative count than the loss requests.
    SsmNegativesMismatch {
        /// Negatives the context was built for.
        context: usize,
        /// Negatives the loss configuration requests.
        loss: usize,
    },
    /// Optimizer state being imported does not match the model (a
    /// checkpoint from a different architecture).
    StateMismatch(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::InvalidConfig(msg) => write!(f, "invalid training config: {msg}"),
            TrainError::MissingSsmContext => {
                write!(f, "SSM training requires an SsmContext (build one with SsmContext::new)")
            }
            TrainError::SsmNegativesMismatch { context, loss } => write!(
                f,
                "SsmContext was built for {context} negatives but the loss requests {loss}"
            ),
            TrainError::StateMismatch(msg) => {
                write!(f, "optimizer state does not match the model: {msg}")
            }
        }
    }
}

impl std::error::Error for TrainError {}
