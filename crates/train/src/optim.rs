//! Optimizers: SGD and Adam, both aware of the engine's dense/sparse
//! gradient split. Embedding tables receive **lazy** updates — only rows
//! touched by the step pay any cost, which is what makes large-vocabulary
//! training tractable.

use crate::error::TrainError;
use crate::schedule::Schedule;
use std::collections::HashMap;
use unimatch_tensor::{Graph, ParamId, ParamSet, Tensor};

/// Global L2 norm of every gradient (dense and sparse) on a graph.
pub fn global_grad_norm(graph: &Graph) -> f32 {
    let mut sq = 0.0f64;
    for grad in graph.dense_grads().values() {
        sq += grad.norm_sq() as f64;
    }
    for sparse in graph.sparse_grads().values() {
        for row in sparse.rows.values() {
            sq += row.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
        }
    }
    (sq as f32).sqrt()
}

/// Plain SGD (optionally used by convergence experiments where Adam's
/// per-parameter scaling would distort the fitted optimum).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one step from the gradients accumulated in `graph`.
    pub fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        for (id, grad) in graph.dense_grads() {
            params.get_mut(id).axpy(-self.lr, &grad);
        }
        for (&id, sparse) in graph.sparse_grads() {
            let table = params.get_mut(id);
            for (&row, grad) in &sparse.rows {
                let dst = table.row_mut(row as usize);
                for (d, &g) in dst.iter_mut().zip(grad.iter()) {
                    *d -= self.lr * g;
                }
            }
        }
    }
}

/// Adam configuration.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator floor.
    pub eps: f32,
    /// Optional global-norm gradient clipping threshold.
    pub clip_norm: Option<f32>,
    /// Learning-rate schedule applied on top of `lr`.
    pub schedule: Schedule,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            schedule: Schedule::Constant,
        }
    }
}

impl AdamConfig {
    /// Default Adam with a custom learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig { lr, ..AdamConfig::default() }
    }
}

/// One embedding row's optimizer state: `(row index, first moment,
/// second moment)`.
pub type SparseRowState = (u32, Vec<f32>, Vec<f32>);

/// A portable snapshot of [`Adam`]'s internal state, keyed by parameter
/// name. Produced by [`Adam::export_state`]; the durable-training runner
/// serializes it into per-month checkpoints so a resumed run continues
/// with the exact moments an uninterrupted run would have had.
#[derive(Clone, Debug, Default)]
pub struct AdamState {
    /// Steps taken (drives bias correction and schedules).
    pub t: u64,
    /// Per-dense-parameter `(name, first moment, second moment)`.
    pub dense: Vec<(String, Tensor, Tensor)>,
    /// Per-embedding-table `(name, rows)`.
    pub sparse: Vec<(String, Vec<SparseRowState>)>,
}

/// Adam with dense state for dense parameters and per-row lazy state for
/// embedding tables.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
    sparse_m: HashMap<ParamId, HashMap<u32, Vec<f32>>>,
    sparse_v: HashMap<ParamId, HashMap<u32, Vec<f32>>>,
}

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
            sparse_m: HashMap::new(),
            sparse_v: HashMap::new(),
        }
    }

    /// The config.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// The current base learning rate.
    pub fn lr(&self) -> f32 {
        self.cfg.lr
    }

    /// Overrides the base learning rate (the durable runner's LR backoff
    /// after a health rollback). Moments and step count are untouched.
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }

    /// Snapshots the full optimizer state — step count plus first/second
    /// moments, dense and sparse — keyed by parameter *name* so the
    /// snapshot survives a process restart that rebuilds the `ParamSet`
    /// (ids are positional; names are stable). Output ordering is
    /// deterministic so serialized snapshots are byte-reproducible.
    pub fn export_state(&self, params: &ParamSet) -> AdamState {
        let name = |id: ParamId| params.name(id).to_string();
        let mut dense: Vec<(String, Tensor, Tensor)> = self
            .m
            .iter()
            .map(|(&id, m)| (name(id), m.clone(), self.v[&id].clone()))
            .collect();
        dense.sort_by(|a, b| a.0.cmp(&b.0));
        let mut sparse: Vec<(String, Vec<SparseRowState>)> = self
            .sparse_m
            .iter()
            .map(|(&id, rows_m)| {
                let rows_v = &self.sparse_v[&id];
                let mut rows: Vec<SparseRowState> = rows_m
                    .iter()
                    .map(|(&row, m)| (row, m.clone(), rows_v[&row].clone()))
                    .collect();
                rows.sort_by_key(|r| r.0);
                (name(id), rows)
            })
            .collect();
        sparse.sort_by(|a, b| a.0.cmp(&b.0));
        AdamState { t: self.t, dense, sparse }
    }

    /// Restores a snapshot taken by [`Adam::export_state`], resolving
    /// parameter names against `params`. Any name the model does not know
    /// is a state/architecture mismatch and fails the import whole.
    pub fn import_state(&mut self, params: &ParamSet, state: &AdamState) -> Result<(), TrainError> {
        let lookup = |name: &str| -> Result<ParamId, TrainError> {
            params
                .iter()
                .find(|(_, p)| p.name == name)
                .map(|(id, _)| id)
                .ok_or_else(|| TrainError::StateMismatch(format!("unknown parameter {name}")))
        };
        let mut m = HashMap::new();
        let mut v = HashMap::new();
        for (name, sm, sv) in &state.dense {
            let id = lookup(name)?;
            if sm.shape() != params.shape(id) {
                return Err(TrainError::StateMismatch(format!(
                    "moment shape {} for {name} does not match parameter {}",
                    sm.shape(),
                    params.shape(id)
                )));
            }
            m.insert(id, sm.clone());
            v.insert(id, sv.clone());
        }
        let mut sparse_m = HashMap::new();
        let mut sparse_v = HashMap::new();
        for (name, rows) in &state.sparse {
            let id = lookup(name)?;
            let mut rm = HashMap::new();
            let mut rv = HashMap::new();
            for (row, sm, sv) in rows {
                rm.insert(*row, sm.clone());
                rv.insert(*row, sv.clone());
            }
            sparse_m.insert(id, rm);
            sparse_v.insert(id, rv);
        }
        self.t = state.t;
        self.m = m;
        self.v = v;
        self.sparse_m = sparse_m;
        self.sparse_v = sparse_v;
        Ok(())
    }

    /// Applies one step from the gradients accumulated in `graph`.
    pub fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        self.t += 1;
        let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.cfg.lr * self.cfg.schedule.multiplier(self.t);
        // global-norm clipping rescales the *effective* gradients by
        // folding the factor into the step size-independent moments input
        let clip = match self.cfg.clip_norm {
            Some(max) => {
                let norm = global_grad_norm(graph);
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let scale = lr * bias2.sqrt() / bias1;

        for (id, grad) in graph.dense_grads() {
            let shape = params.get(id).shape().clone();
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(shape.clone()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(shape));
            let p = params.get_mut(id);
            for ((pd, gd), (md, vd)) in p
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                let gd = gd * clip;
                *md = b1 * *md + (1.0 - b1) * gd;
                *vd = b2 * *vd + (1.0 - b2) * gd * gd;
                *pd -= scale * *md / (vd.sqrt() + self.cfg.eps);
            }
        }

        for (&id, sparse) in graph.sparse_grads() {
            let dim = sparse.dim;
            let sm = self.sparse_m.entry(id).or_default();
            let sv = self.sparse_v.entry(id).or_default();
            let table = params.get_mut(id);
            for (&row, grad) in &sparse.rows {
                let m = sm.entry(row).or_insert_with(|| vec![0.0; dim]);
                let v = sv.entry(row).or_insert_with(|| vec![0.0; dim]);
                let dst = table.row_mut(row as usize);
                for (((pd, &gd), md), vd) in
                    dst.iter_mut().zip(grad.iter()).zip(m.iter_mut()).zip(v.iter_mut())
                {
                    let gd = gd * clip;
                    *md = b1 * *md + (1.0 - b1) * gd;
                    *vd = b2 * *vd + (1.0 - b2) * gd * gd;
                    *pd -= scale * *md / (vd.sqrt() + self.cfg.eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_tensor::Graph;

    /// Minimizes (x - 3)^2 with each optimizer.
    fn quadratic_target(opt_step: &mut dyn FnMut(&mut ParamSet, &Graph)) -> f32 {
        let mut params = ParamSet::new();
        let x = params.add("x", Tensor::vector(&[0.0]));
        for _ in 0..400 {
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let shifted = g.add_scalar(xv, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            opt_step(&mut params, &g);
        }
        params.get(x).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = quadratic_target(&mut |p, g| sgd.step(p, g));
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig::with_lr(0.05));
        let x = quadratic_target(&mut |p, g| adam.step(p, g));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn grad_clipping_bounds_update_magnitude() {
        // A huge-gradient step with clip_norm must move parameters no more
        // than an equivalent small-gradient step would.
        let run = |clip: Option<f32>| -> f32 {
            let mut params = ParamSet::new();
            let x = params.add("x", Tensor::vector(&[0.0]));
            let mut adam = Adam::new(AdamConfig { lr: 0.1, clip_norm: clip, ..Default::default() });
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let big = g.scale(xv, 1.0);
            let shifted = g.add_scalar(big, -1000.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
            params.get(x).data()[0].abs()
        };
        // Adam normalizes by sqrt(v), so single-step displacement is ~lr in
        // both cases; clipping must not break that and must stay finite.
        let clipped = run(Some(1.0));
        let unclipped = run(None);
        assert!(clipped.is_finite() && unclipped.is_finite());
        assert!(clipped <= unclipped + 1e-6);
    }

    #[test]
    fn schedule_scales_first_step() {
        // warmup over 10 steps: first step uses lr/10
        let displacement = |schedule| -> f32 {
            let mut params = ParamSet::new();
            let x = params.add("x", Tensor::vector(&[0.0]));
            let mut adam = Adam::new(AdamConfig { lr: 0.1, schedule, ..Default::default() });
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let shifted = g.add_scalar(xv, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
            params.get(x).data()[0].abs()
        };
        let warm = displacement(crate::schedule::Schedule::Warmup { steps: 10 });
        let full = displacement(crate::schedule::Schedule::Constant);
        assert!((warm - full / 10.0).abs() < full * 0.02, "warm {warm} vs full {full}");
    }

    #[test]
    fn global_grad_norm_covers_dense_and_sparse() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::vector(&[1.0]));
        let table = params.add("emb", Tensor::ones([4, 1]));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let e = g.embedding(&params, table, &[2]);
        let flat = g.reshape(e, [1]);
        let both = g.mul(wv, flat);
        let loss = g.sum_all(both);
        g.backward(loss);
        // d/dw = e[2] = 1, d/de[2] = w = 1 -> norm = sqrt(2)
        let n = global_grad_norm(&g);
        assert!((n - 2f32.sqrt()).abs() < 1e-5, "norm {n}");
    }

    #[test]
    fn adam_sparse_only_touches_gathered_rows() {
        let mut params = ParamSet::new();
        let table = params.add("emb", Tensor::ones([4, 2]));
        let before_row3 = params.get(table).row(3).to_vec();
        let mut adam = Adam::new(AdamConfig::default());
        let mut g = Graph::new();
        let e = g.embedding(&params, table, &[0, 2]);
        let sq = g.mul(e, e);
        let loss = g.sum_all(sq);
        g.backward(loss);
        adam.step(&mut params, &g);
        // rows 0 and 2 moved, rows 1 and 3 untouched
        assert_ne!(params.get(table).row(0), [1.0, 1.0]);
        assert_ne!(params.get(table).row(2), [1.0, 1.0]);
        assert_eq!(params.get(table).row(1), [1.0, 1.0]);
        assert_eq!(params.get(table).row(3), before_row3.as_slice());
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        // two optimizers: one runs 20 steps straight; the other runs 10,
        // exports, is replaced by a fresh optimizer importing the state,
        // and runs 10 more — the trajectories must be identical
        let make = || {
            let mut params = ParamSet::new();
            params.add("w", Tensor::vector(&[0.0]));
            params.add("emb", Tensor::ones([4, 2]));
            params
        };
        let step = |adam: &mut Adam, params: &mut ParamSet| {
            let ids: Vec<ParamId> = params.ids().collect();
            let mut g = Graph::new();
            let wv = g.param(params, ids[0]);
            let e = g.embedding(params, ids[1], &[1, 3]);
            let ee = g.mul(e, e);
            let se = g.sum_all(ee);
            let ww = g.mul(wv, wv);
            let sw = g.sum_all(ww);
            let shifted = g.add_scalar(sw, -4.0);
            let loss = g.add(se, shifted);
            g.backward(loss);
            adam.step(params, &g);
        };

        let mut p1 = make();
        let mut a1 = Adam::new(AdamConfig::with_lr(0.05));
        for _ in 0..20 {
            step(&mut a1, &mut p1);
        }

        let mut p2 = make();
        let mut a2 = Adam::new(AdamConfig::with_lr(0.05));
        for _ in 0..10 {
            step(&mut a2, &mut p2);
        }
        let snapshot = a2.export_state(&p2);
        let mut resumed = Adam::new(AdamConfig::with_lr(0.05));
        resumed.import_state(&p2, &snapshot).expect("import");
        assert_eq!(resumed.steps(), 10);
        for _ in 0..10 {
            step(&mut resumed, &mut p2);
        }

        for (id, p) in p1.iter() {
            assert_eq!(p.value.data(), p2.get(id).data(), "{}", p.name);
        }
    }

    #[test]
    fn state_import_rejects_unknown_parameters() {
        let mut params = ParamSet::new();
        params.add("w", Tensor::vector(&[0.0]));
        let state = AdamState {
            t: 3,
            dense: vec![("nonexistent".into(), Tensor::vector(&[0.0]), Tensor::vector(&[0.0]))],
            sparse: vec![],
        };
        let mut adam = Adam::new(AdamConfig::default());
        assert!(adam.import_state(&params, &state).is_err());
        assert_eq!(adam.steps(), 0, "failed import must not partially apply");
    }

    #[test]
    fn sparse_embedding_regression_converges() {
        // Fit embedding rows so row r matches target t_r under MSE.
        let mut params = ParamSet::new();
        let table = params.add("emb", Tensor::zeros([3, 2]));
        let targets = [[1.0f32, -1.0], [0.5, 2.0], [-2.0, 0.25]];
        let mut adam = Adam::new(AdamConfig::with_lr(0.05));
        for _ in 0..500 {
            let mut g = Graph::new();
            let e = g.embedding(&params, table, &[0, 1, 2]);
            let t = g.constant(Tensor::from_vec([3, 2], targets.concat()));
            let diff = g.sub(e, t);
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
        }
        for (r, target) in targets.iter().enumerate() {
            for (a, b) in params.get(table).row(r).iter().zip(target) {
                assert!((a - b).abs() < 0.05, "row {r}: {a} vs {b}");
            }
        }
    }
}
