//! Optimizers: SGD and Adam, both aware of the engine's dense/sparse
//! gradient split. Embedding tables receive **lazy** updates — only rows
//! touched by the step pay any cost, which is what makes large-vocabulary
//! training tractable.

use crate::schedule::Schedule;
use std::collections::HashMap;
use unimatch_tensor::{Graph, ParamId, ParamSet, Tensor};

/// Global L2 norm of every gradient (dense and sparse) on a graph.
pub fn global_grad_norm(graph: &Graph) -> f32 {
    let mut sq = 0.0f64;
    for grad in graph.dense_grads().values() {
        sq += grad.norm_sq() as f64;
    }
    for sparse in graph.sparse_grads().values() {
        for row in sparse.rows.values() {
            sq += row.iter().map(|&g| (g as f64) * (g as f64)).sum::<f64>();
        }
    }
    (sq as f32).sqrt()
}

/// Plain SGD (optionally used by convergence experiments where Adam's
/// per-parameter scaling would distort the fitted optimum).
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one step from the gradients accumulated in `graph`.
    pub fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        for (id, grad) in graph.dense_grads() {
            params.get_mut(id).axpy(-self.lr, &grad);
        }
        for (&id, sparse) in graph.sparse_grads() {
            let table = params.get_mut(id);
            for (&row, grad) in &sparse.rows {
                let dst = table.row_mut(row as usize);
                for (d, &g) in dst.iter_mut().zip(grad.iter()) {
                    *d -= self.lr * g;
                }
            }
        }
    }
}

/// Adam configuration.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator floor.
    pub eps: f32,
    /// Optional global-norm gradient clipping threshold.
    pub clip_norm: Option<f32>,
    /// Learning-rate schedule applied on top of `lr`.
    pub schedule: Schedule,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-2,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: None,
            schedule: Schedule::Constant,
        }
    }
}

impl AdamConfig {
    /// Default Adam with a custom learning rate.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig { lr, ..AdamConfig::default() }
    }
}

/// Adam with dense state for dense parameters and per-row lazy state for
/// embedding tables.
#[derive(Debug)]
pub struct Adam {
    cfg: AdamConfig,
    t: u64,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
    sparse_m: HashMap<ParamId, HashMap<u32, Vec<f32>>>,
    sparse_v: HashMap<ParamId, HashMap<u32, Vec<f32>>>,
}

impl Adam {
    /// Creates an Adam optimizer.
    pub fn new(cfg: AdamConfig) -> Self {
        Adam {
            cfg,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
            sparse_m: HashMap::new(),
            sparse_v: HashMap::new(),
        }
    }

    /// The config.
    pub fn config(&self) -> &AdamConfig {
        &self.cfg
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one step from the gradients accumulated in `graph`.
    pub fn step(&mut self, params: &mut ParamSet, graph: &Graph) {
        self.t += 1;
        let (b1, b2) = (self.cfg.beta1, self.cfg.beta2);
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.cfg.lr * self.cfg.schedule.multiplier(self.t);
        // global-norm clipping rescales the *effective* gradients by
        // folding the factor into the step size-independent moments input
        let clip = match self.cfg.clip_norm {
            Some(max) => {
                let norm = global_grad_norm(graph);
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        let scale = lr * bias2.sqrt() / bias1;

        for (id, grad) in graph.dense_grads() {
            let shape = params.get(id).shape().clone();
            let m = self.m.entry(id).or_insert_with(|| Tensor::zeros(shape.clone()));
            let v = self.v.entry(id).or_insert_with(|| Tensor::zeros(shape));
            let p = params.get_mut(id);
            for ((pd, gd), (md, vd)) in p
                .data_mut()
                .iter_mut()
                .zip(grad.data())
                .zip(m.data_mut().iter_mut().zip(v.data_mut().iter_mut()))
            {
                let gd = gd * clip;
                *md = b1 * *md + (1.0 - b1) * gd;
                *vd = b2 * *vd + (1.0 - b2) * gd * gd;
                *pd -= scale * *md / (vd.sqrt() + self.cfg.eps);
            }
        }

        for (&id, sparse) in graph.sparse_grads() {
            let dim = sparse.dim;
            let sm = self.sparse_m.entry(id).or_default();
            let sv = self.sparse_v.entry(id).or_default();
            let table = params.get_mut(id);
            for (&row, grad) in &sparse.rows {
                let m = sm.entry(row).or_insert_with(|| vec![0.0; dim]);
                let v = sv.entry(row).or_insert_with(|| vec![0.0; dim]);
                let dst = table.row_mut(row as usize);
                for (((pd, &gd), md), vd) in
                    dst.iter_mut().zip(grad.iter()).zip(m.iter_mut()).zip(v.iter_mut())
                {
                    let gd = gd * clip;
                    *md = b1 * *md + (1.0 - b1) * gd;
                    *vd = b2 * *vd + (1.0 - b2) * gd * gd;
                    *pd -= scale * *md / (vd.sqrt() + self.cfg.eps);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_tensor::Graph;

    /// Minimizes (x - 3)^2 with each optimizer.
    fn quadratic_target(opt_step: &mut dyn FnMut(&mut ParamSet, &Graph)) -> f32 {
        let mut params = ParamSet::new();
        let x = params.add("x", Tensor::vector(&[0.0]));
        for _ in 0..400 {
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let shifted = g.add_scalar(xv, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            opt_step(&mut params, &g);
        }
        params.get(x).data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.1);
        let x = quadratic_target(&mut |p, g| sgd.step(p, g));
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(AdamConfig::with_lr(0.05));
        let x = quadratic_target(&mut |p, g| adam.step(p, g));
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn grad_clipping_bounds_update_magnitude() {
        // A huge-gradient step with clip_norm must move parameters no more
        // than an equivalent small-gradient step would.
        let run = |clip: Option<f32>| -> f32 {
            let mut params = ParamSet::new();
            let x = params.add("x", Tensor::vector(&[0.0]));
            let mut adam = Adam::new(AdamConfig { lr: 0.1, clip_norm: clip, ..Default::default() });
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let big = g.scale(xv, 1.0);
            let shifted = g.add_scalar(big, -1000.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
            params.get(x).data()[0].abs()
        };
        // Adam normalizes by sqrt(v), so single-step displacement is ~lr in
        // both cases; clipping must not break that and must stay finite.
        let clipped = run(Some(1.0));
        let unclipped = run(None);
        assert!(clipped.is_finite() && unclipped.is_finite());
        assert!(clipped <= unclipped + 1e-6);
    }

    #[test]
    fn schedule_scales_first_step() {
        // warmup over 10 steps: first step uses lr/10
        let displacement = |schedule| -> f32 {
            let mut params = ParamSet::new();
            let x = params.add("x", Tensor::vector(&[0.0]));
            let mut adam = Adam::new(AdamConfig { lr: 0.1, schedule, ..Default::default() });
            let mut g = Graph::new();
            let xv = g.param(&params, x);
            let shifted = g.add_scalar(xv, -3.0);
            let sq = g.mul(shifted, shifted);
            let loss = g.sum_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
            params.get(x).data()[0].abs()
        };
        let warm = displacement(crate::schedule::Schedule::Warmup { steps: 10 });
        let full = displacement(crate::schedule::Schedule::Constant);
        assert!((warm - full / 10.0).abs() < full * 0.02, "warm {warm} vs full {full}");
    }

    #[test]
    fn global_grad_norm_covers_dense_and_sparse() {
        let mut params = ParamSet::new();
        let w = params.add("w", Tensor::vector(&[1.0]));
        let table = params.add("emb", Tensor::ones([4, 1]));
        let mut g = Graph::new();
        let wv = g.param(&params, w);
        let e = g.embedding(&params, table, &[2]);
        let flat = g.reshape(e, [1]);
        let both = g.mul(wv, flat);
        let loss = g.sum_all(both);
        g.backward(loss);
        // d/dw = e[2] = 1, d/de[2] = w = 1 -> norm = sqrt(2)
        let n = global_grad_norm(&g);
        assert!((n - 2f32.sqrt()).abs() < 1e-5, "norm {n}");
    }

    #[test]
    fn adam_sparse_only_touches_gathered_rows() {
        let mut params = ParamSet::new();
        let table = params.add("emb", Tensor::ones([4, 2]));
        let before_row3 = params.get(table).row(3).to_vec();
        let mut adam = Adam::new(AdamConfig::default());
        let mut g = Graph::new();
        let e = g.embedding(&params, table, &[0, 2]);
        let sq = g.mul(e, e);
        let loss = g.sum_all(sq);
        g.backward(loss);
        adam.step(&mut params, &g);
        // rows 0 and 2 moved, rows 1 and 3 untouched
        assert_ne!(params.get(table).row(0), [1.0, 1.0]);
        assert_ne!(params.get(table).row(2), [1.0, 1.0]);
        assert_eq!(params.get(table).row(1), [1.0, 1.0]);
        assert_eq!(params.get(table).row(3), before_row3.as_slice());
    }

    #[test]
    fn sparse_embedding_regression_converges() {
        // Fit embedding rows so row r matches target t_r under MSE.
        let mut params = ParamSet::new();
        let table = params.add("emb", Tensor::zeros([3, 2]));
        let targets = [[1.0f32, -1.0], [0.5, 2.0], [-2.0, 0.25]];
        let mut adam = Adam::new(AdamConfig::with_lr(0.05));
        for _ in 0..500 {
            let mut g = Graph::new();
            let e = g.embedding(&params, table, &[0, 1, 2]);
            let t = g.constant(Tensor::from_vec([3, 2], targets.concat()));
            let diff = g.sub(e, t);
            let sq = g.mul(diff, diff);
            let loss = g.mean_all(sq);
            g.backward(loss);
            adam.step(&mut params, &g);
        }
        for (r, target) in targets.iter().enumerate() {
            for (a, b) in params.get(table).row(r).iter().zip(target) {
                assert!((a - b).abs() < 0.05, "row {r}: {a} vs {b}");
            }
        }
    }
}
