//! Learning-rate schedules. The paper trains at a fixed rate; schedules
//! are provided for the ablation experiments and for production users who
//! run many incremental months and want late-stage decay.

/// A learning-rate schedule mapping an optimizer step to a multiplier of
/// the base rate.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Schedule {
    /// Always the base rate.
    Constant,
    /// Linear warmup over the first `steps`, then the base rate.
    Warmup {
        /// Warmup length in steps.
        steps: u64,
    },
    /// Multiply by `factor` every `every` steps.
    StepDecay {
        /// Steps between decays.
        every: u64,
        /// Per-decay multiplier in `(0, 1]`.
        factor: f32,
    },
    /// Linear warmup then inverse-square-root decay (the Transformer
    /// classic).
    WarmupInvSqrt {
        /// Warmup length in steps.
        steps: u64,
    },
}

impl Schedule {
    /// The multiplier at 1-indexed optimizer step `step`.
    pub fn multiplier(&self, step: u64) -> f32 {
        let step = step.max(1);
        match *self {
            Schedule::Constant => 1.0,
            Schedule::Warmup { steps } => {
                if steps == 0 {
                    1.0
                } else {
                    (step as f32 / steps as f32).min(1.0)
                }
            }
            Schedule::StepDecay { every, factor } => {
                assert!(every > 0, "decay interval must be positive");
                assert!((0.0..=1.0).contains(&factor), "decay factor must be in (0,1]");
                factor.powi(((step - 1) / every) as i32)
            }
            Schedule::WarmupInvSqrt { steps } => {
                let w = steps.max(1) as f32;
                let s = step as f32;
                (s / w).min((w / s).sqrt())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(Schedule::Constant.multiplier(1), 1.0);
        assert_eq!(Schedule::Constant.multiplier(1_000_000), 1.0);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let s = Schedule::Warmup { steps: 10 };
        assert!((s.multiplier(1) - 0.1).abs() < 1e-6);
        assert!((s.multiplier(5) - 0.5).abs() < 1e-6);
        assert_eq!(s.multiplier(10), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = Schedule::StepDecay { every: 100, factor: 0.5 };
        assert_eq!(s.multiplier(1), 1.0);
        assert_eq!(s.multiplier(100), 1.0);
        assert_eq!(s.multiplier(101), 0.5);
        assert_eq!(s.multiplier(201), 0.25);
    }

    #[test]
    fn warmup_invsqrt_peaks_at_warmup_end() {
        let s = Schedule::WarmupInvSqrt { steps: 16 };
        let peak = s.multiplier(16);
        assert!(s.multiplier(8) < peak);
        assert!(s.multiplier(64) < peak);
        // decays like 1/sqrt: at 4x warmup, half the peak
        assert!((s.multiplier(64) - peak / 2.0).abs() < 1e-4);
    }

    #[test]
    fn multipliers_are_positive_and_bounded() {
        for sched in [
            Schedule::Constant,
            Schedule::Warmup { steps: 7 },
            Schedule::StepDecay { every: 3, factor: 0.9 },
            Schedule::WarmupInvSqrt { steps: 5 },
        ] {
            for step in 1..200 {
                let m = sched.multiplier(step);
                assert!(m > 0.0 && m <= 1.0 + 1e-6, "{sched:?} at {step}: {m}");
            }
        }
    }
}
