//! # unimatch-train
//!
//! Optimizers (SGD, Adam with lazy sparse embedding updates), the training
//! loop for every loss pathway of the paper (bbcNCE family, SSM, BCE with
//! all four negative-sampling strategies), and the month-by-month
//! **incremental training** schedule of Sec. III-B3 with per-month
//! checkpoints (the input of the Fig. 3 experiment).

#![warn(missing_docs)]

pub mod checkpoint;
pub mod optim;
pub mod schedule;
pub mod trainer;

pub use checkpoint::MonthCheckpoint;
pub use optim::{global_grad_norm, Adam, AdamConfig, Sgd};
pub use schedule::Schedule;
pub use trainer::{SsmContext, TrainConfig, TrainLoss, TrainStats, Trainer};
