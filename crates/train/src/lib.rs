//! # unimatch-train
//!
//! Optimizers (SGD, Adam with lazy sparse embedding updates), the training
//! loop for every loss pathway of the paper (bbcNCE family, SSM, BCE with
//! all four negative-sampling strategies), and the month-by-month
//! **incremental training** schedule of Sec. III-B3 with per-month
//! checkpoints (the input of the Fig. 3 experiment).
//!
//! Robustness plumbing: configs are validated before the first step
//! ([`TrainError`]), an optional [`HealthMonitor`] flags non-finite
//! losses and gradient-norm spikes per step, and [`AdamState`] makes the
//! optimizer's moments portable across a process restart so durable
//! incremental runs resume bit-identically.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod error;
pub mod health;
pub mod optim;
pub mod schedule;
pub mod trainer;

pub use checkpoint::MonthCheckpoint;
pub use error::TrainError;
pub use health::{HealthConfig, HealthMonitor, HealthReport};
pub use optim::{global_grad_norm, Adam, AdamConfig, AdamState, Sgd};
pub use schedule::Schedule;
pub use trainer::{SsmContext, TrainConfig, TrainLoss, TrainStats, Trainer};
