//! In-memory model checkpoints, one per incremental-training month.
//!
//! The Fig. 3 experiment evaluates each checkpoint against the *fixed*
//! final-month test set, plotting metric vs. "months of data ahead of the
//! checkpoint".

use unimatch_tensor::ParamSet;

/// A snapshot of the model parameters after finishing a training month.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MonthCheckpoint {
    /// The (0-indexed) month whose data was just consumed.
    pub month: u32,
    /// Parameters after that month.
    pub params: ParamSet,
    /// Mean training loss over the month's epochs.
    pub mean_loss: f32,
}

impl MonthCheckpoint {
    /// How many months of training data this checkpoint is missing relative
    /// to a test month: `test_month - month - 1` (0 ⇒ trained on everything
    /// up to the test boundary).
    pub fn months_behind(&self, test_month: u32) -> u32 {
        test_month.saturating_sub(self.month + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn months_behind_arithmetic() {
        let cp = MonthCheckpoint { month: 8, params: ParamSet::new(), mean_loss: 0.0 };
        // test month 11, trained through month 8 => months 9, 10 missing
        assert_eq!(cp.months_behind(11), 2);
        let cp = MonthCheckpoint { month: 10, params: ParamSet::new(), mean_loss: 0.0 };
        assert_eq!(cp.months_behind(11), 0);
        assert_eq!(cp.months_behind(5), 0); // saturates
    }
}
