//! # unimatch-parallel
//!
//! The data-parallel execution layer shared by the UniMatch compute crates
//! (`unimatch-tensor` kernels, `unimatch-ann` batched search,
//! `unimatch-core` offline batch inference).
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism** — a parallel run must produce the same floating-point
//!    results as the sequential run. Every helper here therefore only
//!    splits work along boundaries where the sequential kernel performs no
//!    cross-boundary accumulation (rows, batch entries, queries), and
//!    reassembles results in input order. [`Parallelism::sequential`]
//!    (`threads: 1`) short-circuits to the exact single-threaded code path.
//! 2. **No regression on tiny workloads** — UniMatch's production model is
//!    small (d = 16), and spawning threads for a `[64, 16]` softmax costs
//!    more than the op itself. Work below a tunable threshold
//!    ([`Parallelism::min_work`]) always runs inline.
//! 3. **No dependencies** — built on [`std::thread::scope`] so the
//!    workspace stays free of external crates.
//!
//! The thread count is process-global, like a rayon pool: configure it once
//! via [`Parallelism::install_global`] (the framework and the CLIs do this
//! from their `--threads` flag), or the `UNIMATCH_THREADS` environment
//! variable, and every hot loop in the workspace picks it up. Nested
//! parallel regions run their inner loops inline, so thread counts never
//! multiply.
//!
//! ```
//! use unimatch_parallel::{par_map_indexed, Parallelism};
//!
//! // square 0..8 on however many threads are configured; order is stable
//! let squares = par_map_indexed(8, usize::MAX, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // threads: 1 == the plain sequential loop, bit for bit
//! Parallelism::sequential().install_global();
//! assert_eq!(par_map_indexed(3, usize::MAX, |i| i + 1), vec![1, 2, 3]);
//! # Parallelism::auto().install_global();
//! ```

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sentinel meaning "not configured": fall back to `UNIMATCH_THREADS`, then
/// to the machine's available parallelism.
const UNSET: usize = usize::MAX;

/// Default minimum number of scalar operations before a kernel goes
/// parallel. Below this, thread spawn/join overhead (~10–50 µs) dominates:
/// a d = 16 in-batch softmax over a 64-row batch is ~1 k flops and must
/// stay inline, while a 4096 × 512 × 16 scoring block (~34 M flops) should
/// fan out.
pub const DEFAULT_MIN_WORK: usize = 1 << 16;

static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(UNSET);
static GLOBAL_MIN_WORK: AtomicUsize = AtomicUsize::new(DEFAULT_MIN_WORK);

thread_local! {
    /// True while the current thread is executing inside a parallel region;
    /// used to run nested regions inline instead of spawning threads².
    static IN_PARALLEL_REGION: Cell<bool> = const { Cell::new(false) };
}

/// Process-wide parallelism configuration.
///
/// `threads == 0` means "auto": use `UNIMATCH_THREADS` if set, otherwise
/// [`std::thread::available_parallelism`]. `threads == 1` disables all
/// data parallelism and reproduces the sequential code paths exactly —
/// the setting tests and determinism-sensitive experiments should use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker thread count (0 = auto-detect).
    pub threads: usize,
    /// Minimum estimated scalar-op count for a kernel to go parallel;
    /// smaller workloads always run inline. See [`DEFAULT_MIN_WORK`].
    pub min_work: usize,
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::auto()
    }
}

impl Parallelism {
    /// Auto-detected thread count with the default work threshold.
    pub fn auto() -> Self {
        Parallelism { threads: 0, min_work: DEFAULT_MIN_WORK }
    }

    /// Single-threaded: every kernel takes its exact sequential path.
    pub fn sequential() -> Self {
        Parallelism { threads: 1, min_work: DEFAULT_MIN_WORK }
    }

    /// A fixed thread count with the default work threshold.
    pub fn threads(n: usize) -> Self {
        Parallelism { threads: n, min_work: DEFAULT_MIN_WORK }
    }

    /// Returns `self` with a different parallelism work threshold.
    pub fn with_min_work(mut self, min_work: usize) -> Self {
        self.min_work = min_work;
        self
    }

    /// Installs this configuration process-wide. All parallel helpers (and
    /// therefore every parallelized kernel in the workspace) observe it
    /// from the next call on.
    pub fn install_global(self) {
        GLOBAL_THREADS.store(if self.threads == 0 { UNSET } else { self.threads }, Ordering::Relaxed);
        GLOBAL_MIN_WORK.store(self.min_work.max(1), Ordering::Relaxed);
    }

    /// The thread count this configuration resolves to on this machine.
    pub fn resolved_threads(self) -> usize {
        if self.threads != 0 {
            return self.threads;
        }
        env_threads().unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
    }
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("UNIMATCH_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&n| n > 0)
    })
}

/// The globally configured worker thread count, resolved for this machine.
pub fn current_threads() -> usize {
    let configured = GLOBAL_THREADS.load(Ordering::Relaxed);
    let threads = if configured == UNSET { 0 } else { configured };
    Parallelism { threads, min_work: 1 }.resolved_threads()
}

/// The globally configured minimum work threshold.
pub fn current_min_work() -> usize {
    GLOBAL_MIN_WORK.load(Ordering::Relaxed)
}

/// Decides the effective worker count for a workload of `units`
/// independent units totalling ~`work` scalar ops: 1 (inline) when
/// parallelism is disabled, the region is nested, or the workload is under
/// the threshold; otherwise `min(threads, units)`.
fn effective_workers(units: usize, work: usize) -> usize {
    if units < 2 || work < current_min_work() || IN_PARALLEL_REGION.with(|f| f.get()) {
        return 1;
    }
    current_threads().min(units)
}

/// True when a workload of `units` independent units totalling ~`work`
/// scalar ops would be split across threads by the helpers below. Kernels
/// whose parallel formulation has extra fixed cost (e.g. per-unit partial
/// buffers that must be reduced) use this to keep their plain sequential
/// loop whenever the work would stay inline anyway.
pub fn is_parallel(units: usize, work: usize) -> bool {
    effective_workers(units, work) > 1
}

/// Runs `f(start_row, chunk)` over `out` interpreted as `rows` contiguous
/// rows of `out.len() / rows` elements, splitting the rows across worker
/// threads. `work` is the caller's estimate of total scalar operations —
/// below the configured threshold everything runs inline as a single
/// `f(0, out)` call.
///
/// Each row chunk is disjoint, so as long as `f` writes row `r` of `out`
/// purely from row `r`'s inputs (true for every kernel in this workspace),
/// the parallel result is bitwise identical to the sequential one.
///
/// # Panics
/// Panics if `rows` does not evenly divide `out.len()`. Panics in `f`
/// propagate to the caller.
pub fn par_chunk_rows<F>(out: &mut [f32], rows: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if rows == 0 {
        return;
    }
    assert_eq!(out.len() % rows, 0, "buffer length {} not a multiple of rows {rows}", out.len());
    let row_len = out.len() / rows;
    let workers = effective_workers(rows, work);
    if workers <= 1 {
        f(0, out);
        return;
    }
    let rows_per_worker = rows.div_ceil(workers);
    std::thread::scope(|s| {
        let mut rest = out;
        let mut start_row = 0;
        while !rest.is_empty() {
            let take = rows_per_worker.min(rest.len() / row_len);
            let (chunk, tail) = rest.split_at_mut(take * row_len);
            rest = tail;
            let f = &f;
            let row = start_row;
            s.spawn(move || {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                f(row, chunk);
            });
            start_row += take;
        }
    });
}

/// Maps `f` over `0..n` on the configured worker threads and collects the
/// results in index order. `work` is the caller's estimate of total scalar
/// operations — below the configured threshold this is a plain sequential
/// `map`. Use `usize::MAX` to mean "always worth parallelizing".
///
/// Work is distributed through a chunked dynamic queue (an atomic cursor
/// over fixed-size index chunks), so uneven per-item costs — e.g. ANN
/// queries whose beam sizes differ — still balance across threads. Result
/// order is always `0..n` regardless of which thread computed what.
///
/// # Panics
/// Panics in `f` propagate to the caller.
pub fn par_map_indexed<R, F>(n: usize, work: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = effective_workers(n, work);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // Small chunks (4 × workers) keep the queue balanced without paying an
    // atomic RMW per item.
    let chunk_size = n.div_ceil(workers * 4).max(1);
    let n_chunks = n.div_ceil(chunk_size);
    let slots: Vec<std::sync::Mutex<Option<Vec<R>>>> =
        (0..n_chunks).map(|_| std::sync::Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let slots = &slots;
            let cursor = &cursor;
            let f = &f;
            s.spawn(move || {
                IN_PARALLEL_REGION.with(|flag| flag.set(true));
                loop {
                    let c = cursor.fetch_add(1, Ordering::Relaxed);
                    if c >= n_chunks {
                        break;
                    }
                    let start = c * chunk_size;
                    let end = (start + chunk_size).min(n);
                    let results: Vec<R> = (start..end).map(f).collect();
                    *slots[c].lock().expect("result slot poisoned") = Some(results);
                }
            });
        }
    });
    let mut out = Vec::with_capacity(n);
    for slot in slots {
        out.extend(slot.into_inner().expect("result slot poisoned").expect("all chunks computed"));
    }
    out
}

/// Maps `f` over the items of a slice on the configured worker threads,
/// preserving order. Convenience wrapper over [`par_map_indexed`].
pub fn par_map_slice<T, R, F>(items: &[T], work: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), work, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_sequentially() {
        // auto config on a small n stays inline; order is trivially stable
        let out = par_map_indexed(10, 1, |i| i * 2);
        assert_eq!(out, (0..10).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunk_rows_zero_rows_is_noop() {
        let mut buf: [f32; 0] = [];
        par_chunk_rows(&mut buf, 0, usize::MAX, |_, _| panic!("must not run"));
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn par_chunk_rows_rejects_ragged() {
        let mut buf = [0.0f32; 7];
        par_chunk_rows(&mut buf, 2, 1, |_, _| {});
    }

    /// All assertions that mutate the global config live in one test so
    /// concurrently running tests never observe a transient setting.
    #[test]
    fn forced_parallel_matches_sequential() {
        Parallelism::threads(4).with_min_work(1).install_global();

        // par_map: order and values survive the dynamic queue
        let par = par_map_indexed(1000, usize::MAX, |i| (i as u64) * 37 + 1);
        Parallelism::sequential().install_global();
        let seq = par_map_indexed(1000, usize::MAX, |i| (i as u64) * 37 + 1);
        assert_eq!(par, seq);

        // par_chunk_rows: disjoint row writes reassemble exactly
        Parallelism::threads(3).with_min_work(1).install_global();
        let rows = 17;
        let d = 5;
        let mut par_buf = vec![0.0f32; rows * d];
        par_chunk_rows(&mut par_buf, rows, usize::MAX, |start, chunk| {
            for (r, row) in chunk.chunks_mut(d).enumerate() {
                for (j, x) in row.iter_mut().enumerate() {
                    *x = ((start + r) * d + j) as f32 * 0.5;
                }
            }
        });
        let seq_buf: Vec<f32> = (0..rows * d).map(|i| i as f32 * 0.5).collect();
        assert_eq!(par_buf, seq_buf);

        // nested regions stay inline rather than spawning threads²
        Parallelism::threads(4).with_min_work(1).install_global();
        let nested = par_map_indexed(8, usize::MAX, |i| {
            par_map_indexed(8, usize::MAX, move |j| i * 8 + j).iter().sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
        assert_eq!(nested, expect);

        Parallelism::auto().install_global();
    }

    #[test]
    fn resolved_threads_honors_fixed_count() {
        assert_eq!(Parallelism::threads(7).resolved_threads(), 7);
        assert_eq!(Parallelism::sequential().resolved_threads(), 1);
        assert!(Parallelism::auto().resolved_threads() >= 1);
    }
}
