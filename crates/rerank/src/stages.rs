//! The four shipped stages: debias, mmr, filter, cap, explore.

use crate::mix;
use crate::stage::{sort_canonical, CandidateList, RerankContext, RerankStage};
use std::collections::HashMap;

/// Popularity debias: `score' = score − w · log p̂(i)`.
///
/// Log-marginals are ≤ 0, so popular entities (log p̂ close to 0) are
/// penalized *less* in magnitude than rare ones are boosted — the
/// correction of Lou et al. (arXiv 2207.02468) applied at serving time
/// instead of training time. No-op when the context carries no
/// marginals table.
pub(crate) struct DebiasStage {
    pub weight: f32,
}

impl RerankStage for DebiasStage {
    fn name(&self) -> &'static str {
        "debias"
    }

    fn spec(&self) -> String {
        format!("debias@{}", self.weight)
    }

    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList) {
        let Some(log_p) = ctx.log_marginals else { return };
        for h in candidates.hits_mut().iter_mut() {
            let lp = log_p.get(h.id as usize).copied().unwrap_or(0.0);
            h.score -= self.weight * lp;
        }
        sort_canonical(candidates.hits_mut());
    }
}

/// MMR-style diversity re-ranking: greedily selects the candidate
/// maximizing `(1−λ)·relevance − λ·max_sim(selected)`, where similarity
/// is the inner product of the candidates' rows in the shared embedding
/// store. Selection reorders the list (original retrieval scores are
/// kept on the hits); after `ctx.k` selections the remainder keeps its
/// prior order. No-op when the context carries no store.
pub(crate) struct MmrStage {
    pub lambda: f32,
}

impl RerankStage for MmrStage {
    fn name(&self) -> &'static str {
        "mmr"
    }

    fn spec(&self) -> String {
        format!("mmr@{}", self.lambda)
    }

    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList) {
        let Some(store) = ctx.store else { return };
        let n = candidates.len();
        if n <= 1 || self.lambda == 0.0 {
            return;
        }
        let lambda = self.lambda;
        // (hit, max similarity to anything already selected)
        let mut rest: Vec<(unimatch_ann::Hit, f32)> =
            candidates.hits().iter().map(|&h| (h, f32::NEG_INFINITY)).collect();
        let mut out = Vec::with_capacity(n);
        let selections = ctx.k.min(n);
        while out.len() < selections {
            let mut best = 0usize;
            let mut best_val = f32::NEG_INFINITY;
            for (i, &(h, max_sim)) in rest.iter().enumerate() {
                // first pick is pure relevance (nothing selected yet)
                let val = if out.is_empty() {
                    h.score
                } else {
                    (1.0 - lambda) * h.score - lambda * max_sim
                };
                // strict > keeps the earliest (canonical-order) winner on ties
                if val > best_val {
                    best = i;
                    best_val = val;
                }
            }
            let (picked, _) = rest.remove(best);
            // decode once per pick (borrowed for f32 stores), then score
            // the remainder through the store's fused dequant-dot so the
            // stage works over every row format and backing
            let picked_row = store.decode_row(picked.id as usize);
            for (h, max_sim) in rest.iter_mut() {
                let sim = store.score_row(&picked_row, h.id as usize);
                if sim > *max_sim {
                    *max_sim = sim;
                }
            }
            out.push(picked);
        }
        // beyond k the order no longer matters for the response; keep the
        // remainder's relative order so the full list stays deterministic
        out.extend(rest.into_iter().map(|(h, _)| h));
        *candidates.hits_mut() = out;
    }
}

/// Business-rule filter: drops candidates outside the allow set or
/// inside the deny set, preserving order. No-op when the context
/// carries no rules.
pub(crate) struct FilterStage;

impl RerankStage for FilterStage {
    fn name(&self) -> &'static str {
        "filter"
    }

    fn spec(&self) -> String {
        "filter".to_string()
    }

    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList) {
        let Some(rules) = ctx.rules else { return };
        let ids = ctx.external_ids;
        candidates.hits_mut().retain(|h| {
            let ext = match ids {
                Some(table) => table.get(h.id as usize).copied().unwrap_or(h.id),
                None => h.id,
            };
            rules.admits(ext)
        });
    }
}

/// Per-category cap: keeps at most `max` candidates of each category
/// (first come, first kept — order preserved). Uncategorized candidates
/// are uncapped. No-op when the context carries no rules.
pub(crate) struct CapStage {
    pub max: usize,
}

impl RerankStage for CapStage {
    fn name(&self) -> &'static str {
        "cap"
    }

    fn spec(&self) -> String {
        format!("cap:category={}", self.max)
    }

    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList) {
        let Some(rules) = ctx.rules else { return };
        let ids = ctx.external_ids;
        let mut counts: HashMap<u32, usize> = HashMap::new();
        candidates.hits_mut().retain(|h| {
            let ext = match ids {
                Some(table) => table.get(h.id as usize).copied().unwrap_or(h.id),
                None => h.id,
            };
            match rules.category_of(ext) {
                None => true,
                Some(cat) => {
                    let seen = counts.entry(cat).or_insert(0);
                    *seen += 1;
                    *seen <= self.max
                }
            }
        });
    }
}

/// Seeded ε-greedy exploration: each of the top `ctx.k` positions is,
/// with probability ε, swapped with a deterministically chosen candidate
/// from the over-fetched tail. The random stream is splitmix64 over
/// `(seed, query_tag, position)` — same seed and query ⇒ byte-identical
/// output; different queries explore independently.
pub(crate) struct ExploreStage {
    pub epsilon: f32,
}

impl RerankStage for ExploreStage {
    fn name(&self) -> &'static str {
        "explore"
    }

    fn spec(&self) -> String {
        format!("explore@{}", self.epsilon)
    }

    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList) {
        let n = candidates.len();
        let k = ctx.k.min(n);
        if n <= k || self.epsilon <= 0.0 {
            return; // no tail to explore into
        }
        let hits = candidates.hits_mut();
        let mut state = ctx.seed ^ ctx.query_tag.rotate_left(17);
        for p in 0..k {
            state = mix(state.wrapping_add(p as u64 + 1));
            // 53 high-quality bits → uniform in [0, 1)
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            if u < self.epsilon as f64 {
                state = mix(state ^ 0xd1b5_4a32_d192_ed03);
                let tail = k + (state % (n - k) as u64) as usize;
                hits.swap(p, tail);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_ann::{EmbeddingStore, Hit};

    fn hits(scores: &[(u32, f32)]) -> CandidateList {
        CandidateList::from_hits(scores.iter().map(|&(id, score)| Hit { id, score }).collect())
    }

    fn ctx<'a>() -> RerankContext<'a> {
        RerankContext {
            store: None,
            log_marginals: None,
            external_ids: None,
            rules: None,
            seed: 7,
            query_tag: 13,
            k: 3,
        }
    }

    #[test]
    fn debias_penalizes_popular_items() {
        // item 0 very popular (log p = -0.1), item 1 rare (log p = -5.0)
        let log_p = [-0.1f32, -5.0];
        let mut c = hits(&[(0, 1.0), (1, 0.9)]);
        let ctx = RerankContext { log_marginals: Some(&log_p), ..ctx() };
        DebiasStage { weight: 1.0 }.apply(&ctx, &mut c);
        // 1.0 + 0.1 = 1.1 vs 0.9 + 5.0 = 5.9 — the rare item wins
        assert_eq!(c.hits()[0].id, 1);
        assert!((c.hits()[0].score - 5.9).abs() < 1e-6);
    }

    #[test]
    fn debias_without_marginals_is_a_noop() {
        let mut c = hits(&[(0, 1.0), (1, 0.9)]);
        let before = c.clone();
        DebiasStage { weight: 1.0 }.apply(&ctx(), &mut c);
        assert_eq!(c, before);
    }

    #[test]
    fn mmr_demotes_near_duplicates() {
        // rows 0 and 1 identical direction; row 2 orthogonal
        let store = EmbeddingStore::from_rows(&[1.0, 0.0, 1.0, 0.0, 0.0, 1.0], 2);
        let mut c = hits(&[(0, 1.0), (1, 0.99), (2, 0.5)]);
        let ctx = RerankContext { store: Some(&store), k: 2, ..ctx() };
        MmrStage { lambda: 0.5 }.apply(&ctx, &mut c);
        // after picking 0, candidate 1 has sim 1.0 (value 0.5*0.99-0.5),
        // candidate 2 has sim 0.0 (value 0.25) — diversity wins
        assert_eq!(c.hits().iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 2, 1]);
        // original retrieval scores are preserved
        assert_eq!(c.hits()[1].score, 0.5);
    }

    #[test]
    fn mmr_lambda_zero_keeps_relevance_order() {
        let store = EmbeddingStore::from_rows(&[1.0, 0.0, 1.0, 0.0, 0.0, 1.0], 2);
        let mut c = hits(&[(0, 1.0), (1, 0.99), (2, 0.5)]);
        let before = c.clone();
        let ctx = RerankContext { store: Some(&store), k: 2, ..ctx() };
        MmrStage { lambda: 0.0 }.apply(&ctx, &mut c);
        assert_eq!(c, before);
    }

    #[test]
    fn explore_is_seed_deterministic_and_swaps_from_the_tail() {
        let base: Vec<(u32, f32)> = (0..10).map(|i| (i, 1.0 - i as f32 * 0.05)).collect();
        let mut a = hits(&base);
        let mut b = hits(&base);
        let c = RerankContext { k: 4, ..ctx() };
        let stage = ExploreStage { epsilon: 0.9 };
        stage.apply(&c, &mut a);
        stage.apply(&c, &mut b);
        assert_eq!(a, b, "same seed must explore identically");
        // high epsilon over 4 slots with this seed must move something
        assert_ne!(a, hits(&base));
        // a different seed explores differently
        let mut d = hits(&base);
        stage.apply(&RerankContext { seed: 8, k: 4, ..ctx() }, &mut d);
        assert_ne!(a, d);
        // the multiset of ids is unchanged — explore only swaps
        let mut ids: Vec<u32> = a.hits().iter().map(|h| h.id).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn explore_without_tail_is_a_noop() {
        let base: Vec<(u32, f32)> = (0..3).map(|i| (i, 1.0)).collect();
        let mut c = hits(&base);
        let before = c.clone();
        ExploreStage { epsilon: 1.0 }.apply(&ctx(), &mut c); // k = 3 = len
        assert_eq!(c, before);
    }
}
