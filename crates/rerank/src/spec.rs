//! The chain spec grammar and its typed errors.
//!
//! ```text
//! chain  := "" | stage ("," stage)*
//! stage  := name ["@" weight] (":" key "=" value)*
//! ```
//!
//! Examples: `debias@0.5,mmr@0.3,cap:category=3,explore@0.1`, `filter`,
//! `""` (the identity chain). Whitespace around separators is ignored.
//! Each stage may appear at most once; option keys within a stage are
//! unique. Parsing never panics — every malformed input maps to one
//! [`SpecError`] variant so CLI and `/reload` callers can report the
//! exact defect.

use std::fmt;

/// A parsed-but-untyped stage clause: the grammar layer's output, before
/// the chain builder checks it against the stage registry.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct StageSpec {
    pub name: String,
    pub weight: Option<f32>,
    pub options: Vec<(String, String)>,
}

/// A malformed chain spec, with enough structure for a caller to say
/// exactly what was wrong.
#[derive(Clone, Debug, PartialEq)]
pub enum SpecError {
    /// A stage clause was empty (`",,"` or a trailing comma).
    EmptyStage,
    /// The stage name is not in the registry.
    UnknownStage(String),
    /// The `@weight` suffix did not parse as a finite number.
    BadWeight {
        /// Stage the weight was attached to.
        stage: String,
        /// The raw weight text.
        raw: String,
    },
    /// The weight parsed but falls outside the stage's accepted range.
    WeightOutOfRange {
        /// Stage the weight was attached to.
        stage: String,
        /// The parsed weight.
        weight: f32,
        /// Inclusive minimum.
        min: f32,
        /// Inclusive maximum.
        max: f32,
    },
    /// The stage takes no `@weight` at all.
    WeightNotAccepted(String),
    /// An option clause was not `key=value`.
    BadOption {
        /// Stage the option was attached to.
        stage: String,
        /// The raw option text.
        raw: String,
    },
    /// The option key is not recognized by the stage.
    UnknownOption {
        /// Stage the option was attached to.
        stage: String,
        /// The unrecognized key.
        key: String,
    },
    /// The option value did not parse or is out of range.
    BadOptionValue {
        /// Stage the option was attached to.
        stage: String,
        /// Option key.
        key: String,
        /// The raw value text.
        raw: String,
    },
    /// A required option was missing.
    MissingOption {
        /// Stage the option belongs to.
        stage: String,
        /// The missing key.
        key: String,
    },
    /// The same stage appeared twice in one chain.
    DuplicateStage(String),
    /// The same option key appeared twice in one stage clause.
    DuplicateOption {
        /// Stage the options were attached to.
        stage: String,
        /// The repeated key.
        key: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::EmptyStage => write!(f, "empty stage clause in rerank spec"),
            SpecError::UnknownStage(name) => write!(
                f,
                "unknown rerank stage `{name}` (known: debias, mmr, filter, cap, explore)"
            ),
            SpecError::BadWeight { stage, raw } => {
                write!(f, "stage `{stage}`: weight `{raw}` is not a finite number")
            }
            SpecError::WeightOutOfRange { stage, weight, min, max } => {
                write!(f, "stage `{stage}`: weight {weight} outside [{min}, {max}]")
            }
            SpecError::WeightNotAccepted(stage) => {
                write!(f, "stage `{stage}` does not take an @weight")
            }
            SpecError::BadOption { stage, raw } => {
                write!(f, "stage `{stage}`: option `{raw}` is not key=value")
            }
            SpecError::UnknownOption { stage, key } => {
                write!(f, "stage `{stage}`: unknown option `{key}`")
            }
            SpecError::BadOptionValue { stage, key, raw } => {
                write!(f, "stage `{stage}`: option {key}=`{raw}` is not a valid value")
            }
            SpecError::MissingOption { stage, key } => {
                write!(f, "stage `{stage}`: required option `{key}` missing")
            }
            SpecError::DuplicateStage(name) => {
                write!(f, "stage `{name}` appears more than once in the chain")
            }
            SpecError::DuplicateOption { stage, key } => {
                write!(f, "stage `{stage}`: option `{key}` given more than once")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// Parses the grammar into raw stage clauses. Registry-level validation
/// (known names, weight ranges, option typing) happens in the chain
/// builder; this layer only enforces the shape and the two uniqueness
/// rules.
pub(crate) fn parse_spec(spec: &str) -> Result<Vec<StageSpec>, SpecError> {
    let spec = spec.trim();
    if spec.is_empty() {
        return Ok(Vec::new());
    }
    let mut stages: Vec<StageSpec> = Vec::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            return Err(SpecError::EmptyStage);
        }
        let mut parts = clause.split(':');
        let head = parts.next().expect("split yields at least one part").trim();
        let (name, weight) = match head.split_once('@') {
            Some((n, w)) => {
                let n = n.trim();
                let w = w.trim();
                let parsed: f32 = w.parse().map_err(|_| SpecError::BadWeight {
                    stage: n.to_string(),
                    raw: w.to_string(),
                })?;
                if !parsed.is_finite() {
                    return Err(SpecError::BadWeight {
                        stage: n.to_string(),
                        raw: w.to_string(),
                    });
                }
                (n, Some(parsed))
            }
            None => (head, None),
        };
        if name.is_empty() {
            return Err(SpecError::EmptyStage);
        }
        if stages.iter().any(|s| s.name == name) {
            return Err(SpecError::DuplicateStage(name.to_string()));
        }
        let mut options: Vec<(String, String)> = Vec::new();
        for opt in parts {
            let opt = opt.trim();
            let (key, value) = opt.split_once('=').ok_or_else(|| SpecError::BadOption {
                stage: name.to_string(),
                raw: opt.to_string(),
            })?;
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return Err(SpecError::BadOption {
                    stage: name.to_string(),
                    raw: opt.to_string(),
                });
            }
            if options.iter().any(|(k, _)| k == key) {
                return Err(SpecError::DuplicateOption {
                    stage: name.to_string(),
                    key: key.to_string(),
                });
            }
            options.push((key.to_string(), value.to_string()));
        }
        stages.push(StageSpec { name: name.to_string(), weight, options });
    }
    Ok(stages)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_example_parses() {
        let stages = parse_spec("debias@0.5, mmr@0.3, cap:category=3, explore@0.1").unwrap();
        assert_eq!(stages.len(), 4);
        assert_eq!(stages[0].name, "debias");
        assert_eq!(stages[0].weight, Some(0.5));
        assert_eq!(stages[2].options, vec![("category".to_string(), "3".to_string())]);
        assert_eq!(stages[3].weight, Some(0.1));
    }

    #[test]
    fn empty_spec_is_the_identity() {
        assert!(parse_spec("").unwrap().is_empty());
        assert!(parse_spec("   ").unwrap().is_empty());
    }

    #[test]
    fn empty_clauses_rejected() {
        assert_eq!(parse_spec("debias,,mmr"), Err(SpecError::EmptyStage));
        assert_eq!(parse_spec("debias,"), Err(SpecError::EmptyStage));
        assert_eq!(parse_spec("@0.5"), Err(SpecError::EmptyStage));
    }

    #[test]
    fn bad_weights_rejected_with_the_raw_text() {
        match parse_spec("debias@heavy") {
            Err(SpecError::BadWeight { stage, raw }) => {
                assert_eq!(stage, "debias");
                assert_eq!(raw, "heavy");
            }
            other => panic!("expected BadWeight, got {other:?}"),
        }
        assert!(matches!(parse_spec("debias@inf"), Err(SpecError::BadWeight { .. })));
        assert!(matches!(parse_spec("debias@NaN"), Err(SpecError::BadWeight { .. })));
    }

    #[test]
    fn duplicate_stages_and_options_rejected() {
        assert_eq!(
            parse_spec("debias,debias@2"),
            Err(SpecError::DuplicateStage("debias".to_string()))
        );
        assert_eq!(
            parse_spec("cap:category=3:category=5"),
            Err(SpecError::DuplicateOption {
                stage: "cap".to_string(),
                key: "category".to_string()
            })
        );
    }

    #[test]
    fn malformed_options_rejected() {
        assert!(matches!(parse_spec("cap:category"), Err(SpecError::BadOption { .. })));
        assert!(matches!(parse_spec("cap:=3"), Err(SpecError::BadOption { .. })));
    }
}
