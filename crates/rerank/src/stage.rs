//! The stage abstraction: a scored candidate list, the shared inputs a
//! stage may read, and the [`RerankStage`] trait itself.

use crate::rules::BusinessRules;
use unimatch_ann::{EmbeddingStore, Hit};

/// A scored, ordered candidate list flowing through a chain. Wraps the
/// retrieval engine's `Vec<Hit>`; order is significant (position 0 is
/// the best candidate) and stages may re-score, re-order, or drop
/// entries.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CandidateList {
    hits: Vec<Hit>,
}

impl CandidateList {
    /// Wraps a retrieval result.
    pub fn from_hits(hits: Vec<Hit>) -> CandidateList {
        CandidateList { hits }
    }

    /// Unwraps back into the retrieval engine's representation.
    pub fn into_hits(self) -> Vec<Hit> {
        self.hits
    }

    /// The candidates, best first.
    pub fn hits(&self) -> &[Hit] {
        &self.hits
    }

    /// Mutable access for stages.
    pub fn hits_mut(&mut self) -> &mut Vec<Hit> {
        &mut self.hits
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// Whether the list is empty.
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// Keeps only the first `n` candidates.
    pub fn truncate(&mut self, n: usize) {
        self.hits.truncate(n);
    }
}

/// Everything a stage may read, borrowed from the serving layer for the
/// duration of one `apply`. Each input is optional: a stage whose input
/// is absent is a no-op (the chain degrades gracefully rather than
/// failing a request).
pub struct RerankContext<'a> {
    /// The embedding arena the candidate rows point into (`Hit::id` is a
    /// row index). Read by the MMR stage for pairwise similarity.
    pub store: Option<&'a EmbeddingStore>,
    /// Row-aligned log-marginals `log p̂(·)` (indexed by `Hit::id`).
    /// Read by the debias stage.
    pub log_marginals: Option<&'a [f32]>,
    /// Row → external-id table for candidates whose `Hit::id` is not the
    /// public id (the user tower's pool rows). `None` means rows *are*
    /// the external ids (the item tower). Read by the rule stages.
    pub external_ids: Option<&'a [u32]>,
    /// Business rules (allow/deny sets, category assignments).
    pub rules: Option<&'a BusinessRules>,
    /// Deployment seed — one component of the exploration stream.
    pub seed: u64,
    /// Per-query tag ([`crate::query_tag`]) — the other component, so
    /// distinct queries explore independently but a repeated query
    /// explores identically.
    pub query_tag: u64,
    /// The k the caller asked for. The chain over-fetched beyond this
    /// ([`crate::RerankChain::fetch_k`]); stages may use `k` to bound
    /// work, and the chain truncates to `k` after the last stage.
    pub k: usize,
}

impl RerankContext<'_> {
    /// The external id of a hit (identity when no translation table is
    /// attached).
    pub fn external_id(&self, hit: &Hit) -> u32 {
        match self.external_ids {
            Some(ids) => ids.get(hit.id as usize).copied().unwrap_or(hit.id),
            None => hit.id,
        }
    }
}

/// One transformation over a scored candidate list.
///
/// Implementations must be deterministic functions of
/// `(ctx, candidates)` — no clocks, no global RNG — so that a fixed
/// seed pins byte-identical serving responses.
pub trait RerankStage: Send + Sync {
    /// Stable stage name (the spec keyword; also the `stage=` label on
    /// the per-stage latency span).
    fn name(&self) -> &'static str;

    /// The canonical spec fragment that re-creates this stage
    /// (e.g. `debias@0.5`, `cap:category=3`).
    fn spec(&self) -> String;

    /// Transforms the candidate list in place.
    fn apply(&self, ctx: &RerankContext, candidates: &mut CandidateList);
}

/// The canonical candidate order used across the retrieval engine:
/// score descending, lowest id first on ties. Stages that re-score must
/// re-sort with this exact comparator — the engine's shared
/// [`unimatch_ann::order`] — so chain output stays aligned with the
/// differential suites.
pub(crate) fn sort_canonical(hits: &mut [Hit]) {
    unimatch_ann::order::sort_canonical(hits);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_order_breaks_ties_by_lowest_id() {
        let mut hits = vec![
            Hit { id: 5, score: 1.0 },
            Hit { id: 2, score: 1.0 },
            Hit { id: 9, score: 2.0 },
        ];
        sort_canonical(&mut hits);
        assert_eq!(hits.iter().map(|h| h.id).collect::<Vec<_>>(), vec![9, 2, 5]);
    }

    #[test]
    fn external_id_translates_through_the_table() {
        let ids = [100u32, 200, 300];
        let ctx = RerankContext {
            store: None,
            log_marginals: None,
            external_ids: Some(&ids),
            rules: None,
            seed: 0,
            query_tag: 0,
            k: 10,
        };
        assert_eq!(ctx.external_id(&Hit { id: 1, score: 0.0 }), 200);
        // identity when no table is attached
        let ctx = RerankContext { external_ids: None, ..ctx };
        assert_eq!(ctx.external_id(&Hit { id: 1, score: 0.0 }), 1);
    }
}
