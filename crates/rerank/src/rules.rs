//! Business-rule sidecar: allow/deny id sets and category assignments,
//! loaded from a small JSON file next to the checkpoint.
//!
//! ```json
//! {
//!   "allow": [1, 2, 3],
//!   "deny": [40, 41],
//!   "categories": [[0, 7], [1, 7], [2, 3]]
//! }
//! ```
//!
//! All three fields are optional. `allow` non-empty means *only* those
//! ids may be served; `deny` always wins over `allow`; `categories` maps
//! item id → category id for the `cap` stage.

use std::collections::{HashMap, HashSet};
use std::io;
use std::path::Path;
use unimatch_data::json::Json;

/// Parsed business rules, shared read-only across the serving stack.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BusinessRules {
    allow: Option<HashSet<u32>>,
    deny: HashSet<u32>,
    categories: HashMap<u32, u32>,
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn id_array(doc: &Json, key: &str) -> io::Result<Option<Vec<u32>>> {
    let Some(v) = doc.get(key) else { return Ok(None) };
    let arr = v.as_array().ok_or_else(|| bad(format!("rules field {key} is not an array")))?;
    arr.iter()
        .map(|x| {
            x.as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| bad(format!("rules field {key} holds a non-u32 id")))
        })
        .collect::<io::Result<Vec<u32>>>()
        .map(Some)
}

impl BusinessRules {
    /// Parses a rules document. Unknown top-level keys are rejected so a
    /// typo (`"alow"`) cannot silently disable a filter.
    pub fn parse(doc: &Json) -> io::Result<BusinessRules> {
        if let Json::Obj(entries) = doc {
            for (key, _) in entries {
                if key != "allow" && key != "deny" && key != "categories" {
                    return Err(bad(format!("unknown rules field `{key}`")));
                }
            }
        } else {
            return Err(bad("rules document is not a JSON object"));
        }
        let allow = id_array(doc, "allow")?.map(|ids| ids.into_iter().collect());
        let deny: HashSet<u32> =
            id_array(doc, "deny")?.map(|ids| ids.into_iter().collect()).unwrap_or_default();
        let mut categories = HashMap::new();
        if let Some(v) = doc.get("categories") {
            let arr =
                v.as_array().ok_or_else(|| bad("rules field categories is not an array"))?;
            for pair in arr {
                let pair =
                    pair.as_array().ok_or_else(|| bad("categories entry is not [id, cat]"))?;
                if pair.len() != 2 {
                    return Err(bad("categories entry is not a 2-element [id, cat]"));
                }
                let id = pair[0]
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("categories entry has a non-u32 id"))?;
                let cat = pair[1]
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| bad("categories entry has a non-u32 category"))?;
                if categories.insert(id, cat).is_some() {
                    return Err(bad(format!("categories assigns id {id} twice")));
                }
            }
        }
        Ok(BusinessRules { allow, deny, categories })
    }

    /// Loads and parses a rules sidecar file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<BusinessRules> {
        let bytes = std::fs::read(path)?;
        let doc = Json::parse(&bytes).map_err(|e| bad(e.to_string()))?;
        BusinessRules::parse(&doc)
    }

    /// Whether an id may be served: outside the deny set, and inside the
    /// allow set when one is configured.
    pub fn admits(&self, id: u32) -> bool {
        if self.deny.contains(&id) {
            return false;
        }
        match &self.allow {
            Some(allow) => allow.contains(&id),
            None => true,
        }
    }

    /// The category assigned to an id, if any.
    pub fn category_of(&self, id: u32) -> Option<u32> {
        self.categories.get(&id).copied()
    }

    /// The largest item id any rule references — the vocabulary bound a
    /// serving checkpoint must cover for these rules to be meaningful.
    /// `None` when no rule names an id.
    pub fn max_item_id(&self) -> Option<u32> {
        let allow = self.allow.iter().flatten().copied();
        let deny = self.deny.iter().copied();
        let cats = self.categories.keys().copied();
        allow.chain(deny).chain(cats).max()
    }

    /// Whether no rule is configured at all.
    pub fn is_empty(&self) -> bool {
        self.allow.is_none() && self.deny.is_empty() && self.categories.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{CandidateList, RerankContext, RerankStage};
    use crate::stages::{CapStage, FilterStage};
    use unimatch_ann::Hit;

    fn rules(json: &str) -> BusinessRules {
        BusinessRules::parse(&Json::parse(json.as_bytes()).expect("valid json")).expect("rules")
    }

    #[test]
    fn allow_deny_semantics() {
        let r = rules(r#"{"allow": [1, 2, 3], "deny": [2]}"#);
        assert!(r.admits(1));
        assert!(!r.admits(2), "deny wins over allow");
        assert!(!r.admits(4), "outside the allow set");
        let open = rules(r#"{"deny": [7]}"#);
        assert!(open.admits(1));
        assert!(!open.admits(7));
        assert!(rules("{}").admits(123));
    }

    #[test]
    fn max_item_id_spans_all_three_sets() {
        let r = rules(r#"{"allow": [5], "deny": [90], "categories": [[12, 1]]}"#);
        assert_eq!(r.max_item_id(), Some(90));
        assert_eq!(rules("{}").max_item_id(), None);
    }

    #[test]
    fn malformed_documents_rejected() {
        let parse = |s: &str| BusinessRules::parse(&Json::parse(s.as_bytes()).unwrap());
        assert!(parse(r#"{"alow": [1]}"#).is_err(), "typo'd key must not pass silently");
        assert!(parse(r#"{"allow": "yes"}"#).is_err());
        assert!(parse(r#"{"allow": [-1]}"#).is_err());
        assert!(parse(r#"{"categories": [[1, 2, 3]]}"#).is_err());
        assert!(parse(r#"{"categories": [[1, 2], [1, 3]]}"#).is_err(), "double assignment");
        assert!(parse("[1,2]").is_err());
    }

    fn hits(ids: &[u32]) -> CandidateList {
        CandidateList::from_hits(
            ids.iter()
                .enumerate()
                .map(|(i, &id)| Hit { id, score: 1.0 - i as f32 * 0.01 })
                .collect(),
        )
    }

    fn rule_ctx(rules: &BusinessRules) -> RerankContext<'_> {
        RerankContext {
            store: None,
            log_marginals: None,
            external_ids: None,
            rules: Some(rules),
            seed: 0,
            query_tag: 0,
            k: 10,
        }
    }

    #[test]
    fn filter_stage_applies_allow_and_deny_in_order() {
        let r = rules(r#"{"allow": [0, 1, 2, 3], "deny": [1]}"#);
        let mut c = hits(&[4, 1, 0, 3]);
        FilterStage.apply(&rule_ctx(&r), &mut c);
        assert_eq!(c.hits().iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn filter_stage_translates_external_ids() {
        let r = rules(r#"{"deny": [200]}"#);
        let table = [100u32, 200, 300];
        let mut c = hits(&[0, 1, 2]); // row ids into `table`
        let ctx = RerankContext { external_ids: Some(&table), ..rule_ctx(&r) };
        FilterStage.apply(&ctx, &mut c);
        assert_eq!(c.hits().iter().map(|h| h.id).collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn cap_stage_keeps_first_n_per_category() {
        // ids 0..6: category = id % 2; id 6 uncategorized
        let r = rules(r#"{"categories": [[0,0],[1,1],[2,0],[3,1],[4,0],[5,1]]}"#);
        let mut c = hits(&[0, 1, 2, 3, 4, 5, 6]);
        CapStage { max: 2 }.apply(&rule_ctx(&r), &mut c);
        assert_eq!(
            c.hits().iter().map(|h| h.id).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 6],
            "third of each category dropped, uncategorized kept"
        );
    }

    #[test]
    fn rule_stages_without_rules_are_noops() {
        let mut c = hits(&[0, 1, 2]);
        let before = c.clone();
        let empty = BusinessRules::default();
        let ctx = RerankContext { rules: None, ..rule_ctx(&empty) };
        FilterStage.apply(&ctx, &mut c);
        CapStage { max: 1 }.apply(&ctx, &mut c);
        assert_eq!(c, before);
    }
}
