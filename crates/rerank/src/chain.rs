//! The chain: an ordered stage sequence built from a string spec.

use crate::spec::{parse_spec, SpecError, StageSpec};
use crate::stage::{CandidateList, RerankContext, RerankStage};
use crate::stages::{CapStage, DebiasStage, ExploreStage, FilterStage, MmrStage};
use std::fmt;
use unimatch_ann::Hit;
use unimatch_obs::span_us;

/// How far beyond the requested `k` a chain over-fetches so downstream
/// stages (filters, caps, exploration) have material to work with.
const OVERFETCH_FACTOR: usize = 4;
const OVERFETCH_MIN_EXTRA: usize = 16;

/// The brownout over-fetch: still more than `k` (filters and caps need
/// *some* slack to return a full page), but half the normal headroom.
const REDUCED_OVERFETCH_FACTOR: usize = 2;
const REDUCED_OVERFETCH_MIN_EXTRA: usize = 8;

/// Which *optional* stages a degraded `apply` should skip — the serving
/// layer's brownout hook. Only the quality-enhancing stages (exploration,
/// MMR diversity) are skippable; correctness-bearing stages (business
/// rule filters, category caps, debias weighting) always run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageSkip {
    /// Skip `explore` stages (seeded ε-exploration).
    pub explore: bool,
    /// Skip `mmr` stages (diversity re-scoring).
    pub mmr: bool,
}

impl StageSkip {
    /// Skip nothing — [`RerankChain::apply_degraded`] with this set is
    /// exactly [`RerankChain::apply`].
    pub const NONE: StageSkip = StageSkip { explore: false, mmr: false };

    /// Whether the stage named `name` is skipped under this set.
    pub fn skips(&self, name: &str) -> bool {
        (self.explore && name == "explore") || (self.mmr && name == "mmr")
    }

    /// True when nothing is skipped.
    pub fn is_none(&self) -> bool {
        !self.explore && !self.mmr
    }
}

/// An ordered sequence of [`RerankStage`]s applied after retrieval.
///
/// Built from a spec string (grammar: `stage[@weight][:key=value]…`,
/// comma-separated — see [`RerankChain::parse`]); the
/// empty spec is the **identity chain**, which is guaranteed bitwise
/// invisible: [`RerankChain::fetch_k`] returns `k` and
/// [`RerankChain::apply`] returns its input untouched.
pub struct RerankChain {
    stages: Vec<Box<dyn RerankStage>>,
    spec: String,
}

impl fmt::Debug for RerankChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RerankChain").field("spec", &self.spec).finish()
    }
}

impl Default for RerankChain {
    fn default() -> RerankChain {
        RerankChain::identity()
    }
}

/// The finite label set for the per-stage latency spans — `span_us`
/// interns labels as `&'static str`, so each shipped stage gets its own
/// literal.
fn stage_label(name: &'static str) -> &'static str {
    match name {
        "debias" => "stage=\"debias\"",
        "mmr" => "stage=\"mmr\"",
        "filter" => "stage=\"filter\"",
        "cap" => "stage=\"cap\"",
        "explore" => "stage=\"explore\"",
        _ => "stage=\"other\"",
    }
}

/// Weight handling declared per stage: range-checked default, or
/// rejected outright.
fn weight_in(
    s: &StageSpec,
    default: f32,
    min: f32,
    max: f32,
) -> Result<f32, SpecError> {
    match s.weight {
        None => Ok(default),
        Some(w) if w >= min && w <= max => Ok(w),
        Some(w) => Err(SpecError::WeightOutOfRange {
            stage: s.name.clone(),
            weight: w,
            min,
            max,
        }),
    }
}

fn no_weight(s: &StageSpec) -> Result<(), SpecError> {
    match s.weight {
        None => Ok(()),
        Some(_) => Err(SpecError::WeightNotAccepted(s.name.clone())),
    }
}

fn no_options(s: &StageSpec) -> Result<(), SpecError> {
    match s.options.first() {
        None => Ok(()),
        Some((key, _)) => {
            Err(SpecError::UnknownOption { stage: s.name.clone(), key: key.clone() })
        }
    }
}

/// The stage registry: maps a parsed clause to a typed stage, enforcing
/// each stage's weight range and option schema.
fn build_stage(s: &StageSpec) -> Result<Box<dyn RerankStage>, SpecError> {
    match s.name.as_str() {
        "debias" => {
            no_options(s)?;
            Ok(Box::new(DebiasStage { weight: weight_in(s, 1.0, 0.0, 100.0)? }))
        }
        "mmr" => {
            no_options(s)?;
            Ok(Box::new(MmrStage { lambda: weight_in(s, 0.5, 0.0, 1.0)? }))
        }
        "filter" => {
            no_weight(s)?;
            no_options(s)?;
            Ok(Box::new(FilterStage))
        }
        "cap" => {
            no_weight(s)?;
            let mut max = None;
            for (key, value) in &s.options {
                if key != "category" {
                    return Err(SpecError::UnknownOption {
                        stage: s.name.clone(),
                        key: key.clone(),
                    });
                }
                let parsed: usize = value.parse().map_err(|_| SpecError::BadOptionValue {
                    stage: s.name.clone(),
                    key: key.clone(),
                    raw: value.clone(),
                })?;
                if parsed == 0 {
                    return Err(SpecError::BadOptionValue {
                        stage: s.name.clone(),
                        key: key.clone(),
                        raw: value.clone(),
                    });
                }
                max = Some(parsed);
            }
            let max = max.ok_or_else(|| SpecError::MissingOption {
                stage: s.name.clone(),
                key: "category".to_string(),
            })?;
            Ok(Box::new(CapStage { max }))
        }
        "explore" => {
            no_options(s)?;
            Ok(Box::new(ExploreStage { epsilon: weight_in(s, 0.1, 0.0, 1.0)? }))
        }
        other => Err(SpecError::UnknownStage(other.to_string())),
    }
}

impl RerankChain {
    /// The empty chain — guaranteed bitwise invisible at every call
    /// site.
    pub fn identity() -> RerankChain {
        RerankChain { stages: Vec::new(), spec: String::new() }
    }

    /// Parses a chain spec (e.g.
    /// `debias@0.5,mmr@0.3,cap:category=3,explore@0.1`). The empty /
    /// all-whitespace spec yields the identity chain. Every malformed
    /// input maps to a typed [`SpecError`].
    pub fn parse(spec: &str) -> Result<RerankChain, SpecError> {
        let stages = parse_spec(spec)?
            .iter()
            .map(build_stage)
            .collect::<Result<Vec<_>, SpecError>>()?;
        let spec = stages.iter().map(|s| s.spec()).collect::<Vec<_>>().join(",");
        Ok(RerankChain { stages, spec })
    }

    /// Whether this is the identity chain (no stages).
    pub fn is_identity(&self) -> bool {
        self.stages.is_empty()
    }

    /// The canonical spec string: defaults resolved, whitespace
    /// normalized. Parsing the canonical spec reproduces this chain
    /// exactly (`parse(c.spec()).spec() == c.spec()`).
    pub fn spec(&self) -> &str {
        &self.spec
    }

    /// Stage names in application order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    /// How many candidates retrieval should fetch so the chain can
    /// still return `k` after filtering and have a tail to explore
    /// into. The identity chain fetches exactly `k` — over-fetching
    /// would already be observable (extra work, different HNSW beam),
    /// so identity must not do it.
    pub fn fetch_k(&self, k: usize) -> usize {
        if self.is_identity() {
            k
        } else {
            (k * OVERFETCH_FACTOR).max(k + OVERFETCH_MIN_EXTRA)
        }
    }

    /// The brownout over-fetch: half the headroom of
    /// [`RerankChain::fetch_k`], for serving under pressure. The identity
    /// chain still fetches exactly `k`.
    pub fn fetch_k_reduced(&self, k: usize) -> usize {
        if self.is_identity() {
            k
        } else {
            (k * REDUCED_OVERFETCH_FACTOR).max(k + REDUCED_OVERFETCH_MIN_EXTRA)
        }
    }

    /// Whether the chain contains a stage named `name`.
    pub fn has_stage(&self, name: &str) -> bool {
        self.stages.iter().any(|s| s.name() == name)
    }

    /// Whether `skip` would actually drop a stage this chain runs —
    /// i.e. whether a degraded `apply` can differ from the full one.
    pub fn skip_affects(&self, skip: StageSkip) -> bool {
        self.stages.iter().any(|s| skip.skips(s.name()))
    }

    /// Runs every stage in order and truncates to `ctx.k`. The identity
    /// chain returns `hits` untouched (same allocation, same bytes).
    /// Per-stage latency is recorded as
    /// `unimatch_rerank_stage_us{stage=}` spans when observability is
    /// enabled.
    pub fn apply(&self, ctx: &RerankContext, hits: Vec<Hit>) -> Vec<Hit> {
        self.apply_degraded(ctx, hits, StageSkip::NONE)
    }

    /// [`RerankChain::apply`] minus the stages in `skip`. With
    /// [`StageSkip::NONE`] this is exactly `apply` (same bytes); under a
    /// brownout it sheds the optional quality stages while the
    /// correctness-bearing ones (filter, cap, debias) still run.
    pub fn apply_degraded(&self, ctx: &RerankContext, hits: Vec<Hit>, skip: StageSkip) -> Vec<Hit> {
        if self.is_identity() {
            return hits;
        }
        let mut candidates = CandidateList::from_hits(hits);
        for stage in &self.stages {
            if skip.skips(stage.name()) {
                continue;
            }
            let _span = span_us("unimatch_rerank_stage_us", stage_label(stage.name()));
            stage.apply(ctx, &mut candidates);
        }
        candidates.truncate(ctx.k);
        candidates.into_hits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_ann::EmbeddingStore;

    fn ctx<'a>(k: usize) -> RerankContext<'a> {
        RerankContext {
            store: None,
            log_marginals: None,
            external_ids: None,
            rules: None,
            seed: 42,
            query_tag: 9,
            k,
        }
    }

    fn hits(n: u32) -> Vec<Hit> {
        (0..n).map(|i| Hit { id: i, score: 1.0 - i as f32 * 0.01 }).collect()
    }

    #[test]
    fn identity_chain_is_invisible() {
        let chain = RerankChain::parse("").unwrap();
        assert!(chain.is_identity());
        assert_eq!(chain.fetch_k(7), 7);
        let input = hits(5);
        let out = chain.apply(&ctx(3), input.clone());
        assert_eq!(out, input, "identity must not even truncate");
        assert_eq!(chain.spec(), "");
    }

    #[test]
    fn full_chain_parses_and_canonicalizes() {
        let chain = RerankChain::parse(" debias@0.5, mmr@0.3 ,cap:category=3,explore@0.1")
            .unwrap();
        assert_eq!(chain.spec(), "debias@0.5,mmr@0.3,cap:category=3,explore@0.1");
        assert_eq!(chain.stage_names(), vec!["debias", "mmr", "cap", "explore"]);
        assert!(!chain.is_identity());
        assert!(chain.fetch_k(10) >= 40);
    }

    #[test]
    fn defaults_are_resolved_into_the_canonical_spec() {
        let chain = RerankChain::parse("debias,mmr,explore").unwrap();
        assert_eq!(chain.spec(), "debias@1,mmr@0.5,explore@0.1");
        // canonical spec round-trips to itself
        let again = RerankChain::parse(chain.spec()).unwrap();
        assert_eq!(again.spec(), chain.spec());
    }

    #[test]
    fn registry_rejections_are_typed() {
        assert_eq!(
            RerankChain::parse("boost@2").unwrap_err(),
            SpecError::UnknownStage("boost".to_string())
        );
        assert!(matches!(
            RerankChain::parse("mmr@1.5").unwrap_err(),
            SpecError::WeightOutOfRange { .. }
        ));
        assert_eq!(
            RerankChain::parse("filter@0.5").unwrap_err(),
            SpecError::WeightNotAccepted("filter".to_string())
        );
        assert_eq!(
            RerankChain::parse("cap").unwrap_err(),
            SpecError::MissingOption { stage: "cap".to_string(), key: "category".to_string() }
        );
        assert!(matches!(
            RerankChain::parse("cap:category=0").unwrap_err(),
            SpecError::BadOptionValue { .. }
        ));
        assert!(matches!(
            RerankChain::parse("cap:shelf=3").unwrap_err(),
            SpecError::UnknownOption { .. }
        ));
        assert!(matches!(
            RerankChain::parse("debias:category=3").unwrap_err(),
            SpecError::UnknownOption { .. }
        ));
    }

    #[test]
    fn chain_truncates_to_k_and_is_deterministic() {
        let store = EmbeddingStore::from_rows(
            &(0..40).map(|i| (i as f32).sin()).collect::<Vec<f32>>(),
            2,
        );
        let log_p: Vec<f32> = (0..20).map(|i| -((i + 2) as f32).ln()).collect();
        let chain = RerankChain::parse("debias@0.5,mmr@0.3,explore@0.2").unwrap();
        let c = RerankContext {
            store: Some(&store),
            log_marginals: Some(&log_p),
            ..ctx(5)
        };
        let a = chain.apply(&c, hits(20));
        let b = chain.apply(&c, hits(20));
        assert_eq!(a.len(), 5);
        assert_eq!(a, b, "chains are deterministic under a fixed context");
    }

    #[test]
    fn stage_skip_none_matches_apply_bytewise() {
        let log_p: Vec<f32> = (0..20).map(|i| -((i + 2) as f32).ln()).collect();
        let chain = RerankChain::parse("debias@0.5,explore@0.2").unwrap();
        let c = RerankContext { log_marginals: Some(&log_p), ..ctx(5) };
        let full = chain.apply(&c, hits(20));
        let none = chain.apply_degraded(&c, hits(20), StageSkip::NONE);
        assert_eq!(full, none);
    }

    #[test]
    fn skipping_explore_matches_the_chain_without_it() {
        let log_p: Vec<f32> = (0..20).map(|i| -((i + 2) as f32).ln()).collect();
        let with = RerankChain::parse("debias@0.5,explore@0.9").unwrap();
        let without = RerankChain::parse("debias@0.5").unwrap();
        let c = RerankContext { log_marginals: Some(&log_p), ..ctx(5) };
        let skip = StageSkip { explore: true, mmr: false };
        assert!(with.skip_affects(skip));
        assert!(!without.skip_affects(skip));
        let degraded = with.apply_degraded(&c, hits(20), skip);
        let reference = without.apply(&c, hits(20));
        assert_eq!(degraded, reference, "skipped stage must be a clean no-op");
    }

    #[test]
    fn reduced_overfetch_sits_between_k_and_the_full_overfetch() {
        let chain = RerankChain::parse("debias,explore").unwrap();
        for k in [1, 5, 10, 100] {
            let reduced = chain.fetch_k_reduced(k);
            assert!(reduced > k, "filters still need slack (k={k})");
            assert!(reduced < chain.fetch_k(k), "must shed work (k={k})");
        }
        let identity = RerankChain::identity();
        assert_eq!(identity.fetch_k_reduced(7), 7);
    }

    #[test]
    fn obs_on_off_is_byte_identical() {
        let chain = RerankChain::parse("debias@0.5,explore@0.3").unwrap();
        let log_p: Vec<f32> = (0..20).map(|i| -((i + 2) as f32).ln()).collect();
        let c = RerankContext { log_marginals: Some(&log_p), ..ctx(5) };
        let off = chain.apply(&c, hits(20));
        unimatch_obs::set_enabled(true);
        let on = chain.apply(&c, hits(20));
        unimatch_obs::set_enabled(false);
        assert_eq!(off, on);
        let rendered = unimatch_obs::registry::render();
        assert!(
            rendered.contains("unimatch_rerank_stage_us"),
            "per-stage span must register: {rendered}"
        );
    }
}
