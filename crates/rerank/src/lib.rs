//! # unimatch-rerank
//!
//! A composable post-retrieval re-ranking & sampling pipeline. Retrieval
//! ends at raw top-k out of the `Retriever` engine; the multi-purpose
//! marketing setting (IR and UT audiences for many merchants) needs
//! candidate lists shaped by business policy, not just dot-product
//! order. This crate provides:
//!
//! * [`RerankStage`] — one transformation over a scored
//!   [`CandidateList`], reading shared inputs from a [`RerankContext`];
//! * [`RerankChain`] — an ordered sequence of stages, built from a
//!   compact string spec (`debias@0.5,mmr@0.3,cap:category=3,explore@0.1`)
//!   by a metadata-driven parser with typed errors ([`SpecError`]);
//! * four shipped stages: popularity **debias** (log-marginal score
//!   penalty from the persisted `p̂(i)` table), **mmr** diversity
//!   re-ranking against embedding similarity from the shared
//!   `EmbeddingStore`, business-rule **filter** / **cap** (allow/deny id
//!   sets and per-category caps from a [`BusinessRules`] sidecar file),
//!   and seeded **explore** sampling (splitmix64 — deterministic under a
//!   fixed seed, so chaos and parity e2e suites still pin byte-identical
//!   responses).
//!
//! ## Contracts
//!
//! * **Identity is free.** An empty chain ([`RerankChain::identity`])
//!   must be bitwise invisible: [`RerankChain::fetch_k`] returns `k`
//!   unchanged and [`RerankChain::apply`] returns the hits untouched, so
//!   every call site produces exactly the bytes it produced before this
//!   crate existed.
//! * **Determinism.** Every stage is a pure function of
//!   `(context, candidates)`; the only randomness (exploration) is
//!   derived from `(seed, query_tag, position)` through splitmix64, so a
//!   fixed seed yields byte-identical output across runs, threads, and
//!   obs on/off.
//! * **Graceful degradation.** A stage whose inputs are absent from the
//!   context (no marginals, no store, no rules) is a no-op rather than
//!   an error — the chain never breaks serving.
//!
//! Per-stage latency is recorded as `unimatch_rerank_stage_us{stage=}`
//! spans through `unimatch-obs` (default-off, no observer effect).

#![warn(missing_docs)]

mod chain;
mod rules;
mod spec;
mod stage;
mod stages;

pub use chain::{RerankChain, StageSkip};
pub use rules::BusinessRules;
pub use spec::SpecError;
pub use stage::{CandidateList, RerankContext, RerankStage};

/// splitmix64 finalizer — the crate's only randomness primitive. Same
/// constants as the fault plane's deterministic trigger stream, copied
/// here to keep the crate dependency-free.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Tags a query embedding with an FNV-1a 64 hash over its exact f32 bit
/// patterns. Both the direct and the micro-batched serving paths hold
/// the query embedding, so both compute the same tag — which is what
/// keeps seeded exploration byte-identical between them for the same
/// query.
pub fn query_tag(query: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for x in query {
        for b in x.to_bits().to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_tag_depends_on_exact_bits() {
        let a = query_tag(&[0.1, 0.2, 0.3]);
        let b = query_tag(&[0.1, 0.2, 0.3]);
        let c = query_tag(&[0.1, 0.2, 0.300001]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // -0.0 and +0.0 have different bit patterns and must tag apart
        assert_ne!(query_tag(&[0.0]), query_tag(&[-0.0]));
    }

    #[test]
    fn mix_matches_splitmix64_reference() {
        // reference values from the canonical splitmix64 stream
        assert_ne!(mix(0), 0);
        assert_ne!(mix(1), mix(2));
        // bijective finalizer: no collisions over a small dense range
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(mix).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
