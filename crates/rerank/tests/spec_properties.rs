//! Property tests for the chain-spec grammar: canonical round-trips,
//! and typed rejection of malformed inputs.

use proptest::prelude::*;
use unimatch_rerank::{RerankChain, SpecError};

/// One random valid stage clause, tagged with its stage name so chains
/// can avoid duplicates. `kind` selects the stage, the numbers feed its
/// weight/option.
fn clause(kind: usize, w: u32, n: usize) -> (String, String) {
    match kind % 8 {
        0 => ("debias".to_string(), format!("debias@{}", w as f32 / 10.0)),
        1 => ("mmr".to_string(), format!("mmr@{}", (w % 101) as f32 / 100.0)),
        2 => ("filter".to_string(), "filter".to_string()),
        3 => ("cap".to_string(), format!("cap:category={n}")),
        4 => ("explore".to_string(), format!("explore@{}", (w % 101) as f32 / 100.0)),
        // default-weight forms
        5 => ("debias".to_string(), "debias".to_string()),
        6 => ("mmr".to_string(), "mmr".to_string()),
        _ => ("explore".to_string(), "explore".to_string()),
    }
}

fn arbitrary_clause() -> impl Strategy<Value = (String, String)> {
    (0usize..8, 0u32..=1000, 1usize..=50).prop_map(|(kind, w, n)| clause(kind, w, n))
}

/// A random valid chain: up to 5 clauses with distinct stage names.
fn arbitrary_chain() -> impl Strategy<Value = String> {
    proptest::collection::vec(arbitrary_clause(), 0..5).prop_map(|clauses| {
        let mut seen = Vec::new();
        let mut parts = Vec::new();
        for (name, text) in clauses {
            if !seen.contains(&name) {
                seen.push(name);
                parts.push(text);
            }
        }
        parts.join(",")
    })
}

/// A random lowercase identifier.
fn lowercase_word() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..26, 1..12)
        .prop_map(|bytes| bytes.into_iter().map(|b| (b'a' + b) as char).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every valid spec parses, and its canonical form is a fixed point:
    /// parse(canonical).spec() == canonical.
    #[test]
    fn canonical_spec_round_trips(spec in arbitrary_chain()) {
        let chain = RerankChain::parse(&spec).expect("generated specs are valid");
        let canonical = chain.spec().to_string();
        let reparsed = RerankChain::parse(&canonical).expect("canonical specs are valid");
        prop_assert_eq!(reparsed.spec(), canonical.as_str());
        prop_assert_eq!(reparsed.stage_names(), chain.stage_names());
        prop_assert_eq!(reparsed.is_identity(), chain.is_identity());
    }

    /// Whitespace around separators never changes the parse.
    #[test]
    fn whitespace_is_insignificant(spec in arbitrary_chain()) {
        let spaced = spec.replace(',', " , ");
        let a = RerankChain::parse(&spec).expect("valid");
        let b = RerankChain::parse(&spaced).expect("spaced variant stays valid");
        prop_assert_eq!(a.spec(), b.spec());
    }

    /// Unknown stage names are rejected with the typed error carrying
    /// the offending name.
    #[test]
    fn unknown_stages_rejected(name in lowercase_word()) {
        prop_assume!(!matches!(
            name.as_str(),
            "debias" | "mmr" | "filter" | "cap" | "explore"
        ));
        match RerankChain::parse(&name) {
            Err(SpecError::UnknownStage(got)) => prop_assert_eq!(got, name),
            other => prop_assert!(false, "expected UnknownStage, got {:?}", other),
        }
    }

    /// Non-numeric weights are rejected as BadWeight with the raw text.
    #[test]
    fn non_numeric_weights_rejected(raw in lowercase_word()) {
        prop_assume!(raw.parse::<f32>().is_err());
        match RerankChain::parse(&format!("debias@{raw}")) {
            Err(SpecError::BadWeight { stage, raw: got }) => {
                prop_assert_eq!(stage, "debias");
                prop_assert_eq!(got, raw);
            }
            other => prop_assert!(false, "expected BadWeight, got {:?}", other),
        }
    }

    /// Out-of-range weights for bounded stages are rejected as such.
    #[test]
    fn out_of_range_weights_rejected(w in 1.0001f32..1000.0) {
        for stage in ["mmr", "explore"] {
            match RerankChain::parse(&format!("{stage}@{w}")) {
                Err(SpecError::WeightOutOfRange { weight, min, max, .. }) => {
                    prop_assert_eq!(weight, w);
                    prop_assert_eq!(min, 0.0);
                    prop_assert_eq!(max, 1.0);
                }
                other => prop_assert!(false, "expected WeightOutOfRange, got {:?}", other),
            }
        }
    }

    /// Repeating any stage in a chain is rejected as DuplicateStage.
    #[test]
    fn duplicate_stages_rejected(kind in 0usize..8, w in 0u32..=1000, n in 1usize..=50) {
        let (_, text) = clause(kind, w, n);
        let doubled = format!("{text},{text}");
        prop_assert!(matches!(
            RerankChain::parse(&doubled),
            Err(SpecError::DuplicateStage(_))
        ));
    }

    /// Repeated option keys within one clause are rejected.
    #[test]
    fn duplicate_option_keys_rejected(a in 1usize..50, b in 1usize..50) {
        let spec = format!("cap:category={a}:category={b}");
        prop_assert_eq!(
            RerankChain::parse(&spec).unwrap_err(),
            SpecError::DuplicateOption { stage: "cap".to_string(), key: "category".to_string() }
        );
    }
}
