//! Fault plans: what to inject, where, and how often.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultRule`]s. Rules are
//! data — building one does nothing until the plan is armed with
//! [`crate::set_plan`]. Plans can also be parsed from a compact spec
//! string (the CLI's `--faults` knob):
//!
//! ```text
//! ann.search=latency:500@0.3;persist.load=io@0.5x2;durable.month_end=crash+3x1
//! ```
//!
//! Each `;`-separated rule is `point=kind[@prob][xMAX][+SKIP]` where
//! `kind` is `latency:MICROS`, `io`, `bitflip` or `crash`; `@prob` is
//! the per-hit firing probability (default 1.0); `xMAX` bounds the total
//! number of fires; `+SKIP` ignores the first SKIP hits (e.g. "crash on
//! the 4th checkpoint commit" is `+3x1`).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use unimatch_obs as obs;

/// What a firing injection point does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Sleep for this many microseconds (simulated slow I/O / slow shard).
    LatencyUs(u64),
    /// Surface a transient `io::ErrorKind::Interrupted` error.
    IoError,
    /// Flip one bit of the bytes flowing through the seam.
    BitFlip,
    /// Panic — the in-process stand-in for a hard kill.
    Crash,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::LatencyUs(us) => write!(f, "latency:{us}"),
            FaultKind::IoError => write!(f, "io"),
            FaultKind::BitFlip => write!(f, "bitflip"),
            FaultKind::Crash => write!(f, "crash"),
        }
    }
}

/// One injection rule: at `point`, fire `kind` with probability
/// `probability` per hit, at most `max_fires` times, skipping the first
/// `skip_first` hits.
#[derive(Clone, Debug)]
pub struct FaultRule {
    /// Name of the injection point this rule targets (exact match).
    pub point: String,
    /// The fault to inject when the rule fires.
    pub kind: FaultKind,
    /// Per-hit firing probability in `[0, 1]` (default 1.0).
    pub probability: f64,
    /// Cap on total fires; `None` means unbounded.
    pub max_fires: Option<u64>,
    /// Number of initial hits that never fire (default 0).
    pub skip_first: u64,
}

impl FaultRule {
    /// A rule for `point` firing `kind` on every hit.
    pub fn new(point: impl Into<String>, kind: FaultKind) -> FaultRule {
        FaultRule {
            point: point.into(),
            kind,
            probability: 1.0,
            max_fires: None,
            skip_first: 0,
        }
    }

    /// Sets the per-hit firing probability (clamped to `[0, 1]`).
    pub fn with_probability(mut self, p: f64) -> FaultRule {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Caps the total number of fires.
    pub fn with_max_fires(mut self, n: u64) -> FaultRule {
        self.max_fires = Some(n);
        self
    }

    /// Skips the first `n` hits before the rule may fire.
    pub fn with_skip_first(mut self, n: u64) -> FaultRule {
        self.skip_first = n;
        self
    }
}

/// A seed plus the rules to arm. See the module docs for the spec-string
/// grammar accepted by [`FaultPlan::parse`].
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for the deterministic per-hit decisions.
    pub seed: u64,
    /// The injection rules.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// Parses the compact `point=kind[@prob][xMAX][+SKIP];…` spec.
    pub fn parse(spec: &str, seed: u64) -> Result<FaultPlan, PlanParseError> {
        let mut rules = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            rules.push(parse_rule(part)?);
        }
        if rules.is_empty() {
            return Err(PlanParseError { spec: spec.to_string(), detail: "no rules".into() });
        }
        Ok(FaultPlan { seed, rules })
    }
}

/// A `--faults` spec string that could not be parsed.
#[derive(Clone, Debug)]
pub struct PlanParseError {
    /// The offending rule text.
    pub spec: String,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec `{}`: {}", self.spec, self.detail)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_rule(part: &str) -> Result<FaultRule, PlanParseError> {
    let err = |detail: &str| PlanParseError { spec: part.to_string(), detail: detail.into() };
    let (point, rest) = part.split_once('=').ok_or_else(|| err("missing `=`"))?;
    let point = point.trim();
    if point.is_empty() {
        return Err(err("empty point name"));
    }
    // the kind token runs until the first suffix delimiter (@, x, +);
    // kind names and `latency:MICROS` contain none of those characters
    let kind_end = rest.find(['@', 'x', '+']).unwrap_or(rest.len());
    let kind_str = &rest[..kind_end];
    let kind = match kind_str.split_once(':') {
        Some(("latency", us)) => FaultKind::LatencyUs(
            us.parse().map_err(|_| err("latency wants integer microseconds"))?,
        ),
        None if kind_str == "io" => FaultKind::IoError,
        None if kind_str == "bitflip" => FaultKind::BitFlip,
        None if kind_str == "crash" => FaultKind::Crash,
        _ => return Err(err("kind must be latency:MICROS, io, bitflip or crash")),
    };
    let mut rule = FaultRule::new(point, kind);
    let mut suffix = &rest[kind_end..];
    while !suffix.is_empty() {
        let delim = suffix.as_bytes()[0];
        let body = &suffix[1..];
        let end = body.find(['@', 'x', '+']).unwrap_or(body.len());
        let value = &body[..end];
        match delim {
            b'@' => {
                let p: f64 =
                    value.parse().map_err(|_| err("`@` wants a probability in [0,1]"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err("`@` wants a probability in [0,1]"));
                }
                rule = rule.with_probability(p);
            }
            b'x' => {
                rule = rule
                    .with_max_fires(value.parse().map_err(|_| err("`x` wants a fire count"))?);
            }
            b'+' => {
                rule = rule
                    .with_skip_first(value.parse().map_err(|_| err("`+` wants a skip count"))?);
            }
            _ => unreachable!("suffix starts at a delimiter"),
        }
        suffix = &body[end..];
    }
    Ok(rule)
}

/// splitmix64 finalizer: a cheap, well-mixed `u64 -> u64` bijection.
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn fnv64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct ArmedRule {
    rule: FaultRule,
    point_hash: u64,
    hits: AtomicU64,
    fires: AtomicU64,
    /// `unimatch_faults_fired_total{point=…}` — resolved once at arm
    /// time so firing never takes the registry lock.
    fired_counter: &'static obs::Counter,
}

/// A plan compiled for decision-making: per-rule hit/fire counters and
/// pre-resolved metric handles. Internal to the crate; built by
/// [`crate::set_plan`].
pub(crate) struct ArmedPlan {
    seed: u64,
    rules: Vec<ArmedRule>,
}

impl ArmedPlan {
    pub(crate) fn new(plan: FaultPlan) -> ArmedPlan {
        let rules = plan
            .rules
            .into_iter()
            .map(|rule| {
                // the registry keys by label *content*, so re-arming the
                // same point reuses the counter; only the label string
                // itself leaks, once per distinct point name per arm
                let labels: &'static str =
                    Box::leak(format!("point=\"{}\"", rule.point).into_boxed_str());
                ArmedRule {
                    point_hash: fnv64(&rule.point),
                    hits: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                    fired_counter: obs::registry::counter_labeled(
                        "unimatch_faults_fired_total",
                        labels,
                    ),
                    rule,
                }
            })
            .collect();
        ArmedPlan { seed: plan.seed, rules }
    }

    /// Decides whether the current hit at `point` fires, and what.
    /// Rules are consulted in plan order; the first that fires wins.
    pub(crate) fn decide(&self, point: &str) -> Option<FaultKind> {
        let mut decision = None;
        for (i, armed) in self.rules.iter().enumerate() {
            if armed.rule.point != point {
                continue;
            }
            let n = armed.hits.fetch_add(1, Ordering::Relaxed);
            if n < armed.rule.skip_first {
                continue;
            }
            // deterministic per (seed, point, rule position, hit index)
            let h = mix(self.seed ^ armed.point_hash ^ mix(i as u64) ^ mix(n));
            let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
            if draw >= armed.rule.probability {
                continue;
            }
            // enforce the fire budget exactly even under concurrent hits
            let budget = armed.rule.max_fires.unwrap_or(u64::MAX);
            let won = armed
                .fires
                .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |f| {
                    (f < budget).then_some(f + 1)
                })
                .is_ok();
            if !won {
                continue;
            }
            armed.fired_counter.inc();
            decision = Some(armed.rule.kind);
            break;
        }
        decision
    }

    pub(crate) fn fired_total(&self) -> u64 {
        self.rules.iter().map(|r| r.fires.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let plan = FaultPlan::parse(
            "ann.search=latency:500@0.3; persist.load=io@0.5x2;durable.month_end=crash+3x1;train.step=bitflip",
            42,
        )
        .expect("valid spec");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 4);

        let r = &plan.rules[0];
        assert_eq!(r.point, "ann.search");
        assert_eq!(r.kind, FaultKind::LatencyUs(500));
        assert!((r.probability - 0.3).abs() < 1e-12);
        assert_eq!(r.max_fires, None);
        assert_eq!(r.skip_first, 0);

        let r = &plan.rules[1];
        assert_eq!(r.kind, FaultKind::IoError);
        assert_eq!(r.max_fires, Some(2));

        let r = &plan.rules[2];
        assert_eq!(r.kind, FaultKind::Crash);
        assert_eq!(r.skip_first, 3);
        assert_eq!(r.max_fires, Some(1));

        assert_eq!(plan.rules[3].kind, FaultKind::BitFlip);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "no-equals",
            "=io",
            "p=warp",
            "p=latency:abc",
            "p=io@1.5",
            "p=io@zero",
            "p=iox",
            "p=crash+many",
        ] {
            let e = FaultPlan::parse(bad, 0).expect_err(bad);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn armed_plan_counts_fires_per_rule() {
        let plan = ArmedPlan::new(FaultPlan {
            seed: 0,
            rules: vec![
                FaultRule::new("a", FaultKind::IoError).with_probability(1.0).with_max_fires(1),
                FaultRule::new("a", FaultKind::BitFlip).with_probability(1.0),
            ],
        });
        // first hit: rule 0 wins; afterwards its budget is spent and
        // rule 1 takes over
        assert_eq!(plan.decide("a"), Some(FaultKind::IoError));
        assert_eq!(plan.decide("a"), Some(FaultKind::BitFlip));
        assert_eq!(plan.decide("a"), Some(FaultKind::BitFlip));
        assert_eq!(plan.fired_total(), 3);
        assert_eq!(plan.decide("b"), None);
    }

    #[test]
    fn mix_is_well_distributed_enough() {
        // coarse sanity: low bit of mix over consecutive integers is
        // roughly balanced (the decision draw depends on this)
        let ones = (0..1024u64).filter(|&i| mix(i) & 1 == 1).count();
        assert!((400..=624).contains(&ones), "{ones}");
    }
}
