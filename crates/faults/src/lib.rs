//! # unimatch-faults
//!
//! The workspace's deterministic fault-injection plane: the robustness
//! counterpart to `unimatch-obs`. Production seams (checkpoint save/load,
//! ANN search, the serve batcher, the trainer step, the durable-training
//! commit points) declare **named injection points**; a test or chaos
//! harness arms a [`FaultPlan`] describing *which* points misbehave,
//! *how* (latency, I/O error, bit flip, crash), and *how often* — and the
//! hardened layers above are exercised against exactly the failures they
//! claim to survive.
//!
//! ## The no-op contract
//!
//! Fault injection is **off by default** and must cost nothing in
//! production:
//!
//! * the disarmed hot path is one relaxed atomic load plus a branch —
//!   the `overhead` integration test pins it the same way
//!   `crates/obs/tests/overhead.rs` pins the observability flag;
//! * while disarmed, no lock is taken, no clock is read, nothing
//!   allocates;
//! * arming is explicit ([`set_plan`]) and scoped ([`clear`]): nothing
//!   fires unless a test asked for it.
//!
//! ## Determinism
//!
//! Every decision is a pure function of `(plan seed, point name, hit
//! index)`: the *k*-th arrival at a point fires if and only if a
//! [splitmix64](https://prng.di.unimi.it/splitmix64.c) hash of those
//! three values lands under the rule's probability. Re-running the same
//! workload against the same plan reproduces the same fault schedule —
//! per point, the decision *sequence* is fixed even when hits race across
//! threads (threads may interleave which request absorbs the k-th
//! decision, but the number and pattern of fires is pinned).
//!
//! ```
//! use unimatch_faults as faults;
//! use faults::{FaultKind, FaultPlan, FaultPoint, FaultRule};
//!
//! // nothing fires while disarmed
//! assert!(FaultPoint::should_fire("demo.point").is_none());
//!
//! faults::set_plan(FaultPlan {
//!     seed: 7,
//!     rules: vec![FaultRule::new("demo.point", FaultKind::IoError).with_probability(1.0)],
//! });
//! assert!(matches!(FaultPoint::should_fire("demo.point"), Some(FaultKind::IoError)));
//! faults::clear();
//! assert!(FaultPoint::should_fire("demo.point").is_none());
//! ```

#![warn(missing_docs)]

pub mod plan;
pub mod points;

pub use plan::{FaultKind, FaultPlan, FaultRule, PlanParseError};

use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Whether any plan is armed. One relaxed load; this is the entire cost
/// of a disarmed injection point.
static ARMED: AtomicBool = AtomicBool::new(false);

fn plan_slot() -> &'static Mutex<Option<Arc<plan::ArmedPlan>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<plan::ArmedPlan>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

fn slot_lock() -> std::sync::MutexGuard<'static, Option<Arc<plan::ArmedPlan>>> {
    // A poisoned slot means a panic elsewhere (possibly an *injected*
    // crash mid-fire); the plan itself is still structurally sound.
    plan_slot().lock().unwrap_or_else(|e| e.into_inner())
}

/// Arms `plan` process-wide, replacing any previous plan (and its hit
/// counters). Fault decisions start fresh.
pub fn set_plan(plan: FaultPlan) {
    let armed = Arc::new(plan::ArmedPlan::new(plan));
    *slot_lock() = Some(armed);
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms fault injection. Points return to the pure no-op path.
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    *slot_lock() = None;
}

/// Whether a plan is currently armed. One relaxed atomic load; hot loops
/// may call this freely.
#[inline(always)]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Total faults fired since the current plan was armed (all points).
pub fn fired_total() -> u64 {
    slot_lock().as_ref().map_or(0, |p| p.fired_total())
}

/// A named injection point. Declare one per seam:
///
/// ```
/// use unimatch_faults::FaultPoint;
/// const SEARCH: FaultPoint = FaultPoint::new("ann.search");
/// SEARCH.inject_latency(); // no-op unless a plan targets "ann.search"
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FaultPoint(&'static str);

impl FaultPoint {
    /// Declares a point named `name`. Names are dot-separated by
    /// convention (`layer.operation`), e.g. `persist.load`.
    pub const fn new(name: &'static str) -> FaultPoint {
        FaultPoint(name)
    }

    /// The point's name.
    pub fn name(&self) -> &'static str {
        self.0
    }

    /// Consults the armed plan for point `name`: returns the fault to
    /// inject at this hit, or `None`. This is the primitive the typed
    /// helpers below build on; while disarmed it is a single relaxed
    /// load + branch.
    #[inline]
    pub fn should_fire(name: &'static str) -> Option<FaultKind> {
        if !armed() {
            return None;
        }
        Self::fire_slow(name)
    }

    #[cold]
    fn fire_slow(name: &'static str) -> Option<FaultKind> {
        let plan = slot_lock().clone()?;
        plan.decide(name)
    }

    /// Instance form of [`FaultPoint::should_fire`].
    #[inline]
    pub fn fire(&self) -> Option<FaultKind> {
        Self::should_fire(self.0)
    }

    /// Sleeps for the planned duration if a latency fault fires here.
    /// Returns the injected microseconds (0 when nothing fired).
    #[inline]
    pub fn inject_latency(&self) -> u64 {
        match self.fire() {
            Some(FaultKind::LatencyUs(us)) => {
                std::thread::sleep(std::time::Duration::from_micros(us));
                us
            }
            _ => 0,
        }
    }

    /// Returns an injected I/O error if one fires here. The error kind is
    /// [`io::ErrorKind::Interrupted`] — a *transient* kind, so retry
    /// wrappers treat it as retryable (that is the scenario the plan is
    /// simulating).
    #[inline]
    pub fn io_error(&self) -> Option<io::Error> {
        match self.fire() {
            Some(FaultKind::IoError) => Some(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("injected I/O fault at {}", self.0),
            )),
            _ => None,
        }
    }

    /// Flips one deterministic bit of `bytes` if a bit-flip fault fires
    /// here (the position is derived from the plan seed and the hit
    /// index). Returns whether a flip happened. Empty slices are never
    /// touched.
    #[inline]
    pub fn corrupt(&self, bytes: &mut [u8]) -> bool {
        match self.fire() {
            Some(FaultKind::BitFlip) if !bytes.is_empty() => {
                let h = plan::mix(self.0.len() as u64 ^ bytes.len() as u64 ^ 0xb17_f11b);
                let pos = (h % bytes.len() as u64) as usize;
                bytes[pos] ^= 1 << ((h >> 32) % 8);
                true
            }
            _ => false,
        }
    }

    /// Panics with a recognizable message if a crash fault fires here —
    /// the in-process stand-in for `kill -9` used by the durable-training
    /// tests (the panic is caught at the test boundary and the process
    /// state thrown away; only what reached disk survives).
    #[inline]
    pub fn crash_point(&self) {
        if let Some(FaultKind::Crash) = self.fire() {
            panic!("injected crash at fault point {}", self.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that flip the process-global plan.
    pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disarmed_points_never_fire() {
        let _guard = test_lock();
        clear();
        for _ in 0..100 {
            assert!(FaultPoint::should_fire("x.y").is_none());
        }
        assert_eq!(fired_total(), 0);
    }

    #[test]
    fn probability_one_always_fires_and_budget_caps() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 3,
            rules: vec![FaultRule::new("p.a", FaultKind::IoError)
                .with_probability(1.0)
                .with_max_fires(2)],
        });
        let fires: Vec<bool> =
            (0..5).map(|_| FaultPoint::should_fire("p.a").is_some()).collect();
        assert_eq!(fires, vec![true, true, false, false, false]);
        assert_eq!(fired_total(), 2);
        clear();
    }

    #[test]
    fn decisions_are_seed_deterministic() {
        let _guard = test_lock();
        let run = |seed: u64| -> Vec<bool> {
            set_plan(FaultPlan {
                seed,
                rules: vec![FaultRule::new("p.b", FaultKind::BitFlip).with_probability(0.5)],
            });
            let fires = (0..64).map(|_| FaultPoint::should_fire("p.b").is_some()).collect();
            clear();
            fires
        };
        let a = run(11);
        let b = run(11);
        let c = run(12);
        assert_eq!(a, b, "same seed must reproduce the same schedule");
        assert_ne!(a, c, "different seeds should differ (64 draws at p=0.5)");
        let count = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&count), "p=0.5 over 64 draws fired {count} times");
    }

    #[test]
    fn skip_first_defers_firing() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 5,
            rules: vec![FaultRule::new("p.c", FaultKind::Crash)
                .with_probability(1.0)
                .with_skip_first(3)],
        });
        let fires: Vec<bool> =
            (0..5).map(|_| FaultPoint::should_fire("p.c").is_some()).collect();
        assert_eq!(fires, vec![false, false, false, true, true]);
        clear();
    }

    #[test]
    fn corrupt_flips_exactly_one_bit() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 9,
            rules: vec![FaultRule::new("p.d", FaultKind::BitFlip).with_probability(1.0)],
        });
        let point = FaultPoint::new("p.d");
        let original = vec![0u8; 64];
        let mut bytes = original.clone();
        assert!(point.corrupt(&mut bytes));
        let flipped: u32 = bytes
            .iter()
            .zip(&original)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit must flip");
        // empty slices are left alone (and do not consume panic)
        assert!(!point.corrupt(&mut []));
        clear();
    }

    #[test]
    fn io_error_is_transient_kind() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new("p.e", FaultKind::IoError).with_probability(1.0)],
        });
        let e = FaultPoint::new("p.e").io_error().expect("fires");
        assert_eq!(e.kind(), io::ErrorKind::Interrupted);
        assert!(e.to_string().contains("p.e"));
        clear();
    }

    #[test]
    fn crash_point_panics_with_recognizable_message() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 2,
            rules: vec![FaultRule::new("p.f", FaultKind::Crash).with_probability(1.0)],
        });
        let err = std::panic::catch_unwind(|| FaultPoint::new("p.f").crash_point())
            .expect_err("must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("injected crash at fault point p.f"), "{msg}");
        clear();
    }

    #[test]
    fn unrelated_points_are_untouched() {
        let _guard = test_lock();
        set_plan(FaultPlan {
            seed: 4,
            rules: vec![FaultRule::new("p.g", FaultKind::IoError).with_probability(1.0)],
        });
        assert!(FaultPoint::should_fire("p.other").is_none());
        assert!(FaultPoint::should_fire("p.g").is_some());
        clear();
    }
}
