//! The registry of named injection points.
//!
//! Fault points are declared ad hoc at their seams (`const P: FaultPoint =
//! FaultPoint::new("layer.operation")`), which keeps the disarmed cost at
//! one atomic load — but leaves no single place to answer "what can I
//! arm?". This module is that place: every seam the workspace ships is
//! listed in [`REGISTERED`], and a sync test pins the list against the
//! fault-point table in `docs/OPERATIONS.md` in both directions, so the
//! operator-facing docs can never drift from the code.
//!
//! Adding a new fault point therefore takes three edits: the seam itself,
//! a row here, and a row in the OPERATIONS.md table — and the test fails
//! until all three agree.

/// Every named injection point the workspace declares, with a one-line
/// operator summary. `ann.shard.search.N` stands for the per-shard
/// family (`N` = shard index 0–15): arming one member wedges exactly
/// that shard.
pub const REGISTERED: &[(&str, &str)] = &[
    ("persist.save", "checkpoint serialization/write (I/O errors, torn writes)"),
    ("persist.load", "checkpoint read (I/O errors, latency)"),
    ("persist.load.corrupt", "checkpoint bytes in flight (bit flips before validation)"),
    ("ann.search", "whole-index batch retrieval entry (latency: a slow/cold index)"),
    ("ann.shard.search", "every shard of a sharded fan-out (correlated storm)"),
    ("ann.shard.search.N", "one shard of a sharded fan-out (io/latency/crash isolation)"),
    ("serve.batch", "the serve micro-batch execution path (latency under load)"),
    ("train.step", "one optimizer step (NaN/spike injection, crashes mid-epoch)"),
    ("durable.pre_commit", "durable training just before a commit point (crash)"),
    ("durable.month_end", "durable training at a month boundary (crash)"),
];

/// Whether `name` is a registered point, counting members of the
/// `ann.shard.search.N` family (e.g. `ann.shard.search.3`) as registered.
pub fn is_registered(name: &str) -> bool {
    REGISTERED.iter().any(|(n, _)| *n == name)
        || name
            .strip_prefix("ann.shard.search.")
            .is_some_and(|idx| !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_members_count_as_registered() {
        assert!(is_registered("ann.shard.search"));
        assert!(is_registered("ann.shard.search.0"));
        assert!(is_registered("ann.shard.search.15"));
        assert!(!is_registered("ann.shard.search."));
        assert!(!is_registered("ann.shard.search.x"));
        assert!(!is_registered("nope.never"));
    }

    #[test]
    fn registry_names_are_unique_and_dot_separated() {
        for (i, (name, summary)) in REGISTERED.iter().enumerate() {
            assert!(name.contains('.'), "{name} should follow layer.operation");
            assert!(!summary.is_empty(), "{name} needs a summary");
            assert!(
                REGISTERED[i + 1..].iter().all(|(n, _)| n != name),
                "duplicate registry entry {name}"
            );
        }
    }
}
