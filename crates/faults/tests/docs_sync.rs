//! Pins the fault-point registry against the operator docs: every point
//! in [`unimatch_faults::points::REGISTERED`] must have a row in the
//! `docs/OPERATIONS.md` fault-point table, and every table row must name
//! a registered point. Either drift direction fails here, so "what can I
//! arm?" has exactly one answer.

use std::collections::BTreeSet;

const OPERATIONS_MD: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/OPERATIONS.md"));

/// Point names from the fault-point table: rows of the form
/// `| `name` | … |` inside the "Fault points" section.
fn documented_points() -> BTreeSet<String> {
    let section = OPERATIONS_MD
        .split("## Fault points")
        .nth(1)
        .expect("docs/OPERATIONS.md must have a `## Fault points` section");
    let section = section.split("\n## ").next().unwrap_or(section);
    let mut names = BTreeSet::new();
    for line in section.lines() {
        let Some(rest) = line.trim_start().strip_prefix("| `") else { continue };
        let Some(name) = rest.split('`').next() else { continue };
        names.insert(name.to_string());
    }
    names
}

#[test]
fn registry_and_operations_table_agree_both_ways() {
    let registered: BTreeSet<String> = unimatch_faults::points::REGISTERED
        .iter()
        .map(|(name, _)| name.to_string())
        .collect();
    let documented = documented_points();
    assert!(!registered.is_empty() && !documented.is_empty());

    let undocumented: Vec<_> = registered.difference(&documented).collect();
    assert!(
        undocumented.is_empty(),
        "fault points registered in unimatch-faults but missing from the \
         docs/OPERATIONS.md fault-point table: {undocumented:?}"
    );
    let unregistered: Vec<_> = documented.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "fault points documented in docs/OPERATIONS.md but absent from \
         unimatch_faults::points::REGISTERED: {unregistered:?}"
    );
}
