//! Pins the fault plane's no-op contract: with no plan armed, the
//! per-call cost of an injection point is indistinguishable from a bare
//! branch — no lock, no clock, no allocation. Mirrors
//! `crates/obs/tests/overhead.rs`, which pins the same contract for the
//! observability flag.

use std::time::Instant;

use unimatch_faults as faults;
use unimatch_faults::{FaultKind, FaultPlan, FaultPoint, FaultRule};

const ITERS: u64 = 2_000_000;

/// Both tests flip the process-global plan; run them one at a time.
fn plan_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` ITERS times and returns mean ns/op over the best of three
/// repeats (best-of smooths out scheduler noise).
fn bench(mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..ITERS {
            f(i);
        }
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best = best.min(ns);
    }
    best
}

#[test]
fn disarmed_injection_point_overhead_is_unmeasurable() {
    let _guard = plan_lock();
    faults::clear();

    // Baseline: the loop body alone (a data dependency the optimizer
    // cannot delete).
    let mut acc = 0u64;
    let base = bench(|i| acc = acc.wrapping_add(i).rotate_left(7));

    // With injection points: identical body plus the seams exactly as
    // persist/ANN/batcher/trainer write them.
    const POINT: FaultPoint = FaultPoint::new("overhead.test");
    let mut acc2 = 0u64;
    let mut fired = 0u64;
    let seamed = bench(|i| {
        acc2 = acc2.wrapping_add(i).rotate_left(7);
        POINT.inject_latency();
        if FaultPoint::should_fire("overhead.test").is_some() {
            fired += 1;
        }
    });

    // Keep the accumulators live.
    assert_ne!(acc.wrapping_add(acc2), 1);
    assert_eq!(fired, 0, "nothing may fire while disarmed");

    let delta = (seamed - base).max(0.0);
    assert!(
        delta < 15.0,
        "disarmed injection points cost {delta:.2} ns/op (base {base:.2}, seamed {seamed:.2}); \
         expected a bare load+branch per point"
    );
}

#[test]
fn armed_decision_cost_is_bounded() {
    // Not part of the no-op contract, but pin that an armed-but-missing
    // decision (plan targets a different point) stays cheap enough for
    // per-request use: one mutex lock + a short rule scan.
    let _guard = plan_lock();
    faults::set_plan(FaultPlan {
        seed: 1,
        rules: vec![FaultRule::new("somewhere.else", FaultKind::IoError)],
    });
    let per_op = bench(|_| {
        assert!(FaultPoint::should_fire("overhead.test").is_none());
    });
    faults::clear();
    assert!(per_op < 2_000.0, "armed decision cost {per_op:.0} ns/op — plan lookup regressed?");
}
