//! # unimatch-obs
//!
//! The workspace's observability layer: lock-free [`Counter`]s,
//! [`Gauge`]s and fixed-bucket [`Histogram`]s, scoped-timer [`Span`]s,
//! and a process-global [`registry`] that renders every registered series
//! in one Prometheus-style text exposition. Zero external dependencies —
//! everything is `std` atomics.
//!
//! ## The no-op contract
//!
//! Observability is **off by default** and must never perturb the
//! computation it watches:
//!
//! * the global flag ([`enabled`]) is one relaxed atomic load — the whole
//!   disabled hot path is `load + branch`, a nanosecond-scale cost that
//!   the `overhead` integration test pins;
//! * instrumentation sites guard with `if obs::enabled() { … }` so that
//!   with the flag off **no clock is read, no lock is taken, no
//!   allocation happens**;
//! * recording only ever *reads* model state (timers, counters, gradient
//!   norms) — enabling metrics cannot change a single trained byte,
//!   which the workspace's determinism audit asserts end to end.
//!
//! ## Two ways to hold a metric
//!
//! *Owned*: construct [`Counter`]/[`Histogram`] directly for
//! per-instance metrics (the serving layer owns one `Metrics` struct per
//! server). *Registered*: [`registry::counter`] & friends get-or-create
//! a process-global series by name and return a `&'static` handle;
//! [`registry::render`] walks them all. The training and ANN layers use
//! the registry so their series appear on the serving `/metrics`
//! endpoint with no plumbing between the crates.
//!
//! ```
//! use unimatch_obs as obs;
//!
//! obs::set_enabled(true);
//! if obs::enabled() {
//!     obs::registry::counter("my_events_total").inc();
//!     let _span = obs::span_us("my_phase_us", "");
//!     // … timed work; the span records into a histogram on drop
//! }
//! let text = obs::registry::render();
//! assert!(text.contains("my_events_total 1"));
//! # obs::set_enabled(false);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram};
pub use span::{span_us, Span};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns global observability collection on or off (default: off).
///
/// The flag only gates *collection at instrumentation sites*; metrics
/// that were already recorded stay readable, and owned metrics (e.g. the
/// serving layer's per-server counters) are unaffected.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether instrumentation sites should record. One relaxed atomic load;
/// hot loops may call this freely.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Latency bucket bounds in microseconds, shared by every duration
/// histogram in the workspace (50 µs … 100 ms, then +Inf).
pub const LATENCY_BOUNDS_US: &[u64] =
    &[50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000];

/// Power-of-two-ish count bounds for size-like histograms (batch sizes,
/// visited-node counts, …).
pub const COUNT_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 1_024, 4_096, 16_384];

/// Serializes unit tests that flip the process-global flag.
#[cfg(test)]
pub(crate) fn test_flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        let _guard = test_flag_lock();
        set_enabled(false);
        assert!(!enabled());
        set_enabled(true);
        assert!(enabled());
        set_enabled(false);
        assert!(!enabled());
    }
}
