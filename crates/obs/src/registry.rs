//! The process-global metric registry.
//!
//! Series are keyed by `(name, labels)` and created on first use;
//! handles are `&'static` (the backing metric is leaked once, which is
//! exactly the lifetime a process-global series wants). Lookup takes a
//! mutex, so instrumentation sites should fetch handles once per
//! phase/batch — never per element — or cache them in a `OnceLock`.
//! Recording through a handle is lock-free.

use std::sync::{Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Entry {
    name: &'static str,
    labels: &'static str,
    metric: Metric,
}

fn entries() -> &'static Mutex<Vec<Entry>> {
    static REGISTRY: OnceLock<Mutex<Vec<Entry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

fn lock() -> std::sync::MutexGuard<'static, Vec<Entry>> {
    // A poisoned registry only means a panic elsewhere mid-push; the
    // Vec itself is still structurally sound.
    entries().lock().unwrap_or_else(|e| e.into_inner())
}

/// Gets or creates the unlabeled counter `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    counter_labeled(name, "")
}

/// Gets or creates the counter `name{labels}`. `labels` must be a
/// literal Prometheus label body such as `route="search"` (empty for
/// none).
pub fn counter_labeled(name: &'static str, labels: &'static str) -> &'static Counter {
    let mut reg = lock();
    for e in reg.iter() {
        if e.name == name && e.labels == labels {
            match e.metric {
                Metric::Counter(c) => return c,
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.push(Entry { name, labels, metric: Metric::Counter(c) });
    c
}

/// Gets or creates the unlabeled gauge `name`.
pub fn gauge(name: &'static str) -> &'static Gauge {
    gauge_labeled(name, "")
}

/// Gets or creates the gauge `name{labels}`.
pub fn gauge_labeled(name: &'static str, labels: &'static str) -> &'static Gauge {
    let mut reg = lock();
    for e in reg.iter() {
        if e.name == name && e.labels == labels {
            match e.metric {
                Metric::Gauge(g) => return g,
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.push(Entry { name, labels, metric: Metric::Gauge(g) });
    g
}

/// Gets or creates the histogram `name{labels}` over `bounds`.
/// Re-registering an existing series with different bounds panics — two
/// call sites disagreeing on buckets is a bug, not a merge.
pub fn histogram(
    name: &'static str,
    labels: &'static str,
    bounds: &'static [u64],
) -> &'static Histogram {
    let mut reg = lock();
    for e in reg.iter() {
        if e.name == name && e.labels == labels {
            match e.metric {
                Metric::Histogram(h) => {
                    assert!(
                        std::ptr::eq(h.bounds(), bounds) || h.bounds() == bounds,
                        "histogram `{name}` re-registered with different bounds"
                    );
                    return h;
                }
                _ => panic!("metric `{name}` already registered with a different type"),
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new(bounds)));
    reg.push(Entry { name, labels, metric: Metric::Histogram(h) });
    h
}

/// Renders every registered series in the Prometheus text format,
/// sorted by `(name, labels)` so output is stable across runs.
pub fn render() -> String {
    let reg = lock();
    let mut order: Vec<usize> = (0..reg.len()).collect();
    order.sort_by_key(|&i| (reg[i].name, reg[i].labels));
    let mut out = String::new();
    for i in order {
        let e = &reg[i];
        match e.metric {
            Metric::Counter(c) => c.render(e.name, e.labels, &mut out),
            Metric::Gauge(g) => g.render(e.name, e.labels, &mut out),
            Metric::Histogram(h) => h.render(e.name, e.labels, &mut out),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let a = counter("reg_test_total");
        let b = counter("reg_test_total");
        assert!(std::ptr::eq(a, b));
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let a = counter_labeled("reg_labeled_total", "kind=\"a\"");
        let b = counter_labeled("reg_labeled_total", "kind=\"b\"");
        assert!(!std::ptr::eq(a, b));
        a.add(2);
        b.add(5);
        let text = render();
        assert!(text.contains("reg_labeled_total{kind=\"a\"} 2"), "{text}");
        assert!(text.contains("reg_labeled_total{kind=\"b\"} 5"), "{text}");
    }

    #[test]
    fn render_is_sorted_and_stable() {
        gauge("reg_zz_gauge").set(3.5);
        histogram("reg_aa_us", "", &[10, 100]).observe(7);
        let text = render();
        let aa = text.find("reg_aa_us_bucket").expect("histogram rendered");
        let zz = text.find("reg_zz_gauge").expect("gauge rendered");
        assert!(aa < zz, "series must sort by name:\n{text}");
        assert_eq!(render(), text);
    }
}
