//! Scoped-timer spans: RAII guards that record elapsed wall time into a
//! registry histogram when dropped.
//!
//! When observability is disabled a span is fully inert — constructing
//! one reads no clock, takes no lock, and dropping it does nothing.

use std::time::Instant;

use crate::metrics::Histogram;
use crate::{enabled, registry, LATENCY_BOUNDS_US};

/// A scoped timer. Hold it for the duration of the phase being measured;
/// on drop it records the elapsed microseconds into the histogram
/// `name{labels}` (bucketed by [`LATENCY_BOUNDS_US`]).
///
/// Obtain one with [`span_us`]; a span created while observability is
/// disabled stays inert even if the flag flips mid-flight.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span {
    state: Option<(&'static Histogram, Instant)>,
}

impl Span {
    /// Elapsed microseconds so far, without ending the span.
    /// Returns `None` for an inert span.
    pub fn elapsed_us(&self) -> Option<u64> {
        self.state.as_ref().map(|(_, start)| start.elapsed().as_micros() as u64)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.state.take() {
            hist.observe(start.elapsed().as_micros() as u64);
        }
    }
}

/// Starts a scoped timer over the histogram `name{labels}`, or an inert
/// guard when observability is disabled.
#[inline]
pub fn span_us(name: &'static str, labels: &'static str) -> Span {
    if enabled() {
        let hist = registry::histogram(name, labels, LATENCY_BOUNDS_US);
        Span { state: Some((hist, Instant::now())) }
    } else {
        Span { state: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_enabled;

    #[test]
    fn span_records_when_enabled_and_is_inert_when_disabled() {
        let _guard = crate::test_flag_lock();
        set_enabled(false);
        {
            let s = span_us("span_test_us", "");
            assert!(s.elapsed_us().is_none());
        }

        set_enabled(true);
        {
            let s = span_us("span_test_us", "");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_us().unwrap() >= 1_000);
        }
        set_enabled(false);

        let h = registry::histogram("span_test_us", "", LATENCY_BOUNDS_US);
        assert_eq!(h.count(), 1);
        assert!(h.sum() >= 1_000);
    }
}
