//! The metric primitives: relaxed-atomic counters, gauges, and
//! fixed-bucket histograms, each able to render itself in the
//! Prometheus text exposition format.
//!
//! Every observation is one or two `fetch_add`s with `Ordering::Relaxed`
//! — the exposition renders a consistent-enough snapshot without ever
//! stopping the threads doing the work.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A fresh zero counter.
    pub const fn new() -> Counter {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Renders `name{labels} value`.
    pub fn render(&self, name: &str, labels: &str, out: &mut String) {
        writeln!(out, "{name}{} {}", braced(labels), self.get()).expect("write to String");
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in one
/// atomic, so readers never see a torn value).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A fresh gauge reading 0.0.
    pub const fn new() -> Gauge {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Renders `name{labels} value`.
    pub fn render(&self, name: &str, labels: &str, out: &mut String) {
        writeln!(out, "{name}{} {}", braced(labels), self.get()).expect("write to String");
    }
}

/// A fixed-bucket histogram with cumulative (`le`) exposition.
///
/// Bounds are inclusive upper edges in ascending order; one extra
/// overflow bucket catches everything above the last bound. Values are
/// `u64` — microseconds for durations, plain counts for sizes.
pub struct Histogram {
    bounds: &'static [u64],
    /// One count per bound plus a final overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    total: AtomicU64,
}

impl Histogram {
    /// A histogram over the given ascending upper bounds.
    pub fn new(bounds: &'static [u64]) -> Histogram {
        assert!(bounds.windows(2).all(|w| w[0] < w[1]), "histogram bounds must ascend");
        Histogram {
            bounds,
            counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            total: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        let bucket = self.bounds.partition_point(|&b| b < value);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Mean observed value (0.0 before the first observation).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket counts:
    /// the upper bound of the first bucket whose cumulative count reaches
    /// `q × total` (the overflow bucket reports the last finite bound).
    /// Coarse by construction — exact quantiles need the raw samples,
    /// which the bench snapshot keeps; this is for at-a-glance reads.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut cumulative = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cumulative += c.load(Ordering::Relaxed);
            if cumulative >= rank.max(1) {
                return self.bounds.get(i).copied().unwrap_or(*self.bounds.last().unwrap_or(&0));
            }
        }
        *self.bounds.last().unwrap_or(&0)
    }

    /// Renders the `_bucket`/`_sum`/`_count` family, merging `le` into
    /// any caller-supplied label set.
    pub fn render(&self, name: &str, labels: &str, out: &mut String) {
        let mut cumulative = 0u64;
        let sep = if labels.is_empty() { "" } else { "," };
        for (i, bound) in self.bounds.iter().enumerate() {
            cumulative += self.counts[i].load(Ordering::Relaxed);
            writeln!(out, "{name}_bucket{{{labels}{sep}le=\"{bound}\"}} {cumulative}")
                .expect("write to String");
        }
        cumulative += self.counts[self.bounds.len()].load(Ordering::Relaxed);
        writeln!(out, "{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {cumulative}")
            .expect("write to String");
        let braces = braced(labels);
        writeln!(out, "{name}_sum{braces} {}", self.sum()).expect("write to String");
        writeln!(out, "{name}_count{braces} {}", self.count()).expect("write to String");
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_render() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut out = String::new();
        c.render("x_total", "", &mut out);
        assert_eq!(out, "x_total 5\n");

        let g = Gauge::new();
        g.set(1.25);
        assert_eq!(g.get(), 1.25);
        out.clear();
        g.render("g", "kind=\"loss\"", &mut out);
        assert_eq!(out, "g{kind=\"loss\"} 1.25\n");
    }

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::new(&[10, 100]);
        h.observe(5);
        h.observe(10); // le="10" is inclusive
        h.observe(50);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1065);
        let mut out = String::new();
        h.render("x", "", &mut out);
        assert!(out.contains("x_bucket{le=\"10\"} 2"), "{out}");
        assert!(out.contains("x_bucket{le=\"100\"} 3"), "{out}");
        assert!(out.contains("x_bucket{le=\"+Inf\"} 4"), "{out}");
        assert!(out.contains("x_count 4"), "{out}");
    }

    #[test]
    fn histogram_quantiles_estimate_from_buckets() {
        let h = Histogram::new(&[10, 100, 1000]);
        for _ in 0..90 {
            h.observe(5);
        }
        for _ in 0..10 {
            h.observe(500);
        }
        assert_eq!(h.quantile(0.5), 10);
        assert_eq!(h.quantile(0.99), 1000);
        assert!((h.mean() - (90.0 * 5.0 + 10.0 * 500.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::new(&[1, 2]);
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
    }
}
