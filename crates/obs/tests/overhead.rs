//! Pins the no-op contract: with observability disabled, the per-call
//! cost of a guarded instrumentation site is indistinguishable from a
//! bare branch — no clock read, no lock, no allocation.
//!
//! This is the micro-benchmark the ISSUE's acceptance criterion asks
//! for. It runs as a plain test with a *generous* absolute bound so it
//! stays green on loaded CI machines while still catching a regression
//! that, say, reads `Instant::now()` on the disabled path (~25-60 ns per
//! call — an order of magnitude over the bound we assert).

use std::time::Instant;

use unimatch_obs as obs;

const ITERS: u64 = 2_000_000;

/// Both tests flip the process-global flag; run them one at a time.
fn flag_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Runs `f` ITERS times and returns mean ns/op over the best of three
/// repeats (best-of smooths out scheduler noise).
fn bench(mut f: impl FnMut(u64)) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..ITERS {
            f(i);
        }
        let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
        best = best.min(ns);
    }
    best
}

#[test]
fn disabled_hot_loop_overhead_is_unmeasurable() {
    let _guard = flag_lock();
    obs::set_enabled(false);

    // Baseline: the loop body alone (a data dependency the optimizer
    // cannot delete).
    let mut acc = 0u64;
    let base = bench(|i| acc = acc.wrapping_add(i).rotate_left(7));

    // Instrumented: identical body plus a guarded site exactly as the
    // trainer/ANN hot loops write it.
    let mut acc2 = 0u64;
    let guarded = bench(|i| {
        acc2 = acc2.wrapping_add(i).rotate_left(7);
        if obs::enabled() {
            obs::registry::counter("overhead_test_total").inc();
            let _span = obs::span_us("overhead_test_us", "");
        }
    });

    // Keep the accumulators live.
    assert_ne!(acc.wrapping_add(acc2), 1);

    let delta = (guarded - base).max(0.0);
    assert!(
        delta < 15.0,
        "disabled instrumentation cost {delta:.2} ns/op (base {base:.2}, guarded {guarded:.2}); \
         expected a bare load+branch"
    );

    // And nothing was recorded while disabled.
    assert_eq!(obs::registry::counter("overhead_test_total").get(), 0);
}

#[test]
fn enabled_span_cost_is_bounded() {
    // Not part of the no-op contract, but pin that the *enabled* path is
    // still cheap enough for per-step (not per-element) use: two clock
    // reads + one registry lookup + one histogram observe.
    let _guard = flag_lock();
    obs::set_enabled(true);
    let per_op = bench(|_| {
        let _span = obs::span_us("overhead_enabled_us", "");
    });
    obs::set_enabled(false);
    assert!(per_op < 2_000.0, "enabled span cost {per_op:.0} ns/op — registry lookup regressed?");
    assert_eq!(
        obs::registry::histogram("overhead_enabled_us", "", obs::LATENCY_BOUNDS_US).count(),
        3 * ITERS
    );
}
