//! Property tests for the loss family: bounds, invariances, and
//! relationships that must hold for arbitrary logits and marginals.

use proptest::prelude::*;
use unimatch_losses::{bce_loss, nce_loss, ssm_loss, BiasConfig};
use unimatch_tensor::{Graph, Tensor};

fn logits_and_marginals() -> impl Strategy<Value = (usize, Vec<f32>, Vec<f32>, Vec<f32>)> {
    (2usize..6).prop_flat_map(|b| {
        (
            Just(b),
            proptest::collection::vec(-5.0f32..5.0, b * b),
            proptest::collection::vec(-10.0f32..-0.1, b),
            proptest::collection::vec(-10.0f32..-0.1, b),
        )
    })
}

proptest! {
    #[test]
    fn nce_losses_are_nonnegative((b, vals, pu, pi) in logits_and_marginals()) {
        // every configuration is a (weighted sum of) cross-entropies over
        // softmax distributions => >= 0
        let mut g = Graph::new();
        for cfg in [
            BiasConfig::infonce(),
            BiasConfig::simclr(),
            BiasConfig::row_bcnce(),
            BiasConfig::col_bcnce(),
            BiasConfig::bbcnce(),
        ] {
            let l = g.input(Tensor::from_vec([b, b], vals.clone()));
            let loss = nce_loss(&mut g, l, &pu, &pi, &cfg);
            prop_assert!(g.value(loss).item() >= -1e-5, "{cfg:?}: {}", g.value(loss).item());
        }
    }

    #[test]
    fn nce_invariant_to_global_logit_shift((b, vals, pu, pi) in logits_and_marginals(), shift in -20.0f32..20.0) {
        // softmax losses are shift invariant: adding a constant to every
        // logit must not change any configuration's loss
        let mut g = Graph::new();
        for cfg in [BiasConfig::infonce(), BiasConfig::bbcnce()] {
            let l1 = g.input(Tensor::from_vec([b, b], vals.clone()));
            let loss1 = nce_loss(&mut g, l1, &pu, &pi, &cfg);
            let shifted: Vec<f32> = vals.iter().map(|x| x + shift).collect();
            let l2 = g.input(Tensor::from_vec([b, b], shifted));
            let loss2 = nce_loss(&mut g, l2, &pu, &pi, &cfg);
            let (a, c) = (g.value(loss1).item(), g.value(loss2).item());
            prop_assert!((a - c).abs() < 1e-3 * (1.0 + a.abs()), "{cfg:?}: {a} vs {c}");
        }
    }

    #[test]
    fn uniform_marginals_make_bbcnce_equal_simclr((b, vals, _, _) in logits_and_marginals()) {
        // constant marginals shift logits uniformly => corrections no-op
        let mut g = Graph::new();
        let flat_pu = vec![-(b as f32).ln(); b];
        let flat_pi = vec![-(b as f32).ln(); b];
        let l1 = g.input(Tensor::from_vec([b, b], vals.clone()));
        let bbc = nce_loss(&mut g, l1, &flat_pu, &flat_pi, &BiasConfig::bbcnce());
        let l2 = g.input(Tensor::from_vec([b, b], vals.clone()));
        let sim = nce_loss(&mut g, l2, &flat_pu, &flat_pi, &BiasConfig::simclr());
        let (a, c) = (g.value(bbc).item(), g.value(sim).item());
        prop_assert!((a - c).abs() < 1e-4 * (1.0 + a.abs()), "{a} vs {c}");
    }

    #[test]
    fn nce_gradient_rows_sum_to_zero((b, vals, pu, pi) in logits_and_marginals()) {
        // the row term's gradient per row sums to 0 (softmax CE property);
        // for bbcNCE each row's gradient sums over both terms' contributions,
        // so check the row-only loss
        let mut g = Graph::new();
        let l = g.input(Tensor::from_vec([b, b], vals.clone()));
        let loss = nce_loss(&mut g, l, &pu, &pi, &BiasConfig::row_bcnce());
        g.backward(loss);
        let grad = g.grad(l).expect("grad");
        for r in 0..b {
            let row_sum: f32 = grad.row(r).iter().sum();
            prop_assert!(row_sum.abs() < 1e-5, "row {r} gradient sum {row_sum}");
        }
    }

    #[test]
    fn bce_bounds_and_symmetry(vals in proptest::collection::vec(-6.0f32..6.0, 2..12)) {
        let labels: Vec<f32> = (0..vals.len()).map(|i| (i % 2) as f32).collect();
        let mut g = Graph::new();
        let l = g.input(Tensor::vector(&vals));
        let loss = bce_loss(&mut g, l, &labels);
        let v = g.value(loss).item();
        prop_assert!(v >= 0.0, "negative BCE {v}");
        // symmetry: negating logits and flipping labels preserves the loss
        let neg: Vec<f32> = vals.iter().map(|x| -x).collect();
        let flipped: Vec<f32> = labels.iter().map(|y| 1.0 - y).collect();
        let l2 = g.input(Tensor::vector(&neg));
        let loss2 = bce_loss(&mut g, l2, &flipped);
        let v2 = g.value(loss2).item();
        prop_assert!((v - v2).abs() < 1e-3 * (1.0 + v.abs()), "{v} vs {v2}");
    }

    #[test]
    fn ssm_loss_decreases_in_positive_logit(
        base in -3.0f32..3.0,
        neg in proptest::collection::vec(-3.0f32..3.0, 4),
    ) {
        let q = vec![-2.0f32; 4];
        let run = |pos_val: f32| {
            let mut g = Graph::new();
            let p = g.input(Tensor::vector(&[pos_val]));
            let n = g.input(Tensor::from_vec([1, 4], neg.clone()));
            let loss = ssm_loss(&mut g, p, n, &[-2.0], &q);
            g.value(loss).item()
        };
        prop_assert!(run(base + 1.0) < run(base), "loss not decreasing in positive logit");
    }
}
