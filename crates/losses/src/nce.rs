//! The generalized bias-corrected in-batch NCE loss — Eq. 10 of the paper.
//!
//! One loss function with four binary switches `(α, β, δ_α, δ_β)` covers
//! the whole family of Tab. II:
//!
//! | setting                        | loss       | `φ_θ(u,i)` converges to |
//! |--------------------------------|------------|--------------------------|
//! | `α=1, β=0, δ_α=δ_β=0`          | InfoNCE    | PMI `log p̂(u,i)/(p̂(u)p̂(i))` |
//! | `α=β=1, δ_α=δ_β=0`             | SimCLR     | PMI                      |
//! | `α=1, δ_α=1, β=δ_β=0`          | row-bcNCE  | `log p̂(i\|u)`           |
//! | `β=1, δ_β=1, α=δ_α=0`          | col-bcNCE  | `log p̂(u\|i)`           |
//! | `α=β=δ_α=δ_β=1`                | **bbcNCE** | `log p̂(u,i)`            |
//!
//! The *row* term is a softmax over the in-batch items for each user (a
//! sampled approximation of Eq. 3); the *column* term is a softmax over the
//! in-batch users for each item (Eq. 4). The bias corrections subtract the
//! log empirical marginals from the logits before the softmax, cancelling
//! the bias introduced by in-batch sampling (negatives arrive
//! frequency-proportionally rather than uniformly).

use unimatch_tensor::{Graph, Tensor, Var};

/// The four binary switches of Eq. 10.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BiasConfig {
    /// Weight of the row (item-softmax) term.
    pub alpha: f32,
    /// Weight of the column (user-softmax) term.
    pub beta: f32,
    /// Apply the `log p̂(i)` correction in the row term.
    pub delta_alpha: bool,
    /// Apply the `log p̂(u)` correction in the column term.
    pub delta_beta: bool,
}

impl BiasConfig {
    /// InfoNCE: row term only, no correction.
    pub fn infonce() -> Self {
        BiasConfig { alpha: 1.0, beta: 0.0, delta_alpha: false, delta_beta: false }
    }

    /// SimCLR: both terms, no correction.
    pub fn simclr() -> Self {
        BiasConfig { alpha: 1.0, beta: 1.0, delta_alpha: false, delta_beta: false }
    }

    /// row-bcNCE: row term with item-bias correction → `log p̂(i|u)`.
    pub fn row_bcnce() -> Self {
        BiasConfig { alpha: 1.0, beta: 0.0, delta_alpha: true, delta_beta: false }
    }

    /// col-bcNCE: column term with user-bias correction → `log p̂(u|i)`.
    pub fn col_bcnce() -> Self {
        BiasConfig { alpha: 0.0, beta: 1.0, delta_alpha: false, delta_beta: true }
    }

    /// bbcNCE: both terms, both corrections → `log p̂(u,i)`. The loss of
    /// the UniMatch framework.
    pub fn bbcnce() -> Self {
        BiasConfig { alpha: 1.0, beta: 1.0, delta_alpha: true, delta_beta: true }
    }
}

/// Computes the Eq. 10 loss over an in-batch logit matrix.
///
/// * `logits` — `[B,B]` with `logits[r,c] = φ_θ(u_r, i_c)`; the positives
///   sit on the diagonal.
/// * `log_pu[r]` / `log_pi[c]` — empirical marginal log-probabilities of
///   the batch's users and items (Tab. IV columns).
///
/// Returns the scalar loss.
pub fn nce_loss(
    g: &mut Graph,
    logits: Var,
    log_pu: &[f32],
    log_pi: &[f32],
    cfg: &BiasConfig,
) -> Var {
    let dims = g.value(logits).shape().dims().to_vec();
    assert_eq!(dims.len(), 2, "nce_loss expects a [B,B] logit matrix");
    let b = dims[0];
    assert_eq!(dims[0], dims[1], "in-batch logits must be square");
    assert_eq!(log_pu.len(), b, "log_pu length mismatch");
    assert_eq!(log_pi.len(), b, "log_pi length mismatch");
    assert!(
        cfg.alpha > 0.0 || cfg.beta > 0.0,
        "at least one of alpha/beta must be positive"
    );

    let mut total: Option<Var> = None;

    if cfg.alpha > 0.0 {
        // h(u,i) = exp(φ − δ_α log p̂(i)): subtract the item bias per column.
        let corrected = if cfg.delta_alpha {
            let neg_pi = g.constant(Tensor::vector(&log_pi.iter().map(|x| -x).collect::<Vec<_>>()));
            g.add_row_broadcast(logits, neg_pi)
        } else {
            logits
        };
        let ls = g.log_softmax(corrected);
        let d = g.diag(ls);
        let m = g.mean_all(d);
        let row_loss = g.scale(m, -cfg.alpha);
        total = Some(row_loss);
    }

    if cfg.beta > 0.0 {
        // o(u,i) = exp(φ − δ_β log p̂(u)): softmax over users for each item,
        // i.e. over the columns — transpose so users become the last axis.
        let t = g.transpose(logits);
        let corrected = if cfg.delta_beta {
            let neg_pu = g.constant(Tensor::vector(&log_pu.iter().map(|x| -x).collect::<Vec<_>>()));
            g.add_row_broadcast(t, neg_pu)
        } else {
            t
        };
        let ls = g.log_softmax(corrected);
        let d = g.diag(ls);
        let m = g.mean_all(d);
        let col_loss = g.scale(m, -cfg.beta);
        total = Some(match total {
            Some(r) => g.add(r, col_loss),
            None => col_loss,
        });
    }

    total.expect("alpha or beta positive")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logits(g: &mut Graph, vals: Vec<f32>, b: usize) -> Var {
        g.input(Tensor::from_vec([b, b], vals))
    }

    #[test]
    fn infonce_matches_hand_computed() {
        let mut g = Graph::new();
        // 2x2 logits; row softmax CE of the diagonal
        let l = logits(&mut g, vec![2.0, 0.0, 1.0, 3.0], 2);
        let loss = nce_loss(&mut g, l, &[0.0, 0.0], &[0.0, 0.0], &BiasConfig::infonce());
        let row0 = -(2.0f32 - (2.0f32.exp() + 0.0f32.exp()).ln());
        let row1 = -(3.0f32 - (1.0f32.exp() + 3.0f32.exp()).ln());
        let expected = (row0 + row1) / 2.0;
        assert!((g.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn simclr_is_row_plus_col_uncorrected() {
        let mut g = Graph::new();
        let vals = vec![1.0, -0.5, 0.3, 2.0, 0.1, -1.0, 0.7, 0.0, 1.5];
        let l = logits(&mut g, vals.clone(), 3);
        let pu = [-1.0, -2.0, -0.5];
        let pi = [-0.3, -1.7, -2.5];
        let simclr = nce_loss(&mut g, l, &pu, &pi, &BiasConfig::simclr());
        let l2 = logits(&mut g, vals.clone(), 3);
        let row = nce_loss(&mut g, l2, &pu, &pi, &BiasConfig::infonce());
        let l3 = logits(&mut g, vals, 3);
        let col_only = BiasConfig { alpha: 0.0, beta: 1.0, delta_alpha: false, delta_beta: false };
        let col = nce_loss(&mut g, l3, &pu, &pi, &col_only);
        let total = g.value(row).item() + g.value(col).item();
        assert!((g.value(simclr).item() - total).abs() < 1e-5);
    }

    #[test]
    fn bbcnce_is_corrected_row_plus_col() {
        let mut g = Graph::new();
        let vals = vec![1.0, -0.5, 0.3, 2.0, 0.1, -1.0, 0.7, 0.0, 1.5];
        let pu = [-1.0, -2.0, -0.5];
        let pi = [-0.3, -1.7, -2.5];
        let l = logits(&mut g, vals.clone(), 3);
        let bbc = nce_loss(&mut g, l, &pu, &pi, &BiasConfig::bbcnce());
        let l2 = logits(&mut g, vals.clone(), 3);
        let row = nce_loss(&mut g, l2, &pu, &pi, &BiasConfig::row_bcnce());
        let l3 = logits(&mut g, vals, 3);
        let col = nce_loss(&mut g, l3, &pu, &pi, &BiasConfig::col_bcnce());
        let total = g.value(row).item() + g.value(col).item();
        assert!((g.value(bbc).item() - total).abs() < 1e-5);
    }

    #[test]
    fn bias_correction_changes_the_loss() {
        let mut g = Graph::new();
        let vals = vec![1.0, -0.5, 2.0, 0.1];
        let pi = [-0.2, -3.0]; // very unbalanced item marginals
        let l = logits(&mut g, vals.clone(), 2);
        let plain = nce_loss(&mut g, l, &[0.0; 2], &pi, &BiasConfig::infonce());
        let l2 = logits(&mut g, vals, 2);
        let corrected = nce_loss(&mut g, l2, &[0.0; 2], &pi, &BiasConfig::row_bcnce());
        assert!((g.value(plain).item() - g.value(corrected).item()).abs() > 1e-3);
    }

    #[test]
    fn uniform_marginals_make_correction_a_noop() {
        // When all items are equally popular, subtracting log p̂(i) shifts
        // every logit by the same constant — softmax is shift invariant.
        let mut g = Graph::new();
        let vals = vec![1.0, -0.5, 2.0, 0.1];
        let pi = [(0.5f32).ln(); 2];
        let l = logits(&mut g, vals.clone(), 2);
        let plain = nce_loss(&mut g, l, &[0.0; 2], &pi, &BiasConfig::infonce());
        let l2 = logits(&mut g, vals, 2);
        let corrected = nce_loss(&mut g, l2, &[0.0; 2], &pi, &BiasConfig::row_bcnce());
        assert!((g.value(plain).item() - g.value(corrected).item()).abs() < 1e-5);
    }

    #[test]
    fn loss_decreases_when_diagonal_dominates() {
        let mut g = Graph::new();
        let weak = logits(&mut g, vec![0.1, 0.0, 0.0, 0.1], 2);
        let strong = logits(&mut g, vec![5.0, 0.0, 0.0, 5.0], 2);
        let lw = nce_loss(&mut g, weak, &[0.0; 2], &[0.0; 2], &BiasConfig::bbcnce());
        let ls = nce_loss(&mut g, strong, &[0.0; 2], &[0.0; 2], &BiasConfig::bbcnce());
        assert!(g.value(ls).item() < g.value(lw).item());
    }

    #[test]
    fn gradients_flow() {
        let mut g = Graph::new();
        let l = logits(&mut g, vec![1.0, -0.5, 0.3, 2.0], 2);
        let loss = nce_loss(&mut g, l, &[-1.0, -1.5], &[-0.7, -2.0], &BiasConfig::bbcnce());
        g.backward(loss);
        let grad = g.grad(l).expect("logit grad");
        assert!(grad.data().iter().any(|&x| x.abs() > 1e-6));
        // gradient rows must sum to ~0 per softmax term pair: the diagonal
        // gets negative mass, off-diagonals positive
        assert!(grad.at(&[0, 0]) < 0.0);
        assert!(grad.at(&[0, 1]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        let mut g = Graph::new();
        let l = g.input(Tensor::from_vec([2, 3], vec![0.0; 6]));
        nce_loss(&mut g, l, &[0.0; 2], &[0.0; 3], &BiasConfig::bbcnce());
    }
}
