//! # unimatch-losses
//!
//! The loss functions of the UniMatch paper:
//!
//! * [`bce::bce_loss`] — binary cross-entropy (Eq. 1), the Bernoulli
//!   pathway, whose optimum depends on the negative-sampling distribution
//!   (Tab. I);
//! * [`nce::nce_loss`] — the generalized bias-corrected in-batch NCE
//!   (Eq. 10), covering InfoNCE, SimCLR, row-bcNCE, col-bcNCE and
//!   **bbcNCE** via [`nce::BiasConfig`] switches (Tab. II);
//! * [`ssm::ssm_loss`] — sampled softmax with logQ correction.
//!
//! All losses are pure graph programs over logits produced by any model,
//! keeping the framework model-agnostic.

#![warn(missing_docs)]

pub mod bce;
pub mod nce;
pub mod registry;
pub mod ssm;

pub use bce::bce_loss;
pub use nce::{nce_loss, BiasConfig};
pub use registry::MultinomialLoss;
pub use ssm::ssm_loss;
