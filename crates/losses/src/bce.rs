//! The binary cross-entropy loss (Eq. 1) — the Bernoulli pathway.
//!
//! Combined with the negative-sampling strategies of
//! `unimatch_data::negative`, the BCE loss realizes the optima of Tab. I:
//! under uniform sampling `φ_θ(u,i)` converges to `log p̂(u,i)` (up to a
//! constant), making one model usable for both IR and UT — the Bernoulli
//! counterpart of bbcNCE.

use unimatch_tensor::{Graph, Tensor, Var};

/// Clamp inside the logs for numerical safety (logits are bounded by
/// `1/τ`, so sigmoids never truly saturate, but stay defensive).
const EPS: f32 = 1e-7;

/// Computes the mean BCE loss over per-pair logits.
///
/// * `pair_logits` — `[R]` with `φ_θ(u_r, i_r)`.
/// * `labels` — `[R]`, 1.0 for positives and 0.0 for sampled negatives.
pub fn bce_loss(g: &mut Graph, pair_logits: Var, labels: &[f32]) -> Var {
    let n = g.value(pair_logits).shape().numel();
    assert_eq!(labels.len(), n, "labels length mismatch");
    assert!(
        labels.iter().all(|&y| y == 0.0 || y == 1.0),
        "labels must be binary"
    );
    let y = g.constant(Tensor::vector(labels));
    let s = g.sigmoid(pair_logits);
    // y·ln(σ+ε)
    let s_safe = g.add_scalar(s, EPS);
    let ln_s = g.ln(s_safe);
    let pos_term = g.mul(y, ln_s);
    // (1−y)·ln(1−σ+ε)
    let neg_s = g.scale(s, -1.0);
    let one_minus = g.add_scalar(neg_s, 1.0 + EPS);
    let ln_1ms = g.ln(one_minus);
    let inv_labels: Vec<f32> = labels.iter().map(|&v| 1.0 - v).collect();
    let y_inv = g.constant(Tensor::vector(&inv_labels));
    let neg_term = g.mul(y_inv, ln_1ms);
    let total = g.add(pos_term, neg_term);
    let m = g.mean_all(total);
    g.scale(m, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_hand_computed() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::vector(&[0.0, 2.0]));
        let loss = bce_loss(&mut g, logits, &[1.0, 0.0]);
        let s0 = 0.5f32;
        let s1 = 1.0 / (1.0 + (-2.0f32).exp());
        let expected = -((s0.ln() + (1.0 - s1).ln()) / 2.0);
        assert!((g.value(loss).item() - expected).abs() < 1e-4);
    }

    #[test]
    fn perfect_predictions_near_zero_loss() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::vector(&[8.0, -8.0, 8.0]));
        let loss = bce_loss(&mut g, logits, &[1.0, 0.0, 1.0]);
        assert!(g.value(loss).item() < 1e-3);
    }

    #[test]
    fn wrong_predictions_high_loss() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::vector(&[-8.0, 8.0]));
        let loss = bce_loss(&mut g, logits, &[1.0, 0.0]);
        assert!(g.value(loss).item() > 5.0);
    }

    #[test]
    fn gradient_signs() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::vector(&[0.0, 0.0]));
        let loss = bce_loss(&mut g, logits, &[1.0, 0.0]);
        g.backward(loss);
        let grad = g.grad(logits).expect("grad");
        // positive label wants the logit up (negative gradient), negative
        // label wants it down
        assert!(grad.data()[0] < 0.0);
        assert!(grad.data()[1] > 0.0);
        // d/dx BCE at x=0 is ∓0.5 / n
        assert!((grad.data()[0] + 0.25).abs() < 1e-4);
        assert!((grad.data()[1] - 0.25).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_labels_rejected() {
        let mut g = Graph::new();
        let logits = g.input(Tensor::vector(&[0.0]));
        bce_loss(&mut g, logits, &[0.5]);
    }
}
