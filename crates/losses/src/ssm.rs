//! Sampled softmax (SSM) with logQ correction — the classical solution to
//! the intractable partition function of Eq. 3 (\[17\] in the paper).
//!
//! Unlike the in-batch NCE family, SSM draws its negatives from the *whole
//! item vocabulary* (here: proportionally to the empirical unigram
//! distribution `q(i)`), and corrects each logit by `−log q(i)` so the
//! corrected softmax is an unbiased estimate of the full softmax — in
//! theory converging to `log p̂(i|u)` like row-bcNCE. The paper's "SSM
//! w. n." normalizes both representations, which our towers always do.

use unimatch_tensor::{Graph, Tensor, Var};

/// Computes the SSM loss.
///
/// * `pos_logits` — `[B]`, `φ_θ(u_b, i_b⁺)` for each row's positive.
/// * `neg_logits` — `[B, n]`, `φ_θ(u_b, i_j⁻)` against `n` shared sampled
///   negatives.
/// * `log_q_pos[b]` — `log q(i_b⁺)` of each positive under the sampling
///   distribution.
/// * `log_q_neg[j]` — `log q(i_j⁻)` of each shared negative.
pub fn ssm_loss(
    g: &mut Graph,
    pos_logits: Var,
    neg_logits: Var,
    log_q_pos: &[f32],
    log_q_neg: &[f32],
) -> Var {
    let b = g.value(pos_logits).shape().numel();
    let dims = g.value(neg_logits).shape().dims().to_vec();
    assert_eq!(dims.len(), 2, "neg_logits must be [B, n]");
    assert_eq!(dims[0], b, "batch mismatch between pos and neg logits");
    let n = dims[1];
    assert_eq!(log_q_pos.len(), b, "log_q_pos length mismatch");
    assert_eq!(log_q_neg.len(), n, "log_q_neg length mismatch");

    // corrected logits: subtract log q per candidate
    let pos2d = g.reshape(pos_logits, [b, 1]);
    let all = g.concat_last(pos2d, neg_logits); // [B, 1+n]
    let mut corr = Vec::with_capacity(b * (n + 1));
    for lq_pos in log_q_pos.iter().take(b) {
        corr.push(-lq_pos);
        corr.extend(log_q_neg.iter().map(|&x| -x));
    }
    let corr = g.constant(Tensor::from_vec([b, n + 1], corr));
    let corrected = g.add(all, corr);
    let ls = g.log_softmax(corrected);
    let picked = g.pick_per_row(ls, &vec![0; b]);
    let m = g.mean_all(picked);
    g.scale(m, -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_q_reduces_to_plain_softmax_ce() {
        let mut g = Graph::new();
        let pos = g.input(Tensor::vector(&[2.0]));
        let neg = g.input(Tensor::from_vec([1, 2], vec![1.0, 0.0]));
        let q = (1.0f32 / 3.0).ln();
        let loss = ssm_loss(&mut g, pos, neg, &[q], &[q, q]);
        let z = 2.0f32.exp() + 1.0f32.exp() + 1.0;
        let expected = -(2.0 - z.ln());
        assert!((g.value(loss).item() - expected).abs() < 1e-5);
    }

    #[test]
    fn logq_correction_penalizes_popular_negatives() {
        // A popular negative (high q) gets its logit reduced, so the same
        // raw logits give a *lower* loss than under uniform q: the model is
        // not blamed for scoring popular items highly.
        let mut g = Graph::new();
        let pos = g.input(Tensor::vector(&[1.0]));
        let neg = g.input(Tensor::from_vec([1, 1], vec![1.0]));
        let uni = (0.5f32).ln();
        let skew_pop = (0.9f32).ln();
        let l_uni = ssm_loss(&mut g, pos, neg, &[uni], &[uni]);
        let pos2 = g.input(Tensor::vector(&[1.0]));
        let neg2 = g.input(Tensor::from_vec([1, 1], vec![1.0]));
        let l_skew = ssm_loss(&mut g, pos2, neg2, &[(0.1f32).ln()], &[skew_pop]);
        assert!(g.value(l_skew).item() < g.value(l_uni).item());
    }

    #[test]
    fn gradients_push_positive_up() {
        let mut g = Graph::new();
        let pos = g.input(Tensor::vector(&[0.0, 0.0]));
        let neg = g.input(Tensor::from_vec([2, 3], vec![0.0; 6]));
        let q = (0.25f32).ln();
        let loss = ssm_loss(&mut g, pos, neg, &[q, q], &[q, q, q]);
        g.backward(loss);
        assert!(g.grad(pos).expect("pos grad").data().iter().all(|&x| x < 0.0));
        assert!(g.grad(neg).expect("neg grad").data().iter().all(|&x| x > 0.0));
    }

    #[test]
    #[should_panic(expected = "batch mismatch")]
    fn shape_mismatch_rejected() {
        let mut g = Graph::new();
        let pos = g.input(Tensor::vector(&[0.0, 0.0]));
        let neg = g.input(Tensor::from_vec([3, 1], vec![0.0; 3]));
        ssm_loss(&mut g, pos, neg, &[0.0, 0.0], &[0.0]);
    }
}
