//! The named loss registry used by the experiment tables.

use crate::nce::BiasConfig;

/// Every loss evaluated in the paper's Tab. VIII–XII, as a closed set so
/// experiment binaries can iterate them.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MultinomialLoss {
    /// Sampled softmax over the whole vocabulary with logQ correction
    /// ("SSM w. n.": towers are L2-normalized, as ours always are).
    Ssm {
        /// Number of sampled negatives shared per batch.
        negatives: usize,
    },
    /// A member of the Eq. 10 in-batch family.
    Nce(BiasConfig),
}

impl MultinomialLoss {
    /// The six losses of Tab. IX/X, in row order.
    pub fn paper_losses(ssm_negatives: usize) -> Vec<(&'static str, MultinomialLoss)> {
        vec![
            ("SSM w. n.", MultinomialLoss::Ssm { negatives: ssm_negatives }),
            ("InfoNCE", MultinomialLoss::Nce(BiasConfig::infonce())),
            ("SimCLR", MultinomialLoss::Nce(BiasConfig::simclr())),
            ("row-bcNCE", MultinomialLoss::Nce(BiasConfig::row_bcnce())),
            ("col-bcNCE", MultinomialLoss::Nce(BiasConfig::col_bcnce())),
            ("bbcNCE", MultinomialLoss::Nce(BiasConfig::bbcnce())),
        ]
    }

    /// Display label matching the paper tables.
    pub fn label(&self) -> &'static str {
        match self {
            MultinomialLoss::Ssm { .. } => "SSM w. n.",
            MultinomialLoss::Nce(cfg) => {
                let c = (
                    cfg.alpha > 0.0,
                    cfg.beta > 0.0,
                    cfg.delta_alpha,
                    cfg.delta_beta,
                );
                match c {
                    (true, false, false, false) => "InfoNCE",
                    (true, true, false, false) => "SimCLR",
                    (true, false, true, false) => "row-bcNCE",
                    (false, true, false, true) => "col-bcNCE",
                    (true, true, true, true) => "bbcNCE",
                    _ => "NCE(custom)",
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_losses_with_unique_labels() {
        let losses = MultinomialLoss::paper_losses(64);
        assert_eq!(losses.len(), 6);
        let labels: std::collections::HashSet<&str> = losses.iter().map(|(l, _)| *l).collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn labels_round_trip() {
        for (name, loss) in MultinomialLoss::paper_losses(8) {
            assert_eq!(loss.label(), name);
        }
    }
}
