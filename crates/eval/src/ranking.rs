//! Scoring and case evaluation over raw embedding buffers.
//!
//! The eval crate is deliberately model-free: callers supply embeddings as
//! `&[f32]` matrices (row-major, unit-normalized by the towers), and this
//! module does the dot-product ranking. That keeps the protocol reusable
//! for any scorer, including the ANN indexes.

use crate::metrics::{case_metrics, rank_relevance, CaseMetrics, MetricAccumulator};

/// A row-major embedding matrix view.
#[derive(Clone, Copy, Debug)]
pub struct EmbeddingMatrix<'a> {
    data: &'a [f32],
    dim: usize,
}

impl<'a> EmbeddingMatrix<'a> {
    /// Wraps a buffer of `rows * dim` floats.
    pub fn new(data: &'a [f32], dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        EmbeddingMatrix { data, dim }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.data.len() / self.dim
    }

    /// The embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `r`.
    pub fn row(&self, r: usize) -> &'a [f32] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }

    /// The whole underlying buffer, row-major — the shape the retrieval
    /// kernel consumes.
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }
}

/// Dot-product scores of one query against selected candidate rows,
/// through the workspace's one scoring kernel (`unimatch_ann::dot`).
pub fn score_candidates(query: &[f32], matrix: EmbeddingMatrix<'_>, candidates: &[u32]) -> Vec<f32> {
    assert_eq!(query.len(), matrix.dim(), "query dim mismatch");
    candidates.iter().map(|&c| unimatch_ann::dot(query, matrix.row(c as usize))).collect()
}

/// Evaluates a batch of single-positive cases: each case is a query
/// embedding plus candidate indices into `matrix`, positive first.
/// Returns mean metrics.
pub fn evaluate_single_positive_cases(
    queries: EmbeddingMatrix<'_>,
    matrix: EmbeddingMatrix<'_>,
    candidate_lists: &[Vec<u32>],
    top_n: usize,
) -> CaseMetrics {
    assert_eq!(queries.rows(), candidate_lists.len(), "query/case count mismatch");
    let mut acc = MetricAccumulator::new();
    for (q, cands) in candidate_lists.iter().enumerate() {
        let scores = score_candidates(queries.row(q), matrix, cands);
        let relevance = rank_relevance(&scores, &[0]);
        acc.add(case_metrics(&relevance, 1, top_n));
    }
    acc.mean()
}

/// The indices (into the candidate list) of the top-N scored candidates,
/// for popularity audits (Tab. XI).
pub fn top_n_candidates(scores: &[f32], top_n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    order.truncate(top_n);
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_are_dot_products() {
        let items = [1.0, 0.0, 0.0, 1.0, 0.5, 0.5];
        let m = EmbeddingMatrix::new(&items, 2);
        assert_eq!(m.rows(), 3);
        let scores = score_candidates(&[2.0, 4.0], m, &[0, 1, 2]);
        assert_eq!(scores, vec![2.0, 4.0, 3.0]);
    }

    #[test]
    fn perfect_ranking_scores_one() {
        // query aligned with candidate 0 (the positive)
        let queries = [1.0, 0.0];
        let items = [1.0, 0.0, -1.0, 0.0, 0.0, -1.0];
        let qm = EmbeddingMatrix::new(&queries, 2);
        let im = EmbeddingMatrix::new(&items, 2);
        let m = evaluate_single_positive_cases(qm, im, &[vec![0, 1, 2]], 2);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
    }

    #[test]
    fn worst_ranking_scores_zero() {
        let queries = [1.0, 0.0];
        let items = [-1.0, 0.0, 1.0, 0.0, 0.9, 0.0];
        let qm = EmbeddingMatrix::new(&queries, 2);
        let im = EmbeddingMatrix::new(&items, 2);
        let m = evaluate_single_positive_cases(qm, im, &[vec![0, 1, 2]], 2);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.hitrate, 0.0);
    }

    #[test]
    fn top_n_selection() {
        let scores = [0.3, 0.9, 0.1, 0.7];
        assert_eq!(top_n_candidates(&scores, 2), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn ragged_matrix_rejected() {
        EmbeddingMatrix::new(&[1.0, 2.0, 3.0], 2);
    }
}
