//! # unimatch-eval
//!
//! The evaluation protocol of the UniMatch paper: IR / UT test-case
//! construction with sampled negatives (Sec. IV-A1, Tab. VI), the
//! Recall@N / NDCG@N / HitRate@N metrics of Eqs. 14–15, the retrieved-
//! entity popularity audit of Tab. XI, and a plain-text table renderer for
//! the experiment binaries.
//!
//! The crate is model-free: rankers receive embeddings as raw row-major
//! buffers, so the same protocol evaluates the trained towers, the ANN
//! indexes, or any other scorer.
//!
//! Extensions beyond the paper: [`multi`] implements the full set-based
//! next-n-day formulation of Eq. 14 (multiple positives per case),
//! [`diversity`] adds catalog-coverage and exposure-Gini audits, and
//! [`bootstrap`] provides confidence intervals / paired superiority tests
//! for deciding whether a table win is real at small test-set sizes.

#![warn(missing_docs)]

pub mod bootstrap;
pub mod diversity;
pub mod metrics;
pub mod multi;
pub mod pool;
pub mod popularity;
pub mod protocol;
pub mod ranking;
pub mod report;

pub use bootstrap::{bootstrap_ci, paired_superiority, Interval};
pub use diversity::{catalog_coverage, exposure_gini, mean_list_distinctness};
pub use metrics::{case_metrics, rank_relevance, CaseMetrics, MetricAccumulator};
pub use multi::{build_multi_ir_cases, evaluate_multi_ir, MultiIrCase};
pub use pool::UserPool;
pub use popularity::{popularity_stats, retrieved_popularity, PopularityStats};
pub use protocol::{build_ir_cases, build_ut_cases, item_pool, IrCase, ProtocolConfig, UtCase};
pub use ranking::{evaluate_single_positive_cases, score_candidates, top_n_candidates, EmbeddingMatrix};
pub use report::{pct, Table};
