//! Multi-positive next-n-day evaluation.
//!
//! The paper's headline protocol samples **one** positive per test case,
//! but its metric definitions (Eqs. 14–15) are set-based: `I_u` is *all*
//! items user `u` buys in the next n days, and Recall@N divides by
//! `min(|I_u|, N)`. This module implements that full formulation — one IR
//! case per test user whose ground truth is every distinct test-month
//! purchase, ranked against sampled negatives.

use crate::metrics::{case_metrics, rank_relevance, CaseMetrics, MetricAccumulator};
use crate::protocol::{item_pool, ProtocolConfig};
use crate::ranking::{score_candidates, EmbeddingMatrix};
use rand::Rng;
use unimatch_data::TemporalSplit;

/// One multi-positive IR case: the earliest test-month pseudo-user of a
/// user, all their distinct test-month purchases as ground truth, plus
/// sampled negatives.
#[derive(Clone, Debug)]
pub struct MultiIrCase {
    /// User id.
    pub user: u32,
    /// Pseudo-user history (as of their first test-month purchase).
    pub history: Vec<u32>,
    /// Candidates: the first `num_positives` entries are the ground-truth
    /// set, the rest sampled negatives.
    pub candidates: Vec<u32>,
    /// Size of the ground-truth set `|I_u|`.
    pub num_positives: usize,
}

/// Builds multi-positive IR cases from a split.
pub fn build_multi_ir_cases(
    split: &TemporalSplit,
    cfg: &ProtocolConfig,
    rng: &mut impl Rng,
) -> Vec<MultiIrCase> {
    let pool = item_pool(split);
    assert!(
        pool.len() > cfg.negatives,
        "item pool ({}) must exceed negative count ({})",
        pool.len(),
        cfg.negatives
    );
    let pool_set: std::collections::HashSet<u32> = pool.iter().copied().collect();
    // group test samples per user, earliest first (split.test is built from
    // day-sorted samples, so first occurrence per user is earliest)
    let mut per_user: std::collections::HashMap<u32, (Vec<u32>, Vec<u32>)> =
        std::collections::HashMap::new();
    for s in &split.test {
        let entry = per_user
            .entry(s.user)
            .or_insert_with(|| (s.history.clone(), Vec::new()));
        if !entry.1.contains(&s.target) {
            entry.1.push(s.target);
        }
    }
    let mut users: Vec<u32> = per_user.keys().copied().collect();
    users.sort_unstable();
    let mut cases = Vec::with_capacity(users.len());
    for user in users {
        let (history, positives) = per_user.remove(&user).expect("grouped above");
        let mut candidates = positives.clone();
        let num_positives = candidates.len();
        // the pool may not hold num_positives + negatives distinct items
        // (positives can even lie outside the pool when the test month
        // introduces items never seen in training targets): cap negatives
        // at the pool items not already used as positives
        let pool_positives = candidates.iter().filter(|i| pool_set.contains(i)).count();
        let negatives = cfg.negatives.min(pool.len() - pool_positives);
        while candidates.len() < num_positives + negatives {
            let neg = pool[rng.gen_range(0..pool.len())];
            if !candidates.contains(&neg) {
                candidates.push(neg);
            }
        }
        cases.push(MultiIrCase { user, history, candidates, num_positives });
    }
    cases
}

/// Evaluates multi-positive cases: queries are row-aligned with `cases`.
pub fn evaluate_multi_ir(
    queries: EmbeddingMatrix<'_>,
    items: EmbeddingMatrix<'_>,
    cases: &[MultiIrCase],
    top_n: usize,
) -> CaseMetrics {
    assert_eq!(queries.rows(), cases.len(), "query/case count mismatch");
    let mut acc = MetricAccumulator::new();
    for (q, case) in cases.iter().enumerate() {
        let scores = score_candidates(queries.row(q), items, &case.candidates);
        let positive_ix: Vec<usize> = (0..case.num_positives).collect();
        let relevance = rank_relevance(&scores, &positive_ix);
        acc.add(case_metrics(&relevance, case.num_positives, top_n));
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unimatch_data::{Sample, TemporalSplit};

    fn split() -> TemporalSplit {
        let mut train = Vec::new();
        for u in 0..10u32 {
            for k in 0..4u32 {
                train.push(Sample {
                    user: u,
                    history: vec![k],
                    target: (u + k) % 30,
                    day: k * 20,
                });
            }
        }
        // user 0 buys three distinct items in the test month
        let test = vec![
            Sample { user: 0, history: vec![1, 2], target: 5, day: 95 },
            Sample { user: 0, history: vec![1, 2, 5], target: 7, day: 99 },
            Sample { user: 0, history: vec![1, 2, 5, 7], target: 5, day: 100 }, // repeat
            Sample { user: 1, history: vec![3], target: 9, day: 96 },
        ];
        TemporalSplit { train, val: vec![], test, val_month: 2, test_month: 3 }
    }

    #[test]
    fn ground_truth_is_distinct_test_purchases() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = ProtocolConfig { top_n: 5, negatives: 10 };
        let cases = build_multi_ir_cases(&split(), &cfg, &mut rng);
        assert_eq!(cases.len(), 2);
        let u0 = cases.iter().find(|c| c.user == 0).expect("user 0");
        assert_eq!(u0.num_positives, 2); // items 5 and 7, repeat deduped
        assert_eq!(&u0.candidates[..2], &[5, 7]);
        assert_eq!(u0.candidates.len(), 12);
        // history is the earliest pseudo-user
        assert_eq!(u0.history, vec![1, 2]);
    }

    #[test]
    fn perfect_scorer_achieves_recall_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = ProtocolConfig { top_n: 5, negatives: 10 };
        let cases = build_multi_ir_cases(&split(), &cfg, &mut rng);
        // 1-d embeddings: item id scaled; query aligned so positives score
        // highest: give positives embedding 1.0, negatives -1.0 per case —
        // easiest done by evaluating per single case with crafted matrices
        for case in &cases {
            let items_max = 40usize;
            let mut item_emb = vec![-1.0f32; items_max];
            for &p in &case.candidates[..case.num_positives] {
                item_emb[p as usize] = 1.0;
            }
            let query = [1.0f32];
            let qm = EmbeddingMatrix::new(&query, 1);
            let im = EmbeddingMatrix::new(&item_emb, 1);
            let m = evaluate_multi_ir(qm, im, std::slice::from_ref(case), cfg.top_n);
            assert_eq!(m.recall, 1.0);
            assert_eq!(m.ndcg, 1.0);
        }
    }

    #[test]
    fn recall_denominator_caps_at_top_n() {
        // 7 positives, top 5: perfect ranking scores recall 1.0 by Eq. 14
        let relevance = vec![true; 7];
        let m = case_metrics(&relevance, 7, 5);
        assert_eq!(m.recall, 1.0);
    }
}
