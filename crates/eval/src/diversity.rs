//! Aggregate-recommendation diversity metrics — an extension beyond the
//! paper's popularity audit (Tab. XI). Merchants running campaigns care
//! whether the recommender concentrates all traffic on a handful of SKUs;
//! catalog coverage and the Gini coefficient of exposure quantify that.

use std::collections::HashMap;

/// Fraction of the catalog that appears at least once across all
/// recommendation lists.
pub fn catalog_coverage(retrieved: &[u32], catalog_size: usize) -> f64 {
    assert!(catalog_size > 0, "empty catalog");
    let distinct: std::collections::HashSet<u32> = retrieved.iter().copied().collect();
    distinct.len() as f64 / catalog_size as f64
}

/// Gini coefficient of exposure over the *retrieved* entities: 0 = every
/// retrieved entity shown equally often, → 1 = exposure concentrated on
/// one entity.
pub fn exposure_gini(retrieved: &[u32]) -> f64 {
    if retrieved.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<u32, u64> = HashMap::new();
    for &id in retrieved {
        *counts.entry(id).or_insert(0) += 1;
    }
    let mut values: Vec<u64> = counts.into_values().collect();
    values.sort_unstable();
    let n = values.len() as f64;
    let total: f64 = values.iter().map(|&v| v as f64).sum();
    if total == 0.0 || n < 2.0 {
        return 0.0;
    }
    // Gini = (2 Σ_i i·x_i) / (n Σ x) − (n+1)/n with x ascending, i from 1
    let weighted: f64 = values
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v as f64)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

/// Mean intra-list distinctness: 1 − (duplicate fraction) within each
/// recommendation list, averaged (lists are `k` consecutive entries).
pub fn mean_list_distinctness(retrieved: &[u32], k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert_eq!(retrieved.len() % k, 0, "retrieved length must be a multiple of k");
    if retrieved.is_empty() {
        return 1.0;
    }
    let lists = retrieved.len() / k;
    let mut sum = 0.0;
    for l in 0..lists {
        let slice = &retrieved[l * k..(l + 1) * k];
        let distinct: std::collections::HashSet<u32> = slice.iter().copied().collect();
        sum += distinct.len() as f64 / k as f64;
    }
    sum / lists as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_distinct() {
        assert_eq!(catalog_coverage(&[1, 1, 2, 3], 10), 0.3);
        assert_eq!(catalog_coverage(&[], 10), 0.0);
    }

    #[test]
    fn gini_uniform_is_zero() {
        assert!(exposure_gini(&[1, 2, 3, 4]).abs() < 1e-12);
        assert!(exposure_gini(&[5, 5, 6, 6, 7, 7]).abs() < 1e-12);
    }

    #[test]
    fn gini_concentration_is_high() {
        // one item gets 97 exposures, three get 1 each
        let mut v = vec![0u32; 97];
        v.extend([1, 2, 3]);
        let g = exposure_gini(&v);
        assert!(g > 0.7, "gini {g}");
    }

    #[test]
    fn gini_bounds() {
        for case in [vec![1u32], vec![1, 1, 2], vec![1, 2, 2, 2, 2, 2]] {
            let g = exposure_gini(&case);
            assert!((0.0..1.0).contains(&g), "{case:?} -> {g}");
        }
    }

    #[test]
    fn list_distinctness() {
        assert_eq!(mean_list_distinctness(&[1, 2, 3, 4], 2), 1.0);
        assert_eq!(mean_list_distinctness(&[1, 1, 2, 3], 2), 0.75);
        assert_eq!(mean_list_distinctness(&[], 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "multiple of k")]
    fn ragged_lists_rejected() {
        mean_list_distinctness(&[1, 2, 3], 2);
    }
}
