//! Ranking metrics: Recall@N (Eq. 14), NDCG@N (Eq. 15), HitRate@N, MRR.
//!
//! All metrics operate on a ranked list of candidates with binary
//! relevance. In the paper's protocol each case has exactly one positive,
//! making Recall@N equal HitRate@N, but the implementations handle the
//! general multi-positive case of Eqs. 14–15.

/// Metrics for a single evaluation case.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CaseMetrics {
    /// Recall@N per Eq. 14: hits / min(#positives, N).
    pub recall: f64,
    /// NDCG@N per Eq. 15.
    pub ndcg: f64,
    /// 1.0 iff any positive ranks within the top N.
    pub hitrate: f64,
    /// Reciprocal rank of the first positive (0 when absent entirely).
    pub mrr: f64,
}

/// Computes metrics from a relevance-ordered list: `relevant[k]` tells
/// whether the k-th *ranked* candidate is a ground-truth positive.
/// `num_positives` is the ground-truth set size `|I_u|`.
pub fn case_metrics(relevant: &[bool], num_positives: usize, top_n: usize) -> CaseMetrics {
    assert!(top_n >= 1, "top_n must be >= 1");
    assert!(num_positives >= 1, "a case needs at least one positive");
    let hits = relevant.iter().take(top_n).filter(|&&r| r).count();
    let recall = hits as f64 / num_positives.min(top_n) as f64;
    let hitrate = if hits > 0 { 1.0 } else { 0.0 };

    let mut dcg = 0.0;
    for (k, &r) in relevant.iter().take(top_n).enumerate() {
        if r {
            dcg += 1.0 / ((k + 2) as f64).log2();
        }
    }
    let ideal: f64 = (0..num_positives.min(top_n))
        .map(|k| 1.0 / ((k + 2) as f64).log2())
        .sum();
    let ndcg = dcg / ideal;

    let mrr = relevant
        .iter()
        .position(|&r| r)
        .map_or(0.0, |k| 1.0 / (k + 1) as f64);

    CaseMetrics { recall, ndcg, hitrate, mrr }
}

/// Ranks candidates by score (descending, stable) and returns the
/// relevance ordering for [`case_metrics`]. `positives` are candidate
/// indices (not ids).
pub fn rank_relevance(scores: &[f32], positives: &[usize]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let pos: std::collections::HashSet<usize> = positives.iter().copied().collect();
    order.into_iter().map(|ix| pos.contains(&ix)).collect()
}

/// Streaming mean over many cases.
#[derive(Clone, Copy, Debug, Default)]
pub struct MetricAccumulator {
    sum: CaseMetrics,
    count: usize,
}

impl MetricAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one case.
    pub fn add(&mut self, m: CaseMetrics) {
        self.sum.recall += m.recall;
        self.sum.ndcg += m.ndcg;
        self.sum.hitrate += m.hitrate;
        self.sum.mrr += m.mrr;
        self.count += 1;
    }

    /// Number of cases accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean metrics (zeros when empty).
    pub fn mean(&self) -> CaseMetrics {
        if self.count == 0 {
            return CaseMetrics::default();
        }
        let n = self.count as f64;
        CaseMetrics {
            recall: self.sum.recall / n,
            ndcg: self.sum.ndcg / n,
            hitrate: self.sum.hitrate / n,
            mrr: self.sum.mrr / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_positive_at_top() {
        let rel = [true, false, false, false];
        let m = case_metrics(&rel, 1, 3);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
        assert_eq!(m.hitrate, 1.0);
        assert_eq!(m.mrr, 1.0);
    }

    #[test]
    fn single_positive_at_rank_two() {
        let rel = [false, true, false, false];
        let m = case_metrics(&rel, 1, 3);
        assert_eq!(m.recall, 1.0);
        assert!((m.ndcg - 1.0 / 3f64.log2()).abs() < 1e-12);
        assert_eq!(m.mrr, 0.5);
    }

    #[test]
    fn positive_outside_top_n() {
        let rel = [false, false, false, true];
        let m = case_metrics(&rel, 1, 3);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.ndcg, 0.0);
        assert_eq!(m.hitrate, 0.0);
        assert_eq!(m.mrr, 0.25); // MRR counts the full list
    }

    #[test]
    fn multi_positive_recall_denominator() {
        // 3 positives, top 2: best possible recall is 2/2 per Eq. 14's min
        let rel = [true, true, false, true];
        let m = case_metrics(&rel, 3, 2);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.ndcg, 1.0);
    }

    #[test]
    fn ndcg_between_zero_and_one() {
        let rel = [false, true, true, false, true];
        let m = case_metrics(&rel, 3, 5);
        assert!(m.ndcg > 0.0 && m.ndcg < 1.0);
    }

    #[test]
    fn rank_relevance_orders_by_score() {
        let scores = [0.1, 0.9, 0.5];
        let rel = rank_relevance(&scores, &[2]);
        // order: idx1 (0.9), idx2 (0.5), idx0 (0.1)
        assert_eq!(rel, vec![false, true, false]);
    }

    #[test]
    fn accumulator_means() {
        let mut acc = MetricAccumulator::new();
        acc.add(case_metrics(&[true, false], 1, 1));
        acc.add(case_metrics(&[false, true], 1, 1));
        let m = acc.mean();
        assert_eq!(acc.count(), 2);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.hitrate, 0.5);
        assert_eq!(m.mrr, 0.75);
    }
}
