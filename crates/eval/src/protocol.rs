//! IR / UT test-case construction (Sec. IV-A1, Tab. VI).
//!
//! * **IR**: one case per distinct test user — the pseudo-user's history,
//!   its positive target, and `n` negatives sampled from the item pool.
//! * **UT**: one case per distinct test item — the positive pseudo-user
//!   plus `n` negative pseudo-users sampled from the user pool. The pool
//!   holds one (latest) pseudo-user per distinct user across train and
//!   test, mirroring the paper's pools being much larger than the test
//!   sets.

use crate::pool::UserPool;
use rand::Rng;
use unimatch_data::{Sample, TemporalSplit};

/// Protocol parameters (top-N cutoff and negative count per Tab. VI).
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct ProtocolConfig {
    /// Ranking cutoff N for Recall@N / NDCG@N.
    pub top_n: usize,
    /// Sampled negatives per case (99, or 49 for w_comp).
    pub negatives: usize,
}

impl ProtocolConfig {
    /// Adapts the protocol to a (possibly heavily down-scaled) candidate
    /// pool: negatives are capped at `pool - 2` and the cutoff at the
    /// candidate count. Chance level changes accordingly, so compare
    /// models only under identical effective protocols.
    pub fn clamped(&self, pool: usize) -> ProtocolConfig {
        let negatives = self.negatives.min(pool.saturating_sub(2)).max(1);
        ProtocolConfig { top_n: self.top_n.min(negatives + 1), negatives }
    }
}

/// One item-recommendation case.
#[derive(Clone, Debug)]
pub struct IrCase {
    /// The underlying user id.
    pub user: u32,
    /// The pseudo-user history.
    pub history: Vec<u32>,
    /// Candidate item ids; index 0 is the positive.
    pub candidates: Vec<u32>,
}

/// One user-targeting case.
#[derive(Clone, Debug)]
pub struct UtCase {
    /// The target item.
    pub item: u32,
    /// Candidate pseudo-users as [`UserPool`] indices; index 0 is the
    /// positive.
    pub candidates: Vec<usize>,
}

/// Builds IR cases: dedupes test samples to one per user (the earliest in
/// the test month — the next purchase after the train boundary), then
/// samples negatives from the item pool.
pub fn build_ir_cases(
    split: &TemporalSplit,
    cfg: &ProtocolConfig,
    rng: &mut impl Rng,
) -> Vec<IrCase> {
    let item_pool = item_pool(split);
    assert!(
        item_pool.len() > cfg.negatives,
        "item pool ({}) must exceed negative count ({})",
        item_pool.len(),
        cfg.negatives
    );
    let mut seen = std::collections::HashSet::new();
    let mut cases = Vec::new();
    for s in &split.test {
        if !seen.insert(s.user) {
            continue;
        }
        let mut candidates = Vec::with_capacity(cfg.negatives + 1);
        candidates.push(s.target);
        while candidates.len() < cfg.negatives + 1 {
            let neg = item_pool[rng.gen_range(0..item_pool.len())];
            if neg != s.target && !candidates.contains(&neg) {
                candidates.push(neg);
            }
        }
        cases.push(IrCase { user: s.user, history: s.history.clone(), candidates });
    }
    cases
}

/// Builds UT cases: dedupes test samples to one per item, then samples
/// negative pseudo-users from the pool.
pub fn build_ut_cases(
    split: &TemporalSplit,
    pool: &UserPool,
    cfg: &ProtocolConfig,
    rng: &mut impl Rng,
) -> Vec<UtCase> {
    assert!(
        pool.len() > cfg.negatives,
        "user pool ({}) must exceed negative count ({})",
        pool.len(),
        cfg.negatives
    );
    let mut seen = std::collections::HashSet::new();
    let mut cases = Vec::new();
    for s in &split.test {
        if !seen.insert(s.target) {
            continue;
        }
        let Some(pos_ix) = pool.index_of(s.user) else {
            continue; // positive user unseen in the pool (filtered out)
        };
        let mut candidates = Vec::with_capacity(cfg.negatives + 1);
        candidates.push(pos_ix);
        let mut guard = 0;
        while candidates.len() < cfg.negatives + 1 {
            let ix = rng.gen_range(0..pool.len());
            if ix != pos_ix && !candidates.contains(&ix) {
                candidates.push(ix);
            }
            guard += 1;
            if guard > cfg.negatives * 100 {
                break; // degenerate tiny pool; keep what we have
            }
        }
        if candidates.len() == cfg.negatives + 1 {
            cases.push(UtCase { item: s.target, candidates });
        }
    }
    cases
}

/// Distinct target items over train + test — the IR negative pool.
pub fn item_pool(split: &TemporalSplit) -> Vec<u32> {
    let mut items: Vec<u32> = split
        .train
        .iter()
        .chain(split.test.iter())
        .map(|s: &Sample| s.target)
        .collect();
    items.sort_unstable();
    items.dedup();
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use unimatch_data::synthetic::DatasetProfile;
    use unimatch_data::windowing::{build_samples, WindowConfig};
    use unimatch_data::temporal_split;

    fn split() -> TemporalSplit {
        let log = DatasetProfile::EComp.generate(0.15, 11).filter_min_interactions(2);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 8, min_history: 1 });
        temporal_split(&samples, log.span_months())
    }

    #[test]
    fn ir_cases_one_per_user_with_unique_candidates() {
        let split = split();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let cfg = ProtocolConfig { top_n: 10, negatives: 20 };
        let cases = build_ir_cases(&split, &cfg, &mut rng);
        assert!(!cases.is_empty());
        let users: std::collections::HashSet<u32> = cases.iter().map(|c| c.user).collect();
        assert_eq!(users.len(), cases.len(), "one case per user");
        for c in &cases {
            assert_eq!(c.candidates.len(), 21);
            let set: std::collections::HashSet<u32> = c.candidates.iter().copied().collect();
            assert_eq!(set.len(), 21, "candidates must be distinct");
            assert!(!c.history.is_empty());
        }
    }

    #[test]
    fn ut_cases_one_per_item() {
        let split = split();
        let pool = UserPool::build(&split, 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = ProtocolConfig { top_n: 10, negatives: 20 };
        let cases = build_ut_cases(&split, &pool, &cfg, &mut rng);
        assert!(!cases.is_empty());
        let items: std::collections::HashSet<u32> = cases.iter().map(|c| c.item).collect();
        assert_eq!(items.len(), cases.len());
        for c in &cases {
            assert_eq!(c.candidates.len(), 21);
            assert!(c.candidates.iter().all(|&ix| ix < pool.len()));
        }
    }

    #[test]
    fn positive_is_always_candidate_zero() {
        let split = split();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let cfg = ProtocolConfig { top_n: 5, negatives: 10 };
        let cases = build_ir_cases(&split, &cfg, &mut rng);
        // candidate 0 is the test user's actual next purchase
        let first = &cases[0];
        let sample = split
            .test
            .iter()
            .find(|s| s.user == first.user)
            .expect("test sample");
        assert_eq!(first.candidates[0], sample.target);
    }

    #[test]
    fn deterministic_per_seed() {
        let split = split();
        let cfg = ProtocolConfig { top_n: 10, negatives: 20 };
        let a = build_ir_cases(&split, &cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b = build_ir_cases(&split, &cfg, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0].candidates, b[0].candidates);
    }
}
