//! Popularity / activeness audit of retrieved entities (Tab. XI).
//!
//! The paper defines an item's *popularity* (a user's *activeness*) as its
//! interaction count over the trailing year, then reports the median and
//! average over everything a model retrieved — exposing the InfoNCE /
//! SimCLR tendency to surface unpopular items.

/// Median and mean of a retrieved-entity popularity distribution.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PopularityStats {
    /// Median trailing interactions.
    pub median: f64,
    /// Mean trailing interactions.
    pub mean: f64,
}

/// Computes stats over the popularity values of all retrieved entities
/// (one value per retrieved slot; retrieving an entity twice counts twice,
/// matching "for all the top-n items retrieved").
pub fn popularity_stats(values: &[u64]) -> PopularityStats {
    if values.is_empty() {
        return PopularityStats::default();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2] as f64
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) as f64 / 2.0
    };
    let mean = sorted.iter().sum::<u64>() as f64 / sorted.len() as f64;
    PopularityStats { median, mean }
}

/// Collects the trailing-window popularity of retrieved ids.
/// `counts[id]` is the id's interaction count in the trailing window.
pub fn retrieved_popularity(retrieved: &[u32], counts: &[u64]) -> Vec<u64> {
    retrieved
        .iter()
        .map(|&id| counts.get(id as usize).copied().unwrap_or(0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(popularity_stats(&[3, 1, 2]).median, 2.0);
        assert_eq!(popularity_stats(&[1, 2, 3, 10]).median, 2.5);
    }

    #[test]
    fn mean() {
        assert_eq!(popularity_stats(&[2, 4, 6]).mean, 4.0);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(popularity_stats(&[]), PopularityStats::default());
    }

    #[test]
    fn retrieved_lookup_with_repeats() {
        let counts = vec![5, 10, 0];
        let vals = retrieved_popularity(&[1, 1, 0, 7], &counts);
        assert_eq!(vals, vec![10, 10, 5, 0]); // unknown id -> 0
    }
}
