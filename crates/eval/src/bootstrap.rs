//! Bootstrap confidence intervals for ranking metrics.
//!
//! The paper reports point estimates; on small (scaled-down) test sets the
//! loss orderings can sit within sampling noise, so this module provides
//! percentile-bootstrap CIs over per-case metric values — used to decide
//! whether a win in a table is meaningful.

use rand::Rng;

/// A two-sided confidence interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Point estimate (mean over cases).
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Whether two intervals overlap (overlapping ⇒ the difference is not
    /// resolved at this confidence level).
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }
}

/// Percentile bootstrap over per-case values: resamples `values` with
/// replacement `iterations` times and takes the `alpha/2` and `1-alpha/2`
/// quantiles of the resampled means.
pub fn bootstrap_ci(
    values: &[f64],
    iterations: usize,
    alpha: f64,
    rng: &mut impl Rng,
) -> Interval {
    assert!(!values.is_empty(), "cannot bootstrap an empty sample");
    assert!(iterations >= 10, "need at least 10 bootstrap iterations");
    assert!((0.0..1.0).contains(&alpha) && alpha > 0.0, "alpha must be in (0,1)");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    let mut means = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let mut sum = 0.0;
        for _ in 0..n {
            sum += values[rng.gen_range(0..n)];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = |p: f64| -> f64 {
        let ix = ((iterations as f64 - 1.0) * p).round() as usize;
        means[ix.min(iterations - 1)]
    };
    Interval { mean, lo: q(alpha / 2.0), hi: q(1.0 - alpha / 2.0) }
}

/// Paired bootstrap test of "A beats B": resamples case indices shared by
/// both metric vectors and returns the fraction of resamples where A's
/// mean exceeds B's (≈ one-sided posterior probability of superiority).
pub fn paired_superiority(
    a: &[f64],
    b: &[f64],
    iterations: usize,
    rng: &mut impl Rng,
) -> f64 {
    assert_eq!(a.len(), b.len(), "paired test needs aligned cases");
    assert!(!a.is_empty(), "cannot test an empty sample");
    let n = a.len();
    let mut wins = 0usize;
    for _ in 0..iterations {
        let (mut sa, mut sb) = (0.0, 0.0);
        for _ in 0..n {
            let ix = rng.gen_range(0..n);
            sa += a[ix];
            sb += b[ix];
        }
        if sa > sb {
            wins += 1;
        }
    }
    wins as f64 / iterations as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(3)
    }

    #[test]
    fn interval_contains_mean_and_shrinks_with_n() {
        let mut r = rng();
        let small: Vec<f64> = (0..20).map(|i| (i % 2) as f64).collect();
        let big: Vec<f64> = (0..2000).map(|i| (i % 2) as f64).collect();
        let ci_small = bootstrap_ci(&small, 500, 0.05, &mut r);
        let ci_big = bootstrap_ci(&big, 500, 0.05, &mut r);
        for ci in [ci_small, ci_big] {
            assert!(ci.lo <= ci.mean && ci.mean <= ci.hi);
            assert!((ci.mean - 0.5).abs() < 0.1);
        }
        assert!(ci_big.half_width() < ci_small.half_width());
    }

    #[test]
    fn constant_sample_has_zero_width() {
        let mut r = rng();
        let ci = bootstrap_ci(&[0.7; 50], 200, 0.05, &mut r);
        // float summation noise only
        assert!((ci.lo - 0.7).abs() < 1e-12);
        assert!((ci.hi - 0.7).abs() < 1e-12);
        assert!(ci.half_width() < 1e-12);
    }

    #[test]
    fn overlap_detection() {
        let a = Interval { mean: 0.5, lo: 0.4, hi: 0.6 };
        let b = Interval { mean: 0.55, lo: 0.45, hi: 0.65 };
        let c = Interval { mean: 0.9, lo: 0.85, hi: 0.95 };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn paired_test_detects_clear_superiority() {
        let mut r = rng();
        let a: Vec<f64> = (0..200).map(|i| 0.6 + 0.001 * (i % 7) as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.4 + 0.001 * (i % 5) as f64).collect();
        assert!(paired_superiority(&a, &b, 400, &mut r) > 0.99);
        assert!(paired_superiority(&b, &a, 400, &mut r) < 0.01);
    }

    #[test]
    fn paired_test_is_uncertain_for_ties() {
        let mut r = rng();
        let a: Vec<f64> = (0..300).map(|i| ((i * 17) % 100) as f64 / 100.0).collect();
        let mut b = a.clone();
        b.reverse(); // same distribution, different pairing
        let p = paired_superiority(&a, &b, 500, &mut r);
        assert!((0.2..0.8).contains(&p), "p = {p}");
    }
}
