//! The user pool for UT evaluation: one (latest) pseudo-user per distinct
//! user across train and test, mirroring the paper's large user pools
//! (Tab. VI: 317,667 pool users vs. 43,867 test users on Books).

use std::collections::HashMap;
use unimatch_data::TemporalSplit;

/// One pseudo-user per distinct user, with a reverse index by user id.
#[derive(Clone, Debug, Default)]
pub struct UserPool {
    users: Vec<u32>,
    histories: Vec<Vec<u32>>,
    by_user: HashMap<u32, usize>,
}

impl UserPool {
    /// Builds the pool from a split, keeping each user's most recent
    /// history (by sample day) truncated to `max_seq_len`.
    pub fn build(split: &TemporalSplit, max_seq_len: usize) -> Self {
        let mut latest: HashMap<u32, (u32, &Vec<u32>)> = HashMap::new();
        for s in split.train.iter().chain(split.test.iter()) {
            match latest.get(&s.user) {
                Some(&(day, _)) if day >= s.day => {}
                _ => {
                    latest.insert(s.user, (s.day, &s.history));
                }
            }
        }
        let mut entries: Vec<(u32, &Vec<u32>)> =
            latest.into_iter().map(|(u, (_, h))| (u, h)).collect();
        entries.sort_by_key(|&(u, _)| u);
        let mut pool = UserPool::default();
        for (u, h) in entries {
            let start = h.len().saturating_sub(max_seq_len);
            pool.by_user.insert(u, pool.users.len());
            pool.users.push(u);
            pool.histories.push(h[start..].to_vec());
        }
        pool
    }

    /// Number of pooled users.
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// The user id at a pool index.
    pub fn user(&self, ix: usize) -> u32 {
        self.users[ix]
    }

    /// All user ids in pool order (row ids for an embedding store built
    /// over the pool).
    pub fn users(&self) -> &[u32] {
        &self.users
    }

    /// The pseudo-user history at a pool index.
    pub fn history(&self, ix: usize) -> &[u32] {
        &self.histories[ix]
    }

    /// All histories in pool order (for batch embedding).
    pub fn histories(&self) -> &[Vec<u32>] {
        &self.histories
    }

    /// Pool index of a user id.
    pub fn index_of(&self, user: u32) -> Option<usize> {
        self.by_user.get(&user).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimatch_data::{Sample, TemporalSplit};

    fn split() -> TemporalSplit {
        TemporalSplit {
            train: vec![
                Sample { user: 1, history: vec![10], target: 11, day: 5 },
                Sample { user: 1, history: vec![10, 11], target: 12, day: 40 },
                Sample { user: 2, history: vec![20, 21, 22, 23], target: 24, day: 50 },
            ],
            val: vec![],
            test: vec![Sample { user: 3, history: vec![30], target: 31, day: 95 }],
            val_month: 2,
            test_month: 3,
        }
    }

    #[test]
    fn keeps_latest_history_per_user() {
        let pool = UserPool::build(&split(), 8);
        assert_eq!(pool.len(), 3);
        let ix = pool.index_of(1).expect("user 1");
        assert_eq!(pool.history(ix), &[10, 11]);
        assert_eq!(pool.user(ix), 1);
    }

    #[test]
    fn truncates_to_max_len() {
        let pool = UserPool::build(&split(), 2);
        let ix = pool.index_of(2).expect("user 2");
        assert_eq!(pool.history(ix), &[22, 23]);
    }

    #[test]
    fn includes_test_users() {
        let pool = UserPool::build(&split(), 8);
        assert!(pool.index_of(3).is_some());
        assert!(pool.index_of(99).is_none());
    }
}
