//! Plain-text table rendering for the experiment binaries, producing the
//! rows/columns the paper's tables report.

/// A simple fixed-width table builder.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned monospace text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric as the paper does: percent with two decimals, `%`
/// omitted.
pub fn pct(x: f64) -> String {
    format!("{:.2}", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["loss", "IR", "UT"]);
        t.row(vec!["bbcNCE".into(), "57.20".into(), "47.67".into()]);
        t.row(vec!["BCE".into(), "53.07".into(), "41.95".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("bbcNCE"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // lines: title, header, separator, two data rows
        assert!(lines[3].ends_with("47.67"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(0.5720), "57.20");
        assert_eq!(pct(0.0), "0.00");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_rejected() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}
