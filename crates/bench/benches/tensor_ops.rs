//! Criterion benchmarks for the tensor engine's hot kernels at the shapes
//! UniMatch training actually uses (B = 64, L = 20, d = 16).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use unimatch_tensor::{Graph, ParamSet, Tensor};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(1)
}

fn bench_matmul(c: &mut Criterion) {
    let mut r = rng();
    let a = Tensor::rand_normal([64, 16], 0.0, 1.0, &mut r);
    let b = Tensor::rand_normal([64, 16], 0.0, 1.0, &mut r);
    c.bench_function("matmul_transpose_b 64x16 @ 64x16^T (in-batch logits)", |bench| {
        bench.iter(|| black_box(a.matmul_transpose_b(&b)))
    });
    let w = Tensor::rand_normal([16, 16], 0.0, 1.0, &mut r);
    c.bench_function("matmul 64x16 @ 16x16 (dense layer)", |bench| {
        bench.iter(|| black_box(a.matmul(&w)))
    });
}

fn bench_softmax_family(c: &mut Criterion) {
    let mut r = rng();
    let logits = Tensor::rand_normal([64, 64], 0.0, 2.0, &mut r);
    c.bench_function("log_softmax + diag fwd+bwd on 64x64", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let l = g.input(logits.clone());
            let ls = g.log_softmax(l);
            let d = g.diag(ls);
            let m = g.mean_all(d);
            let loss = g.scale(m, -1.0);
            g.backward(loss);
            black_box(g.grad(l).is_some())
        })
    });
}

fn bench_embedding_sparse_grad(c: &mut Criterion) {
    let mut r = rng();
    let mut params = ParamSet::new();
    let table = params.add("emb", Tensor::rand_normal([20_000, 16], 0.0, 0.25, &mut r));
    let indices: Vec<u32> = (0..64 * 20).map(|k| (k * 131 % 20_000) as u32).collect();
    c.bench_function("embedding gather + sparse backward (64x20 of 20k vocab)", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let e = g.embedding(&params, table, &indices);
            let sq = g.mul(e, e);
            let loss = g.mean_all(sq);
            g.backward(loss);
            black_box(g.sparse_grads().len())
        })
    });
}

fn bench_conv_and_pool(c: &mut Criterion) {
    let mut r = rng();
    let x = Tensor::rand_normal([64, 20, 16], 0.0, 1.0, &mut r);
    let w = Tensor::rand_normal([3, 16, 16], 0.0, 0.3, &mut r);
    let mask = vec![1.0f32; 64 * 20];
    c.bench_function("conv1d_same fwd 64x20x16 k3", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            let wv = g.constant(w.clone());
            black_box(g.conv1d_same(xv, wv))
        })
    });
    c.bench_function("mean_pool_masked 64x20x16", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xv = g.constant(x.clone());
            black_box(g.mean_pool_masked(xv, &mask))
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_softmax_family,
    bench_embedding_sparse_grad,
    bench_conv_and_pool
);
criterion_main!(benches);
