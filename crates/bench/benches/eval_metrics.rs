//! Criterion benchmarks for the evaluation path: embedding inference and
//! ranked-metric computation at protocol scale (1 positive + 99 negatives).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use unimatch_data::SeqBatch;
use unimatch_eval::{case_metrics, evaluate_single_positive_cases, rank_relevance, EmbeddingMatrix};
use unimatch_models::{ModelConfig, TwoTower};

fn bench_metrics(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let scores: Vec<f32> = (0..100).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    c.bench_function("rank_relevance + case_metrics (100 candidates)", |b| {
        b.iter(|| {
            let rel = rank_relevance(&scores, &[0]);
            black_box(case_metrics(&rel, 1, 10))
        })
    });
}

fn bench_case_evaluation(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    const CASES: usize = 1000;
    const D: usize = 16;
    let queries: Vec<f32> = (0..CASES * D).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let items: Vec<f32> = (0..5000 * D).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let candidates: Vec<Vec<u32>> = (0..CASES)
        .map(|_| (0..100).map(|_| rng.gen_range(0..5000u32)).collect())
        .collect();
    c.bench_function("evaluate 1000 cases x 100 candidates", |b| {
        b.iter(|| {
            black_box(evaluate_single_positive_cases(
                EmbeddingMatrix::new(&queries, D),
                EmbeddingMatrix::new(&items, D),
                &candidates,
                10,
            ))
        })
    });
}

fn bench_user_inference(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let model = TwoTower::new(ModelConfig::youtube_dnn_mean(5000, 20, 0.125), &mut rng);
    let histories: Vec<Vec<u32>> = (0..256)
        .map(|_| (0..rng.gen_range(1..20)).map(|_| rng.gen_range(0..5000u32)).collect())
        .collect();
    let refs: Vec<&[u32]> = histories.iter().map(|h| h.as_slice()).collect();
    let batch = SeqBatch::from_histories(&refs, 20);
    c.bench_function("infer 256 user embeddings (YoutubeDNN)", |b| {
        b.iter(|| black_box(model.infer_users(&batch)))
    });
}

criterion_group!(benches, bench_metrics, bench_case_evaluation, bench_user_inference);
criterion_main!(benches);
