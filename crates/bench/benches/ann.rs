//! Criterion benchmarks for the serving path: index build and query
//! latency of brute force vs. IVF vs. HNSW on unit embeddings.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use unimatch_ann::{AnnIndex, BruteForceIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};

fn unit_cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

fn bench_query(c: &mut Criterion) {
    const N: usize = 10_000;
    const D: usize = 16;
    let data = unit_cloud(N, D, 1);
    let query = unit_cloud(1, D, 2);
    let bf = BruteForceIndex::new(data.clone(), D);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let ivf = IvfIndex::build(data.clone(), D, IvfConfig::default(), &mut rng);
    let hnsw = HnswIndex::build(data, D, HnswConfig::default(), &mut rng);
    c.bench_function("bruteforce top-10 of 10k x16", |b| {
        b.iter(|| black_box(bf.search(&query, 10)))
    });
    c.bench_function("ivf(nprobe=4) top-10 of 10k x16", |b| {
        b.iter(|| black_box(ivf.search(&query, 10)))
    });
    c.bench_function("hnsw(ef=50) top-10 of 10k x16", |b| {
        b.iter(|| black_box(hnsw.search(&query, 10)))
    });
}

fn bench_build(c: &mut Criterion) {
    const N: usize = 3_000;
    const D: usize = 16;
    let data = unit_cloud(N, D, 4);
    let mut group = c.benchmark_group("index build 3k x16");
    group.sample_size(10);
    group.bench_function("ivf", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(5);
            black_box(IvfIndex::build(data.clone(), D, IvfConfig::default(), &mut rng))
        })
    });
    group.bench_function("hnsw", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(6);
            black_box(HnswIndex::build(data.clone(), D, HnswConfig::default(), &mut rng))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_query, bench_build);
criterion_main!(benches);
