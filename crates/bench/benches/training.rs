//! Criterion benchmarks for full training steps and epochs — the numbers
//! behind the cost analysis: a bbcNCE step vs. a BCE step vs. an SSM step
//! at the paper's hyperparameters, and per-extractor step costs.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use unimatch_data::batch::multinomial_batches;
use unimatch_data::windowing::{build_samples, WindowConfig};
use unimatch_data::{DatasetProfile, Marginals, NegativeSampler, NegativeStrategy};
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_models::{Aggregator, ContextExtractor, ModelConfig, TwoTower};
use unimatch_train::{AdamConfig, TrainConfig, TrainLoss, Trainer};

struct Setup {
    samples: Vec<unimatch_data::Sample>,
    marginals: Marginals,
    num_items: usize,
}

fn setup() -> Setup {
    let log = DatasetProfile::EComp.generate(0.3, 5).filter_min_interactions(2);
    let samples = build_samples(&log, &WindowConfig { max_seq_len: 20, min_history: 1 });
    let marginals = Marginals::from_samples(&samples, log.num_users(), log.num_items());
    Setup { samples, marginals, num_items: log.num_items() as usize }
}

fn trainer(s: &Setup, loss: TrainLoss, extractor: ContextExtractor) -> Trainer {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let model = TwoTower::new(
        ModelConfig {
            num_items: s.num_items,
            embed_dim: 16,
            max_seq_len: 20,
            extractor,
            aggregator: Aggregator::Mean,
            temperature: 0.125,
            normalize: true,
        },
        &mut rng,
    );
    Trainer::new(
        model,
        TrainConfig {
            batch_size: 64,
            epochs_per_month: 1,
            max_seq_len: 20,
            optimizer: AdamConfig::default(),
            loss,
            seed: 4,
        },
    )
}

fn bench_step_by_loss(c: &mut Criterion) {
    let s = setup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let batches = multinomial_batches(&s.samples, &s.marginals, 64, 20, &mut rng);
    let nce = MultinomialLoss::Nce(BiasConfig::bbcnce());
    let mut t = trainer(&s, TrainLoss::Multinomial(nce), ContextExtractor::YoutubeDnn);
    c.bench_function("train step bbcNCE B=64 (YoutubeDNN)", |b| {
        let mut i = 0;
        b.iter(|| {
            let batch = &batches[i % batches.len()];
            i += 1;
            black_box(t.step_multinomial(batch, &nce, None))
        })
    });

    let sampler = NegativeSampler::new(&s.samples, s.num_items as u32);
    let bce_batches = sampler.bce_batches(NegativeStrategy::Uniform, 128, 20, &mut rng);
    let mut t = trainer(&s, TrainLoss::Bce(NegativeStrategy::Uniform), ContextExtractor::YoutubeDnn);
    c.bench_function("train step BCE R=128 (YoutubeDNN)", |b| {
        let mut i = 0;
        b.iter(|| {
            let batch = &bce_batches[i % bce_batches.len()];
            i += 1;
            black_box(t.step_bce(batch))
        })
    });
}

fn bench_step_by_extractor(c: &mut Criterion) {
    let s = setup();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let batches = multinomial_batches(&s.samples, &s.marginals, 64, 20, &mut rng);
    let nce = MultinomialLoss::Nce(BiasConfig::bbcnce());
    for extractor in ContextExtractor::ALL {
        let mut t = trainer(&s, TrainLoss::Multinomial(nce), extractor);
        c.bench_function(&format!("train step bbcNCE B=64 ({})", extractor.label()), |b| {
            let mut i = 0;
            b.iter(|| {
                let batch = &batches[i % batches.len()];
                i += 1;
                black_box(t.step_multinomial(batch, &nce, None))
            })
        });
    }
}

fn bench_epoch(c: &mut Criterion) {
    let s = setup();
    c.bench_function("train epoch bbcNCE on e_comp(0.3)", |b| {
        b.iter_batched(
            || {
                trainer(
                    &s,
                    TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
                    ContextExtractor::YoutubeDnn,
                )
            },
            |mut t| black_box(t.train_epochs(&s.samples, &s.marginals, 1)),
            BatchSize::LargeInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_step_by_loss, bench_step_by_extractor, bench_epoch
}
criterion_main!(benches);
