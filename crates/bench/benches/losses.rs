//! Criterion benchmarks for the loss family at the paper's batch size —
//! backing the Sec. IV-B1 claim that bbcNCE costs about as much per step
//! as BCE while extracting log2(B) bits instead of 1.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use unimatch_losses::{bce_loss, nce_loss, ssm_loss, BiasConfig};
use unimatch_tensor::{Graph, Tensor};

fn rng() -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(2)
}

fn bench_nce_family(c: &mut Criterion) {
    let mut r = rng();
    let logits = Tensor::rand_normal([64, 64], 0.0, 2.0, &mut r);
    let log_pu = vec![-8.0f32; 64];
    let log_pi: Vec<f32> = (0..64).map(|i| -6.0 - (i as f32) * 0.05).collect();
    for (name, cfg) in [
        ("infonce", BiasConfig::infonce()),
        ("bbcnce", BiasConfig::bbcnce()),
    ] {
        c.bench_function(&format!("{name} fwd+bwd B=64"), |bench| {
            bench.iter(|| {
                let mut g = Graph::new();
                let l = g.input(logits.clone());
                let loss = nce_loss(&mut g, l, &log_pu, &log_pi, &cfg);
                g.backward(loss);
                black_box(g.value(loss).item())
            })
        });
    }
}

fn bench_bce(c: &mut Criterion) {
    let mut r = rng();
    let logits = Tensor::rand_normal([128], 0.0, 2.0, &mut r);
    let labels: Vec<f32> = (0..128).map(|i| (i % 2) as f32).collect();
    c.bench_function("bce fwd+bwd R=128 (64 pos + 64 neg)", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let l = g.input(logits.clone());
            let loss = bce_loss(&mut g, l, &labels);
            g.backward(loss);
            black_box(g.value(loss).item())
        })
    });
}

fn bench_ssm(c: &mut Criterion) {
    let mut r = rng();
    let pos = Tensor::rand_normal([64], 0.0, 2.0, &mut r);
    let neg = Tensor::rand_normal([64, 64], 0.0, 2.0, &mut r);
    let q = vec![-6.0f32; 64];
    c.bench_function("ssm fwd+bwd B=64 n=64", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let p = g.input(pos.clone());
            let n = g.input(neg.clone());
            let loss = ssm_loss(&mut g, p, n, &q, &q);
            g.backward(loss);
            black_box(g.value(loss).item())
        })
    });
}

criterion_group!(benches, bench_nce_family, bench_bce, bench_ssm);
criterion_main!(benches);
