//! Criterion benchmarks for the data pipeline: synthetic generation,
//! windowing, batching and negative sampling throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use std::hint::black_box;
use unimatch_data::batch::multinomial_batches;
use unimatch_data::windowing::{build_samples, WindowConfig};
use unimatch_data::{DatasetProfile, Marginals, NegativeSampler, NegativeStrategy};

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthetic generation");
    group.sample_size(10);
    for profile in DatasetProfile::ALL {
        group.bench_function(profile.name(), |b| {
            b.iter(|| black_box(profile.generate(0.5, 9)))
        });
    }
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let log = DatasetProfile::Books.generate(0.5, 10).filter_min_interactions(3);
    c.bench_function("windowing Books(0.5)", |b| {
        b.iter(|| {
            black_box(build_samples(
                &log,
                &WindowConfig { max_seq_len: 20, min_history: 1 },
            ))
        })
    });
    let samples = build_samples(&log, &WindowConfig { max_seq_len: 20, min_history: 1 });
    let marginals = Marginals::from_samples(&samples, log.num_users(), log.num_items());
    c.bench_function("multinomial batching (full pass)", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(11);
            black_box(multinomial_batches(&samples, &marginals, 64, 20, &mut rng))
        })
    });
    let sampler = NegativeSampler::new(&samples, log.num_items());
    c.bench_function("bce batching w/ uniform negatives (full pass)", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(12);
            black_box(sampler.bce_batches(NegativeStrategy::Uniform, 128, 20, &mut rng))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_generate, bench_pipeline
}
criterion_main!(benches);
