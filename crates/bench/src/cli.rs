//! Minimal CLI argument handling shared by the experiment binaries.

use unimatch_parallel::Parallelism;

/// Common experiment arguments.
#[derive(Clone, Debug)]
pub struct Args {
    /// Dataset down-scaling factor (1.0 ≈ 1/100 of the paper's sizes).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Run a cheaper variant (fewer steps/epochs) for smoke testing.
    pub quick: bool,
    /// Worker threads for the compute kernels (0 = auto-detect cores,
    /// 1 = exact sequential execution).
    pub threads: usize,
}

impl Default for Args {
    fn default() -> Self {
        Args { scale: 1.0, seed: 42, quick: false, threads: 0 }
    }
}

impl Args {
    /// Parses `--scale <f64>`, `--seed <u64>`, `--threads <usize>`,
    /// `--quick` from the process arguments and installs the requested
    /// [`Parallelism`] globally; anything else aborts with a usage message.
    pub fn parse() -> Self {
        let mut out = Args::default();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    out.scale = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a float"));
                }
                "--seed" => {
                    i += 1;
                    out.seed = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--threads" => {
                    i += 1;
                    out.threads = argv
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--threads needs an integer (0 = auto)"));
                }
                "--quick" => out.quick = true,
                other => usage(&format!("unknown argument {other}")),
            }
            i += 1;
        }
        Parallelism::threads(out.threads).install_global();
        out
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: <binary> [--scale <f64>] [--seed <u64>] [--threads <usize>] [--quick]");
    std::process::exit(2);
}
