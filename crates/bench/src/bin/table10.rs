//! Regenerates Tab. X (multinomial losses on the QA profiles).
fn main() {
    let args = unimatch_bench::Args::parse();
    let reports = unimatch_bench::experiments::table09_10_11::run_all(&args);
    print!("{}", reports.table10);
}
