//! Regenerates the paper's Tab. 03 from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::table03::run(&args));
}
