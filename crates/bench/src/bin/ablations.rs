//! Runs the design-choice ablations (temperature, normalization, batch
//! size, embedding dim, BCE negative ratio). See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::ablations::run(&args));
}
