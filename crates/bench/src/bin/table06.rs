//! Regenerates the paper's Tab. 06 from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::table06::run(&args));
}
