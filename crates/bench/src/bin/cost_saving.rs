//! Regenerates the paper's cost_saving from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::cost_saving::run(&args));
}
