//! Regenerates the paper's figure03 from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::figure03::run(&args));
}
