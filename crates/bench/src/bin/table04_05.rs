//! Regenerates the paper's Tab. 04_05 from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::table04_05::run(&args));
}
