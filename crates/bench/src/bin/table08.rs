//! Regenerates the paper's Tab. 08 from scratch. See DESIGN.md §4.
fn main() {
    let args = unimatch_bench::Args::parse();
    print!("{}", unimatch_bench::experiments::table08::run(&args));
}
