//! One module per paper table/figure; each exposes
//! `run(&Args) -> String` returning the rendered report so the binaries
//! and `all_experiments` share the implementation.

pub mod ablations;
pub mod cost_saving;
pub mod figure03;
pub mod table01;
pub mod table02;
pub mod table03;
pub mod table04_05;
pub mod table06;
pub mod table07;
pub mod table08;
pub mod table09_10_11;
pub mod table12;

use unimatch_data::{DatasetProfile, NegativeStrategy};
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_train::TrainLoss;

/// The Tab. VIII loss rows: BCE under the four noise distributions plus
/// bbcNCE.
pub fn table8_losses() -> Vec<(String, TrainLoss)> {
    let mut rows: Vec<(String, TrainLoss)> = NegativeStrategy::ALL
        .iter()
        .map(|&s| (format!("BCE {}", s.label()), TrainLoss::Bce(s)))
        .collect();
    rows.push((
        "bbcNCE".to_string(),
        TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
    ));
    rows
}

/// The Tab. IX/X loss rows: the six multinomial-family losses.
pub fn multinomial_losses(ssm_negatives: usize) -> Vec<(String, TrainLoss)> {
    MultinomialLoss::paper_losses(ssm_negatives)
        .into_iter()
        .map(|(label, loss)| (label.to_string(), TrainLoss::Multinomial(loss)))
        .collect()
}

/// Profiles grouped as the paper groups its tables.
pub fn amazon_profiles() -> [DatasetProfile; 2] {
    [DatasetProfile::Books, DatasetProfile::Electronics]
}

/// The two QuickAudience profiles.
pub fn qa_profiles() -> [DatasetProfile; 2] {
    [DatasetProfile::EComp, DatasetProfile::WComp]
}

/// Marks the best and second-best values in a row of `(label, value)`
/// pairs the way the paper's tables do (`*` best, `_` second).
pub fn mark_best(values: &[f64]) -> Vec<String> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].partial_cmp(&values[a]).unwrap_or(std::cmp::Ordering::Equal));
    values
        .iter()
        .enumerate()
        .map(|(ix, v)| {
            let tag = if Some(&ix) == order.first() {
                "*"
            } else if Some(&ix) == order.get(1) {
                "_"
            } else {
                ""
            };
            format!("{:.2}{tag}", 100.0 * v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_row_counts() {
        assert_eq!(table8_losses().len(), 5);
        assert_eq!(multinomial_losses(64).len(), 6);
    }

    #[test]
    fn mark_best_tags() {
        let marked = mark_best(&[0.10, 0.30, 0.20]);
        assert!(marked[1].ends_with('*'));
        assert!(marked[2].ends_with('_'));
        assert_eq!(marked[0], "10.00");
    }
}
