//! Tab. VIII — bbcNCE versus BCE under the four negative-sampling
//! strategies: NDCG for IR, UT and their average, on all four datasets.

use crate::cli::Args;
use crate::experiments::{mark_best, table8_losses};
use unimatch_core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut out = String::new();
    let profiles: Vec<DatasetProfile> = if args.quick {
        vec![DatasetProfile::EComp]
    } else {
        DatasetProfile::ALL.to_vec()
    };
    for profile in profiles {
        let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
        let metric_n = profile.top_n();
        let mut t = Table::new(
            format!("Table VIII — {} (NDCG@{metric_n}; * best, _ second)", profile.name()),
            &["loss", "IR", "UT", "AVG"],
        );
        let mut rows = Vec::new();
        for (label, loss) in table8_losses() {
            let spec = ExperimentSpec::baseline(profile, args.scale, args.seed, loss);
            let outcome = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
            rows.push((label, outcome.eval.ir.ndcg, outcome.eval.ut.ndcg, outcome.eval.avg_ndcg()));
        }
        let ir_marked = mark_best(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
        let ut_marked = mark_best(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
        let avg_marked = mark_best(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
        for (i, (label, ..)) in rows.iter().enumerate() {
            t.row(vec![
                label.clone(),
                ir_marked[i].clone(),
                ut_marked[i].clone(),
                avg_marked[i].clone(),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
    }
    out.push_str(
        "Paper shape: BCE p(u) strong at IR, BCE p(i) strong at UT, uniform \
         decent at both, bbcNCE best or second-best on AVG everywhere.\n",
    );
    out
}
