//! Sec. IV-B5 — the cost-saving arithmetic, with measured record
//! consumption from our own training runs backing the epoch/record-factor
//! inputs.

use crate::cli::Args;
use unimatch_core::{
    run_experiment_on, CostComparison, ExperimentOptions, ExperimentSpec, Hyperparams,
    PreparedData, Pathway,
};
use unimatch_data::{DatasetProfile, NegativeStrategy};
use unimatch_eval::Table;
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_train::TrainLoss;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    // ---- measured: records consumed per pathway on one dataset ------------
    let profile = DatasetProfile::EComp;
    let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
    let bbc_spec = ExperimentSpec::baseline(
        profile,
        args.scale,
        args.seed,
        TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
    );
    let bce_spec = ExperimentSpec::baseline(
        profile,
        args.scale,
        args.seed,
        TrainLoss::Bce(NegativeStrategy::Uniform),
    );
    let bbc = run_experiment_on(&bbc_spec, &ExperimentOptions::default(), &prepared);
    let bce = run_experiment_on(&bce_spec, &ExperimentOptions::default(), &prepared);

    let mut measured = Table::new(
        format!("Measured training consumption on {} (per model)", profile.name()),
        &["pathway", "records consumed", "steps", "wall secs", "AVG NDCG"],
    );
    measured.row(vec![
        "bbcNCE".into(),
        bbc.stats.records_consumed.to_string(),
        bbc.stats.steps.to_string(),
        format!("{:.1}", bbc.train_secs),
        format!("{:.2}", 100.0 * bbc.eval.avg_ndcg()),
    ]);
    measured.row(vec![
        "BCE uniform".into(),
        bce.stats.records_consumed.to_string(),
        bce.stats.steps.to_string(),
        format!("{:.1}", bce.train_secs),
        format!("{:.2}", 100.0 * bce.eval.avg_ndcg()),
    ]);
    let measured_ratio =
        bbc.stats.records_consumed as f64 / bce.stats.records_consumed.max(1) as f64;

    // ---- paper arithmetic per profile --------------------------------------
    let mut t = Table::new(
        "Sec. IV-B5 — total cost saving (paper arithmetic, Tab. VII epochs)",
        &["Data", "BCE epochs", "mult epochs", "train ratio", "total ratio", "saving"],
    );
    for profile in DatasetProfile::ALL {
        let b = Hyperparams::paper(profile, Pathway::Bernoulli).epochs as f64;
        let m = Hyperparams::paper(profile, Pathway::Multinomial).epochs as f64;
        let c = CostComparison::paper(b, m);
        t.row(vec![
            profile.name().into(),
            format!("{b:.0}"),
            format!("{m:.0}"),
            format!("1/{:.0}", 1.0 / c.training_ratio()),
            format!("{:.4}", c.total_ratio()),
            format!("{:.1}%", 100.0 * c.total_saving()),
        ]);
    }
    format!(
        "{}\n{}\nMeasured per-model record ratio bbcNCE/BCE = {measured_ratio:.3} \
         (paper: 1/10–1/5 from epochs × the 2× negative records). Stacking the \
         one-model-for-both-tasks (1/2) and incremental-training (1/12) factors \
         yields the table above — every dataset clears the paper's 94% claim.\n",
        measured.render(),
        t.render()
    )
}
