//! Ablations of the design choices DESIGN.md calls out, beyond the paper's
//! own tables:
//!
//! * **temperature** τ — the paper's most sensitive hyperparameter;
//! * **L2 normalization** — Eq. 13's claim that normalize+rescale is
//!   "better and robust";
//! * **batch size** — in-batch losses get `B−1` negatives per positive, so
//!   batch size doubles as negative-pool size;
//! * **embedding dimension** d;
//! * **BCE negative ratio** — the paper fixes 1:1; what does more buy?

use crate::cli::Args;
use unimatch_core::{
    run_experiment_on, ExperimentOptions, ExperimentSpec, Hyperparams, Pathway, PreparedData,
};
use unimatch_data::{DatasetProfile, NegativeStrategy};
use unimatch_eval::Table;
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_train::TrainLoss;

fn bbcnce() -> TrainLoss {
    TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce()))
}

/// Runs all ablations and renders the report.
pub fn run(args: &Args) -> String {
    let profile = DatasetProfile::EComp;
    let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
    let base_hp = Hyperparams::paper(profile, Pathway::Multinomial);
    let mut out = String::new();

    // ---- temperature -------------------------------------------------------
    let temps: &[f32] = if args.quick { &[0.125, 0.5] } else { &[0.05, 0.1, 0.125, 0.25, 0.5, 1.0] };
    let mut t = Table::new(
        format!("ablation: temperature τ (bbcNCE on {}, NDCG %)", profile.name()),
        &["τ", "IR", "UT", "AVG"],
    );
    for &temp in temps {
        let spec = ExperimentSpec {
            hyper: Some(Hyperparams { temperature: temp, ..base_hp }),
            ..ExperimentSpec::baseline(profile, args.scale, args.seed, bbcnce())
        };
        let o = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        t.row(vec![
            format!("{temp}"),
            format!("{:.2}", 100.0 * o.eval.ir.ndcg),
            format!("{:.2}", 100.0 * o.eval.ut.ndcg),
            format!("{:.2}", 100.0 * o.eval.avg_ndcg()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // ---- normalization ------------------------------------------------------
    let mut t = Table::new(
        "ablation: L2 normalization of tower outputs (Eq. 13)",
        &["variant", "IR", "UT", "AVG"],
    );
    for (label, normalize) in [("normalized + τ (paper)", true), ("raw dot product", false)] {
        let spec = ExperimentSpec {
            normalize,
            ..ExperimentSpec::baseline(profile, args.scale, args.seed, bbcnce())
        };
        let o = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        t.row(vec![
            label.into(),
            format!("{:.2}", 100.0 * o.eval.ir.ndcg),
            format!("{:.2}", 100.0 * o.eval.ut.ndcg),
            format!("{:.2}", 100.0 * o.eval.avg_ndcg()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // ---- batch size (= in-batch negative pool) ------------------------------
    let batches: &[usize] = if args.quick { &[64] } else { &[16, 32, 64, 128, 256] };
    let mut t = Table::new(
        "ablation: batch size (bbcNCE sees B-1 in-batch negatives)",
        &["B", "IR", "UT", "AVG"],
    );
    for &b in batches {
        let spec = ExperimentSpec {
            hyper: Some(Hyperparams { batch_size: b, ..base_hp }),
            ..ExperimentSpec::baseline(profile, args.scale, args.seed, bbcnce())
        };
        let o = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        t.row(vec![
            b.to_string(),
            format!("{:.2}", 100.0 * o.eval.ir.ndcg),
            format!("{:.2}", 100.0 * o.eval.ut.ndcg),
            format!("{:.2}", 100.0 * o.eval.avg_ndcg()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // ---- embedding dimension -------------------------------------------------
    let dims: &[usize] = if args.quick { &[16] } else { &[4, 8, 16, 32] };
    let mut t = Table::new("ablation: embedding dimension d (paper: 16)", &["d", "IR", "UT", "AVG"]);
    for &d in dims {
        let spec = ExperimentSpec {
            embed_dim: d,
            ..ExperimentSpec::baseline(profile, args.scale, args.seed, bbcnce())
        };
        let o = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
        t.row(vec![
            d.to_string(),
            format!("{:.2}", 100.0 * o.eval.ir.ndcg),
            format!("{:.2}", 100.0 * o.eval.ut.ndcg),
            format!("{:.2}", 100.0 * o.eval.avg_ndcg()),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');

    // ---- BCE negative ratio (records consumed scale with 1 + ratio) ----------
    let ratios: &[usize] = if args.quick { &[1] } else { &[1, 3, 7] };
    let mut t = Table::new(
        "ablation: BCE negatives per positive (paper fixes 1:1)",
        &["ratio", "IR", "UT", "AVG", "records"],
    );
    for &ratio in ratios {
        let hp = Hyperparams::paper(profile, Pathway::Bernoulli);
        let spec = ExperimentSpec {
            hyper: Some(Hyperparams {
                batch_size: 64 * (1 + ratio),
                ..hp
            }),
            ..ExperimentSpec::baseline(
                profile,
                args.scale,
                args.seed,
                TrainLoss::Bce(NegativeStrategy::Uniform),
            )
        };
        // ratio > 1 uses the generalized batcher through a custom epoch
        // loop; ratio == 1 runs the standard pathway.
        let o = if ratio == 1 {
            run_experiment_on(&spec, &ExperimentOptions::default(), &prepared)
        } else {
            run_bce_with_ratio(&spec, &prepared, ratio)
        };
        t.row(vec![
            format!("1:{ratio}"),
            format!("{:.2}", 100.0 * o.eval.ir.ndcg),
            format!("{:.2}", 100.0 * o.eval.ut.ndcg),
            format!("{:.2}", 100.0 * o.eval.avg_ndcg()),
            o.stats.records_consumed.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nReading guide: AVG should peak near the paper's τ cell and be flat-to-\n\
         declining in extra BCE negatives per unit of compute — the data-\n\
         efficiency argument behind choosing bbcNCE (Sec. IV-B1-iii).\n",
    );
    out
}

/// Custom BCE run with `ratio` negatives per positive (the standard
/// trainer pathway fixes 1:1, matching the paper).
fn run_bce_with_ratio(
    spec: &ExperimentSpec,
    prepared: &PreparedData,
    ratio: usize,
) -> unimatch_core::ExperimentOutcome {
    use rand::SeedableRng;
    use unimatch_data::NegativeSampler;
    use unimatch_models::{ModelConfig, TwoTower};
    use unimatch_train::{AdamConfig, TrainConfig, Trainer};

    let hp = spec.hyperparams();
    let model_cfg = ModelConfig {
        num_items: prepared.num_items(),
        embed_dim: spec.embed_dim,
        max_seq_len: prepared.max_seq_len,
        extractor: spec.extractor,
        aggregator: spec.aggregator,
        temperature: hp.temperature,
        normalize: spec.normalize,
    };
    let mut rng = rand::rngs::StdRng::seed_from_u64(spec.seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let model = TwoTower::new(model_cfg, &mut rng);
    let cfg = TrainConfig {
        batch_size: hp.batch_size,
        epochs_per_month: hp.epochs,
        max_seq_len: prepared.max_seq_len,
        optimizer: AdamConfig::with_lr(hp.lr),
        loss: spec.loss,
        seed: spec.seed ^ 0xabcd,
    };
    let mut trainer = Trainer::new(model, cfg);
    let mut batch_rng = rand::rngs::StdRng::seed_from_u64(spec.seed ^ 0xabcd);
    let t0 = std::time::Instant::now();
    for month in prepared.split.train_months() {
        let month_samples = prepared.split.train_month(month);
        if month_samples.is_empty() {
            continue;
        }
        let sampler = NegativeSampler::new(&month_samples, prepared.log.num_items());
        for _ in 0..hp.epochs {
            for batch in sampler.bce_batches_with_ratio(
                unimatch_data::NegativeStrategy::Uniform,
                ratio,
                hp.batch_size,
                prepared.max_seq_len,
                &mut batch_rng,
            ) {
                trainer.step_bce(&batch);
            }
        }
    }
    let train_secs = t0.elapsed().as_secs_f64();
    let stats = *trainer.stats();
    let eval = unimatch_core::evaluate(
        &trainer.model,
        &prepared.split,
        &spec.protocol(),
        prepared.max_seq_len,
        spec.seed ^ 0x5eed,
    );
    unimatch_core::ExperimentOutcome { eval, stats, curve: vec![], audit: None, train_secs }
}
