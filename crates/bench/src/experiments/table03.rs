//! Tab. III — dataset statistics: our scaled synthetic profiles next to
//! the paper's originals.

use crate::cli::Args;
use unimatch_data::stats::DatasetStats;
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut ours = Table::new(
        format!("Table III (ours, scale {}) — synthetic dataset statistics", args.scale),
        &["Data", "#users", "#items", "#interactions", "months", "act/user", "act/item"],
    );
    let mut paper = Table::new(
        "Table III (paper) — original dataset statistics",
        &["Data", "#users", "#items", "#interactions", "months", "act/user", "act/item"],
    );
    for profile in DatasetProfile::ALL {
        let log = profile.generate(args.scale, args.seed);
        let s = DatasetStats::from_log(&log);
        ours.row(vec![
            profile.name().into(),
            s.users.to_string(),
            s.items.to_string(),
            s.interactions.to_string(),
            s.months.to_string(),
            format!("{:.1}", s.actions_per_user),
            format!("{:.1}", s.actions_per_item),
        ]);
        let (u, i, n, m, apu, api) = profile.paper_stats();
        paper.row(vec![
            profile.name().into(),
            u.to_string(),
            i.to_string(),
            n.to_string(),
            m.to_string(),
            format!("{apu:.1}"),
            format!("{api:.1}"),
        ]);
    }
    format!(
        "{}\n{}\nShape check: user/item ratios, per-user sparsity ordering \
         (Electronics sparsest, w_comp's items by far the most popular) and \
         relative catalog sizes follow the paper; absolute counts are scaled \
         ~1/100 with a 12-month span.\n",
        ours.render(),
        paper.render()
    )
}
