//! Tabs. IX, X and XI — the six multinomial-family losses compared on all
//! four datasets (Recall + NDCG for IR/UT/AVG), and the popularity /
//! activeness audit of what each loss retrieves.
//!
//! One training run per (profile, loss) feeds all three tables, as in the
//! paper.

use crate::cli::Args;
use crate::experiments::{amazon_profiles, mark_best, multinomial_losses, qa_profiles};
use unimatch_core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;

/// One (profile, loss) result.
struct Cell {
    label: String,
    ir_recall: f64,
    ir_ndcg: f64,
    ut_recall: f64,
    ut_ndcg: f64,
    ir_pop_med: f64,
    ir_pop_avg: f64,
    ut_act_med: f64,
    ut_act_avg: f64,
}

fn run_profile(profile: DatasetProfile, args: &Args) -> Vec<Cell> {
    let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
    let mut cells = Vec::new();
    for (label, loss) in multinomial_losses(64) {
        let spec = ExperimentSpec::baseline(profile, args.scale, args.seed, loss);
        let outcome = run_experiment_on(
            &spec,
            &ExperimentOptions { curve_points: 0, audit: true },
            &prepared,
        );
        let audit = outcome.audit.expect("audit requested");
        cells.push(Cell {
            label,
            ir_recall: outcome.eval.ir.recall,
            ir_ndcg: outcome.eval.ir.ndcg,
            ut_recall: outcome.eval.ut.recall,
            ut_ndcg: outcome.eval.ut.ndcg,
            ir_pop_med: audit.ir_item_popularity.median,
            ir_pop_avg: audit.ir_item_popularity.mean,
            ut_act_med: audit.ut_user_activeness.median,
            ut_act_avg: audit.ut_user_activeness.mean,
        });
    }
    cells
}

fn metrics_table(profile: DatasetProfile, cells: &[Cell]) -> String {
    let n = profile.top_n();
    let mut t = Table::new(
        format!("{} (Recall@{n} / NDCG@{n}; * best, _ second)", profile.name()),
        &["loss", "IR Recall", "IR NDCG", "UT Recall", "UT NDCG", "AVG Recall", "AVG NDCG"],
    );
    let col = |f: &dyn Fn(&Cell) -> f64| mark_best(&cells.iter().map(f).collect::<Vec<_>>());
    let cols = [
        col(&|c: &Cell| c.ir_recall),
        col(&|c: &Cell| c.ir_ndcg),
        col(&|c: &Cell| c.ut_recall),
        col(&|c: &Cell| c.ut_ndcg),
        col(&|c: &Cell| (c.ir_recall + c.ut_recall) / 2.0),
        col(&|c: &Cell| (c.ir_ndcg + c.ut_ndcg) / 2.0),
    ];
    for (i, c) in cells.iter().enumerate() {
        t.row(vec![
            c.label.clone(),
            cols[0][i].clone(),
            cols[1][i].clone(),
            cols[2][i].clone(),
            cols[3][i].clone(),
            cols[4][i].clone(),
            cols[5][i].clone(),
        ]);
    }
    t.render()
}

fn audit_table(profile: DatasetProfile, cells: &[Cell]) -> String {
    let mut t = Table::new(
        format!("{} — retrieved popularity/activeness (Tab. XI)", profile.name()),
        &["loss", "IR med", "IR avg", "UT med", "UT avg"],
    );
    for c in cells {
        t.row(vec![
            c.label.clone(),
            format!("{:.0}", c.ir_pop_med),
            format!("{:.0}", c.ir_pop_avg),
            format!("{:.0}", c.ut_act_med),
            format!("{:.0}", c.ut_act_avg),
        ]);
    }
    t.render()
}

/// Result bundle: the Tab. IX, Tab. X and Tab. XI report strings.
pub struct Reports {
    /// Amazon profiles metrics (Tab. IX).
    pub table09: String,
    /// QA profiles metrics (Tab. X).
    pub table10: String,
    /// Popularity audit (Tab. XI).
    pub table11: String,
}

/// Runs all three tables from shared training runs.
pub fn run_all(args: &Args) -> Reports {
    let amazon: Vec<(DatasetProfile, Vec<Cell>)> = if args.quick {
        vec![]
    } else {
        amazon_profiles().iter().map(|&p| (p, run_profile(p, args))).collect()
    };
    let qa: Vec<(DatasetProfile, Vec<Cell>)> = {
        let ps: Vec<DatasetProfile> =
            if args.quick { vec![DatasetProfile::EComp] } else { qa_profiles().to_vec() };
        ps.iter().map(|&p| (p, run_profile(p, args))).collect()
    };

    let shape9 = "Paper shape (Tab. IX): row-bcNCE tops IR, col-bcNCE tops UT, \
                  bbcNCE best/second on AVG; InfoNCE ≈ SimCLR and weaker on IR.\n";
    let shape11 = "Paper shape (Tab. XI): InfoNCE/SimCLR retrieve markedly less \
                   popular items (low IR medians) than the bias-corrected \
                   losses and SSM.\n";

    let render = |groups: &[(DatasetProfile, Vec<Cell>)]| -> String {
        groups
            .iter()
            .map(|(p, cells)| metrics_table(*p, cells))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let render_audit = |groups: &[(DatasetProfile, Vec<Cell>)]| -> String {
        groups
            .iter()
            .map(|(p, cells)| audit_table(*p, cells))
            .collect::<Vec<_>>()
            .join("\n")
    };

    Reports {
        table09: format!("{}\n{shape9}", render(&amazon)),
        table10: format!("{}\n{shape9}", render(&qa)),
        table11: format!("{}\n{}\n{shape11}", render_audit(&amazon), render_audit(&qa)),
    }
}
