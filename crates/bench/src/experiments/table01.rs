//! Tab. I — the BCE loss under four negative-sampling distributions
//! converges to four different optima.
//!
//! We fit a free logit table on a structured toy joint and report the R²
//! of `φ` against every candidate optimum; the designated target (Tab. I's
//! right column) should win its row.

use crate::cli::Args;
use crate::convergence::{fit_bce, fit_r2, BceNoise, Target, ToyJoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_eval::Table;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let joint = ToyJoint::structured(12, 9, &mut rng);
    let (steps, batch) = if args.quick { (800, 128) } else { (3000, 256) };

    let mut table = Table::new(
        "Table I — BCE optima under negative sampling p_n(u,i) (R² of fitted φ vs candidate optimum; designated target marked ►)",
        &["NS: p_n", "log p(i|u)", "log p(u|i)", "PMI", "log p(u,i)", "designated wins"],
    );
    let mut all_pass = true;
    for noise in BceNoise::ALL {
        let phi = fit_bce(&joint, noise, steps, batch, 0.05, &mut rng);
        let gauge = noise.gauge();
        let r2s: Vec<f64> = Target::ALL
            .iter()
            .map(|&t| fit_r2(&phi, &joint, t, gauge))
            .collect();
        let designated = Target::ALL
            .iter()
            .position(|&t| t == noise.designated_target())
            .expect("designated in candidates");
        let wins = r2s
            .iter()
            .enumerate()
            .all(|(ix, &r)| ix == designated || r2s[designated] >= r - 1e-9);
        all_pass &= wins;
        let cells: Vec<String> = r2s
            .iter()
            .enumerate()
            .map(|(ix, r)| {
                let mark = if ix == designated { "►" } else { "" };
                format!("{mark}{r:.3}")
            })
            .collect();
        table.row(vec![
            noise.label().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            if wins { "yes".into() } else { "NO".into() },
        ]);
    }
    let verdict = if all_pass {
        "Every sampling strategy converged to its Tab. I optimum."
    } else {
        "WARNING: at least one strategy did not fit its designated optimum best."
    };
    format!("{}\n{verdict}\n", table.render())
}
