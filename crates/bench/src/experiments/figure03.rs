//! Fig. 3 — incremental training: NDCG of monthly checkpoints against the
//! fixed final-month test set, as a function of how many months of data
//! the checkpoint is missing.

use crate::cli::Args;
use unimatch_core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_train::TrainLoss;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut out = String::new();
    let profiles: Vec<DatasetProfile> = if args.quick {
        vec![DatasetProfile::EComp]
    } else {
        DatasetProfile::ALL.to_vec()
    };
    let points = 4;
    let mut gains = Vec::new();
    for profile in profiles {
        let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
        let spec = ExperimentSpec::baseline(
            profile,
            args.scale,
            args.seed,
            TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
        );
        let outcome = run_experiment_on(
            &spec,
            &ExperimentOptions { curve_points: points, audit: false },
            &prepared,
        );
        let mut t = Table::new(
            format!("Figure 3 — {} (NDCG@{} vs months of data missing)", profile.name(), profile.top_n()),
            &["months behind", "IR NDCG", "UT NDCG", "AVG"],
        );
        for p in &outcome.curve {
            t.row(vec![
                p.months_behind.to_string(),
                format!("{:.2}", 100.0 * p.ir_ndcg),
                format!("{:.2}", 100.0 * p.ut_ndcg),
                format!("{:.2}", 100.0 * (p.ir_ndcg + p.ut_ndcg) / 2.0),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        if let (Some(first), Some(last)) = (outcome.curve.first(), outcome.curve.last()) {
            let gain = ((last.ir_ndcg + last.ut_ndcg) - (first.ir_ndcg + first.ut_ndcg)) / 2.0;
            gains.push((profile, gain));
        }
    }
    out.push_str("Incremental gain (AVG NDCG, freshest minus stalest checkpoint):\n");
    for (p, g) in &gains {
        out.push_str(&format!("  {:<18} {:+.2} pts\n", p.name(), 100.0 * g));
    }
    out.push_str(
        "Paper shape: metric rises as training data approaches the test \
         month — strongly for the trendy datasets (Books, e_comp), mildly \
         for the stable ones (Electronics, w_comp).\n\
         Scale caveat: at ~1/100 data volume, later checkpoints also simply \
         have MORE data, which inflates the gain on data-starved profiles \
         (visible on Electronics: ~2 actions/user). The paper's full-size \
         Electronics is volume-saturated, isolating the freshness effect; \
         the trendy-vs-stable contrast here is cleanest between the \
         similarly-sized e_comp (trendy, gains) and w_comp (stable, flat).\n",
    );
    out
}
