//! Tab. II — optima of the multinomial-family losses (SSM, InfoNCE,
//! SimCLR, row-bcNCE, col-bcNCE, bbcNCE), fitted on the toy joint as in
//! `table01`.

use crate::cli::Args;
use crate::convergence::{fit_nce, fit_r2, fit_ssm, nce_table, Gauge, Target, ToyJoint};
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_eval::Table;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut rng = StdRng::seed_from_u64(args.seed);
    let joint = ToyJoint::structured(12, 9, &mut rng);
    let (steps, batch) = if args.quick { (600, 96) } else { (2000, 128) };

    let mut table = Table::new(
        "Table II — optima of the Eq. 10 family and SSM (R² of fitted φ vs candidate optimum; designated ►)",
        &["loss", "log p(i|u)", "log p(u|i)", "PMI", "log p(u,i)", "designated wins"],
    );

    let mut rows: Vec<(String, unimatch_tensor::Tensor, Target, Gauge)> = Vec::new();
    let phi_ssm = fit_ssm(&joint, 64, steps, batch, 0.05, &mut rng);
    rows.push(("SSM w. n.".into(), phi_ssm, Target::ItemGivenUser, Gauge::PerRow));
    for (label, cfg, target, gauge) in nce_table() {
        let phi = fit_nce(&joint, &cfg, steps, batch, 0.05, &mut rng);
        rows.push((label.to_string(), phi, target, gauge));
    }

    let mut all_pass = true;
    for (label, phi, designated_t, gauge) in rows {
        let r2s: Vec<f64> = Target::ALL
            .iter()
            .map(|&t| fit_r2(&phi, &joint, t, gauge))
            .collect();
        let designated = Target::ALL
            .iter()
            .position(|&t| t == designated_t)
            .expect("designated in candidates");
        let wins = r2s
            .iter()
            .enumerate()
            .all(|(ix, &r)| ix == designated || r2s[designated] >= r - 1e-9);
        all_pass &= wins;
        let cells: Vec<String> = r2s
            .iter()
            .enumerate()
            .map(|(ix, r)| {
                let mark = if ix == designated { "►" } else { "" };
                format!("{mark}{r:.3}")
            })
            .collect();
        table.row(vec![
            label,
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            if wins { "yes".into() } else { "NO".into() },
        ]);
    }
    let note = "Gauges: row-only losses are compared after per-user centering \
                (their per-user offsets are unidentifiable), col-only after \
                per-item centering, two-sided after global centering.";
    let verdict = if all_pass {
        "Every loss converged to its Tab. II optimum."
    } else {
        "WARNING: at least one loss did not fit its designated optimum best."
    };
    format!("{}\n{note}\n{verdict}\n", table.render())
}
