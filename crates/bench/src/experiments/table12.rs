//! Tab. XII — the model-agnostic grid: 5 context extractors × 3
//! aggregators × 6 losses on the w_comp profile, NDCG@5 for IR and UT.

use crate::cli::Args;
use crate::experiments::multinomial_losses;
use unimatch_core::{run_experiment_on, ExperimentOptions, ExperimentSpec, PreparedData};
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;
use unimatch_models::{Aggregator, ContextExtractor};

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let profile = DatasetProfile::WComp;
    let scale = if args.quick { args.scale * 0.5 } else { args.scale };
    let prepared = PreparedData::synthetic(profile, scale, args.seed);

    let extractors: Vec<ContextExtractor> = if args.quick {
        vec![ContextExtractor::YoutubeDnn, ContextExtractor::Gru]
    } else {
        ContextExtractor::ALL.to_vec()
    };
    let aggregators: Vec<Aggregator> = if args.quick {
        vec![Aggregator::Mean]
    } else {
        Aggregator::REPORTED.to_vec()
    };
    let losses = multinomial_losses(64);

    let mut headers: Vec<String> = vec!["task".into(), "loss".into()];
    for e in &extractors {
        for a in &aggregators {
            headers.push(format!("{}/{}", e.label(), a.label()));
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(
        format!("Table XII — model-agnostic grid on {} (NDCG@{})", profile.name(), profile.top_n()),
        &header_refs,
    );

    // results[loss][cell] = (ir, ut)
    let mut results: Vec<Vec<(f64, f64)>> = vec![Vec::new(); losses.len()];
    for &extractor in &extractors {
        for &aggregator in &aggregators {
            for (li, (_, loss)) in losses.iter().enumerate() {
                let spec = ExperimentSpec {
                    extractor,
                    aggregator,
                    ..ExperimentSpec::baseline(profile, scale, args.seed, *loss)
                };
                let out = run_experiment_on(&spec, &ExperimentOptions::default(), &prepared);
                results[li].push((out.eval.ir.ndcg, out.eval.ut.ndcg));
            }
        }
    }

    for (task_ix, task) in ["IR", "UT"].iter().enumerate() {
        for (li, (label, _)) in losses.iter().enumerate() {
            let mut row = vec![task.to_string(), label.clone()];
            for cell in &results[li] {
                let v = if task_ix == 0 { cell.0 } else { cell.1 };
                row.push(format!("{:.2}", 100.0 * v));
            }
            t.row(row);
        }
    }
    format!(
        "{}\nPaper shape: model choice moves results far less than loss \
         choice; bbcNCE/row-bcNCE lead IR and bbcNCE/col-bcNCE lead UT in \
         nearly every column, motivating the cheap Youtube-DNN + mean \
         production default.\n",
        t.render()
    )
}
