//! Tabs. IV & V — the two training-record formats: multinomial records
//! carry pre-computed `log p(u)` / `log p(i)` bias terms; Bernoulli
//! records carry sampled negatives with 0/1 labels.

use crate::cli::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use unimatch_core::PreparedData;
use unimatch_data::batch::multinomial_batches;
use unimatch_data::{DatasetProfile, NegativeSampler, NegativeStrategy};
use unimatch_eval::Table;

fn seq_str(items: &[u32]) -> String {
    items.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(" ")
}

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let prepared = PreparedData::synthetic(DatasetProfile::Books, args.scale, args.seed);
    let mut rng = StdRng::seed_from_u64(args.seed);

    let mut t4 = Table::new(
        "Table IV — multinomial training records (in-batch negatives; bias terms precomputed)",
        &["user_id", "item_seq", "item_id", "log p(u)", "log p(i)"],
    );
    let batches = multinomial_batches(&prepared.split.train, &prepared.marginals, 8, 8, &mut rng);
    let b = &batches[0];
    for r in 0..5.min(b.items.len()) {
        let l = b.histories.l;
        let hist: Vec<u32> = b.histories.indices[r * l..(r + 1) * l]
            .iter()
            .zip(&b.histories.mask[r * l..(r + 1) * l])
            .filter(|(_, &m)| m > 0.5)
            .map(|(&i, _)| i)
            .collect();
        t4.row(vec![
            b.users[r].to_string(),
            seq_str(&hist),
            b.items[r].to_string(),
            format!("{:.5}", b.log_pu[r]),
            format!("{:.5}", b.log_pi[r]),
        ]);
    }

    let mut t5 = Table::new(
        "Table V — Bernoulli training records (explicit negatives, 1:1 ratio)",
        &["item_seq", "item_id", "label"],
    );
    let sampler = NegativeSampler::new(&prepared.split.train, prepared.log.num_items());
    let bce = sampler.bce_batches(NegativeStrategy::Uniform, 8, 8, &mut rng);
    let b = &bce[0];
    for r in 0..6.min(b.items.len()) {
        let l = b.histories.l;
        let hist: Vec<u32> = b.histories.indices[r * l..(r + 1) * l]
            .iter()
            .zip(&b.histories.mask[r * l..(r + 1) * l])
            .filter(|(_, &m)| m > 0.5)
            .map(|(&i, _)| i)
            .collect();
        t5.row(vec![seq_str(&hist), b.items[r].to_string(), format!("{}", b.labels[r] as u8)]);
    }

    format!("{}\n{}\n", t4.render(), t5.render())
}
