//! Tab. VI — train/test split statistics and evaluation-protocol
//! parameters per dataset.

use crate::cli::Args;
use unimatch_core::PreparedData;
use unimatch_data::stats::SplitStats;
use unimatch_data::DatasetProfile;
use unimatch_eval::Table;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut t = Table::new(
        format!("Table VI (ours, scale {}) — split statistics & protocol", args.scale),
        &[
            "Data",
            "train",
            "IR #test users",
            "IR item pool",
            "UT #test items",
            "UT user pool",
            "top-n",
            "#neg",
        ],
    );
    for profile in DatasetProfile::ALL {
        let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
        let s = SplitStats::from_split(
            &prepared.split,
            profile.top_n(),
            profile.num_eval_negatives(),
        );
        t.row(vec![
            profile.name().into(),
            s.train_records.to_string(),
            s.ir_test_users.to_string(),
            s.ir_item_pool.to_string(),
            s.ut_test_items.to_string(),
            s.ut_user_pool.to_string(),
            s.top_n.to_string(),
            s.negatives.to_string(),
        ]);
    }
    format!(
        "{}\nPaper reference (Books): 2,985,163 train / 43,867 IR test users / \
         67,967 item pool / 27,541 UT test items / 317,667 user pool; our \
         pools shrink with the generator scale but keep the orderings \
         (user pool >> test users; item pool >= test items).\n",
        t.render()
    )
}
