//! Tab. VII — hyperparameter grid search per dataset × distribution,
//! selected by validation NDCG.

use crate::cli::Args;
use unimatch_core::{grid_search, GridSpec, PreparedData};
use unimatch_data::{DatasetProfile, NegativeStrategy};
use unimatch_eval::{ProtocolConfig, Table};
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_train::TrainLoss;

/// Runs the experiment and renders the report.
pub fn run(args: &Args) -> String {
    let mut t = Table::new(
        "Table VII — grid-searched hyperparameters (selected on validation NDCG)",
        &["Data", "pathway", "batch", "temperature", "epochs", "val NDCG"],
    );
    let profiles: Vec<DatasetProfile> = if args.quick {
        vec![DatasetProfile::EComp]
    } else {
        DatasetProfile::ALL.to_vec()
    };
    for profile in profiles {
        let prepared = PreparedData::synthetic(profile, args.scale, args.seed);
        let protocol = ProtocolConfig {
            top_n: profile.top_n(),
            negatives: profile.num_eval_negatives(),
        };
        let grid = if args.quick {
            GridSpec { batch_sizes: vec![64], temperatures: vec![0.125, 0.25], epochs: vec![2], lr: 0.01 }
        } else {
            GridSpec {
                batch_sizes: vec![64, 128],
                temperatures: vec![0.1, 0.1667, 0.25, 0.5],
                epochs: vec![2, 3],
                lr: 0.01,
            }
        };
        for (pathway, loss) in [
            (
                "Multinomial",
                TrainLoss::Multinomial(MultinomialLoss::Nce(BiasConfig::bbcnce())),
            ),
            ("Bernoulli", TrainLoss::Bce(NegativeStrategy::Uniform)),
        ] {
            let points = grid_search(&prepared, loss, &grid, &protocol, args.seed);
            let best = points.first().expect("non-empty grid");
            t.row(vec![
                profile.name().into(),
                pathway.into(),
                best.hyper.batch_size.to_string(),
                format!("{:.4}", best.hyper.temperature),
                best.hyper.epochs.to_string(),
                format!("{:.4}", best.val_ndcg),
            ]);
        }
    }
    format!(
        "{}\nPaper's tuned cells (Tab. VII): multinomial always batch 64 with \
         2–3 epochs; Bernoulli needs larger batches and 6–10 epochs.\n",
        t.render()
    )
}
