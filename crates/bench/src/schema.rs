//! The machine-readable benchmark snapshot schema (`BENCH_*.json`) and
//! its validator/differ.
//!
//! A snapshot file is one JSON object:
//!
//! ```json
//! {
//!   "schema_version": 1,
//!   "suite": "train" | "ann" | "serve" | "load",
//!   "config": { "scale": 1.0, "seed": 42, "smoke": false, "threads": 0 },
//!   "metrics": {
//!     "<name>": { "value": 123.4, "unit": "us", "direction": "lower_better" },
//!     ...
//!   }
//! }
//! ```
//!
//! `value` must be a finite number; `direction` tells the differ which
//! way is a regression. The validator is hand-rolled over
//! [`unimatch_data::json::Json`] — the same zero-dependency codec the
//! checkpoints use — so CI needs nothing beyond the workspace itself.

use unimatch_data::json::Json;

/// Current snapshot schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// The suites a snapshot can describe. `train`/`ann`/`serve`/`rerank`/
/// `quant`/`shadow` come from `bench snapshot`; `load` from the
/// open-loop `loadgen` harness.
pub const SUITES: [&str; 7] = ["train", "ann", "serve", "rerank", "quant", "shadow", "load"];

/// Which way a metric improves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Larger is better (throughput, recall).
    HigherBetter,
    /// Smaller is better (latency, loss).
    LowerBetter,
}

impl Direction {
    /// The schema string for this direction.
    pub fn label(self) -> &'static str {
        match self {
            Direction::HigherBetter => "higher_better",
            Direction::LowerBetter => "lower_better",
        }
    }

    /// Parses a schema string.
    pub fn from_label(s: &str) -> Option<Direction> {
        match s {
            "higher_better" => Some(Direction::HigherBetter),
            "lower_better" => Some(Direction::LowerBetter),
            _ => None,
        }
    }
}

/// One measured metric.
#[derive(Clone, Debug)]
pub struct MetricPoint {
    /// The measured value (must be finite).
    pub value: f64,
    /// Unit label (`us`, `per_s`, `ratio`, `nats`, …).
    pub unit: &'static str,
    /// Which way improvement points.
    pub direction: Direction,
}

/// The run configuration recorded into a snapshot.
#[derive(Clone, Copy, Debug)]
pub struct SnapshotConfig {
    /// Dataset down-scaling factor.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Whether this was a cheap smoke run (CI) rather than a baseline.
    pub smoke: bool,
    /// Worker threads (0 = auto).
    pub threads: usize,
}

/// A complete benchmark snapshot for one suite.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Which suite this describes (`train`, `ann`, `serve`, `load`).
    pub suite: &'static str,
    /// The configuration the numbers were measured under.
    pub config: SnapshotConfig,
    /// Named metrics, in insertion order.
    pub metrics: Vec<(String, MetricPoint)>,
}

impl Snapshot {
    /// Starts an empty snapshot for `suite`.
    pub fn new(suite: &'static str, config: SnapshotConfig) -> Snapshot {
        assert!(SUITES.contains(&suite), "unknown suite {suite}");
        Snapshot { suite, config, metrics: Vec::new() }
    }

    /// Appends one metric.
    pub fn push(&mut self, name: &str, value: f64, unit: &'static str, direction: Direction) {
        assert!(value.is_finite(), "metric {name} is not finite: {value}");
        self.metrics.push((name.to_string(), MetricPoint { value, unit, direction }));
    }

    /// Serializes to the schema JSON.
    pub fn to_json(&self) -> Json {
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(name, m)| {
                    (
                        name.clone(),
                        Json::obj(vec![
                            ("value", Json::Num(m.value)),
                            ("unit", Json::str(m.unit)),
                            ("direction", Json::str(m.direction.label())),
                        ]),
                    )
                })
                .collect(),
        );
        Json::obj(vec![
            ("schema_version", Json::int(SCHEMA_VERSION as usize)),
            ("suite", Json::str(self.suite)),
            (
                "config",
                Json::obj(vec![
                    ("scale", Json::Num(self.config.scale)),
                    ("seed", Json::int(self.config.seed as usize)),
                    ("smoke", Json::Bool(self.config.smoke)),
                    ("threads", Json::int(self.config.threads)),
                ]),
            ),
            ("metrics", metrics),
        ])
    }
}

/// Validates a parsed snapshot document against the schema. Returns the
/// first problem found, phrased for a CI log.
pub fn validate(doc: &Json) -> Result<(), String> {
    let version = doc
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("schema_version missing or not an integer")?;
    if version != SCHEMA_VERSION {
        return Err(format!("schema_version {version}, expected {SCHEMA_VERSION}"));
    }
    let suite = doc.get("suite").and_then(Json::as_str).ok_or("suite missing or not a string")?;
    if !SUITES.contains(&suite) {
        return Err(format!("unknown suite {suite:?}, expected one of {SUITES:?}"));
    }
    let config = doc.get("config").ok_or("config object missing")?;
    config
        .get("scale")
        .and_then(Json::as_f64)
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or("config.scale missing or not a positive number")?;
    config.get("seed").and_then(Json::as_u64).ok_or("config.seed missing or not an integer")?;
    config.get("smoke").and_then(Json::as_bool).ok_or("config.smoke missing or not a bool")?;
    config
        .get("threads")
        .and_then(Json::as_u64)
        .ok_or("config.threads missing or not an integer")?;

    let metrics = match doc.get("metrics") {
        Some(Json::Obj(fields)) => fields,
        _ => return Err("metrics object missing".to_string()),
    };
    if metrics.is_empty() {
        return Err("metrics object is empty".to_string());
    }
    for (name, m) in metrics {
        let value = m
            .get("value")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("metric {name}: value missing or not a number"))?;
        if !value.is_finite() {
            return Err(format!("metric {name}: value {value} is not finite"));
        }
        m.get("unit")
            .and_then(Json::as_str)
            .filter(|u| !u.is_empty())
            .ok_or_else(|| format!("metric {name}: unit missing or empty"))?;
        let dir = m
            .get("direction")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("metric {name}: direction missing"))?;
        if Direction::from_label(dir).is_none() {
            return Err(format!(
                "metric {name}: direction {dir:?} is neither higher_better nor lower_better"
            ));
        }
    }
    Ok(())
}

/// One comparison row from [`diff`].
#[derive(Clone, Debug)]
pub struct DiffRow {
    /// Metric name.
    pub name: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed change in the *improvement* direction, as a fraction of the
    /// baseline (+0.10 = 10 % better, -0.10 = 10 % worse).
    pub improvement: f64,
    /// Whether the change is a regression beyond the tolerance.
    pub regressed: bool,
}

/// Compares two validated snapshots metric-by-metric. A metric regresses
/// when it moves against its declared direction by more than
/// `tolerance` (a fraction: 0.10 = 10 %). Metrics present on only one
/// side are skipped — adding or retiring a metric is not a regression.
pub fn diff(baseline: &Json, current: &Json, tolerance: f64) -> Result<Vec<DiffRow>, String> {
    validate(baseline).map_err(|e| format!("baseline invalid: {e}"))?;
    validate(current).map_err(|e| format!("current invalid: {e}"))?;
    let base_metrics = match baseline.get("metrics") {
        Some(Json::Obj(fields)) => fields,
        _ => unreachable!("validated above"),
    };
    let mut rows = Vec::new();
    for (name, bm) in base_metrics {
        let Some(cm) = current.get("metrics").and_then(|m| m.get(name)) else { continue };
        let base = bm.get("value").and_then(Json::as_f64).expect("validated");
        let cur = cm.get("value").and_then(Json::as_f64).expect("validated");
        let dir = bm
            .get("direction")
            .and_then(Json::as_str)
            .and_then(Direction::from_label)
            .expect("validated");
        let denom = base.abs().max(f64::MIN_POSITIVE);
        let improvement = match dir {
            Direction::HigherBetter => (cur - base) / denom,
            Direction::LowerBetter => (base - cur) / denom,
        };
        rows.push(DiffRow {
            name: name.clone(),
            baseline: base,
            current: cur,
            improvement,
            regressed: improvement < -tolerance,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(
            "ann",
            SnapshotConfig { scale: 1.0, seed: 42, smoke: true, threads: 0 },
        );
        s.push("hnsw_qps", 10_000.0, "per_s", Direction::HigherBetter);
        s.push("hnsw_search_p99_us", 150.0, "us", Direction::LowerBetter);
        s
    }

    #[test]
    fn round_trips_through_text_and_validates() {
        let text = sample().to_json().to_string();
        let doc = Json::parse(text.as_bytes()).expect("parse back");
        validate(&doc).expect("schema-valid");
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        let good = sample().to_json();
        for (mutation, expect) in [
            ("{\"schema_version\":2}", "schema_version"),
            ("{\"schema_version\":1,\"suite\":\"nope\"}", "suite"),
            ("{\"schema_version\":1,\"suite\":\"ann\"}", "config"),
        ] {
            let doc = Json::parse(mutation.as_bytes()).expect("parse");
            let err = validate(&doc).expect_err("must reject");
            assert!(err.contains(expect), "{err:?} should mention {expect}");
        }
        // non-finite metric value (written as null) must be rejected
        let mut text = good.to_string();
        text = text.replace("10000", "null");
        let doc = Json::parse(text.as_bytes()).expect("parse");
        assert!(validate(&doc).is_err(), "null metric value must fail validation");
    }

    #[test]
    fn every_declared_suite_is_accepted() {
        // `load` (the open-loop harness's suite) must be as first-class
        // as the three snapshot suites, end to end through the validator.
        for suite in SUITES {
            let mut s = Snapshot::new(
                suite,
                SnapshotConfig { scale: 1.0, seed: 7, smoke: true, threads: 2 },
            );
            s.push("sustained_qps", 123.0, "per_s", Direction::HigherBetter);
            let doc = Json::parse(s.to_json().to_string().as_bytes()).expect("parse");
            validate(&doc).unwrap_or_else(|e| panic!("suite {suite} rejected: {e}"));
        }
    }

    #[test]
    fn quant_suite_is_schema_first_class() {
        // the shape `bench snapshot` emits for the quantized-store suite:
        // per-format throughput plus recall@10 against the f32 oracle
        let mut s = Snapshot::new(
            "quant",
            SnapshotConfig { scale: 1.0, seed: 42, smoke: true, threads: 0 },
        );
        for fmt in ["f32", "f16", "i8"] {
            s.push(&format!("{fmt}_qps_b32"), 50_000.0, "per_s", Direction::HigherBetter);
            s.push(&format!("{fmt}_recall_at_10"), 0.99, "ratio", Direction::HigherBetter);
            s.push(&format!("{fmt}_bytes_per_row"), 64.0, "bytes", Direction::LowerBetter);
        }
        let doc = Json::parse(s.to_json().to_string().as_bytes()).expect("parse");
        validate(&doc).expect("quant snapshot validates");
        // a recall drop beyond tolerance must read as a regression
        let mut worse = s.clone();
        for (name, m) in &mut worse.metrics {
            if name == "i8_recall_at_10" {
                m.value = 0.80;
            }
        }
        let rows = diff(&s.to_json(), &worse.to_json(), 0.05).expect("diff");
        let r = rows.iter().find(|r| r.name == "i8_recall_at_10").expect("row");
        assert!(r.regressed, "recall 0.99 -> 0.80 must regress at 5% tolerance");
    }

    #[test]
    fn diff_flags_direction_aware_regressions() {
        let base = sample().to_json();
        let mut cur = sample();
        cur.metrics.clear();
        cur.push("hnsw_qps", 8_000.0, "per_s", Direction::HigherBetter); // 20 % worse
        cur.push("hnsw_search_p99_us", 140.0, "us", Direction::LowerBetter); // better
        let rows = diff(&base, &cur.to_json(), 0.10).expect("diff");
        let qps = rows.iter().find(|r| r.name == "hnsw_qps").expect("qps row");
        assert!(qps.regressed && qps.improvement < -0.19);
        let p99 = rows.iter().find(|r| r.name == "hnsw_search_p99_us").expect("p99 row");
        assert!(!p99.regressed && p99.improvement > 0.0);
        // generous tolerance silences the qps drop
        assert!(diff(&base, &cur.to_json(), 0.5).expect("diff").iter().all(|r| !r.regressed));
    }
}
