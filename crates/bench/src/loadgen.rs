//! Open-loop load generator for a running `unimatch-serve`.
//!
//! Closed-loop clients (like the `serve` snapshot suite) wait for each
//! response before sending the next request, so they can only ever
//! measure the server at the client's own pace and hide queueing
//! collapse entirely. This harness is **open-loop**: request *start
//! times* are drawn up front from a Poisson process at the target QPS
//! and workers fire at those times whether or not earlier requests have
//! returned. When the server falls behind, latency and shed rates grow
//! instead of the offered load silently shrinking — which is exactly the
//! signal capacity planning needs (see `docs/OPERATIONS.md`).
//!
//! The run is deterministic per seed on the client side: the arrival
//! schedule and every request body derive from `LoadgenOptions::seed`
//! and the request index alone.
//!
//! Results go two places:
//!
//! * raw per-request samples → exact percentiles in a schema-validated
//!   `BENCH_load.json` (the `load` suite of [`crate::schema`]), which
//!   `bench diff` can compare and gate;
//! * `unimatch-obs` histograms/counters (`unimatch_loadgen_*`), so a
//!   load run renders through the same text exposition as every other
//!   subsystem.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_data::json::Json;
use unimatch_obs as obs;

use crate::schema::{Direction, Snapshot, SnapshotConfig};
use crate::snapshot::{percentile_us, write_snapshot};

/// Which route(s) the generated requests hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteMix {
    /// `POST /recommend` only (item-tower searches).
    Recommend,
    /// `POST /target` only (user-tower searches).
    Target,
    /// Alternating recommend/target by request index.
    Mixed,
}

impl RouteMix {
    /// Parses a CLI name (`recommend`, `target`, `mixed`).
    pub fn parse(name: &str) -> Option<RouteMix> {
        match name {
            "recommend" => Some(RouteMix::Recommend),
            "target" => Some(RouteMix::Target),
            "mixed" => Some(RouteMix::Mixed),
            _ => None,
        }
    }
}

/// Options for one load run.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Address of the running server (`host:port`).
    pub addr: String,
    /// Offered load: the rate of the Poisson arrival process.
    pub qps: f64,
    /// Run duration — the schedule spans this many seconds.
    pub seconds: f64,
    /// Client worker threads. This bounds in-flight requests, so it must
    /// comfortably exceed `qps ×` the worst expected latency or the
    /// client itself becomes the bottleneck (visible as schedule lag).
    pub concurrency: usize,
    /// `k` requested from every search.
    pub k: usize,
    /// Route mix.
    pub route: RouteMix,
    /// Seed for the arrival schedule and request synthesis.
    pub seed: u64,
    /// Directory `BENCH_load.json` is written into.
    pub out_dir: PathBuf,
    /// Cheap CI variant, recorded into the snapshot config so `bench
    /// diff` never confuses a smoke run with a baseline.
    pub smoke: bool,
    /// Re-ranking workload shape: longer, more varied histories and
    /// alternating `k`, so a server running a `--rerank` chain is
    /// exercised across distinct query tags and overfetch sizes. Recorded
    /// into the snapshot (`rerank_mix`), so `bench diff` flags a
    /// comparison of mixed and plain runs instead of absorbing it.
    pub rerank_mix: bool,
}

/// One request's outcome. `status == 0` means the transport failed
/// (connect refused/reset) — under overload that is data, not a bug.
#[derive(Clone, Copy, Debug)]
struct Sample {
    status: u16,
    latency: Duration,
    /// How late past its scheduled start the request actually fired —
    /// nonzero lag means the *client* could not sustain the offered
    /// load, and the latency numbers understate server queueing.
    lag: Duration,
}

/// What the run measured, before snapshot serialization.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configured arrival rate.
    pub offered_qps: f64,
    /// 200-responses per second of wall clock.
    pub sustained_qps: f64,
    /// p50/p99/p99.9 latency over 200 responses, µs.
    pub latency_p50_us: f64,
    /// See [`LoadReport::latency_p50_us`].
    pub latency_p99_us: f64,
    /// See [`LoadReport::latency_p50_us`].
    pub latency_p999_us: f64,
    /// Fraction of requests answered 429 (queue full) or 503 (deadline /
    /// connection capacity).
    pub shed_rate: f64,
    /// Fraction of requests that failed any other way (transport errors,
    /// 4xx/5xx besides the shed statuses).
    pub error_rate: f64,
    /// p99 of how late requests fired past their schedule, µs.
    pub schedule_lag_p99_us: f64,
    /// Total requests attempted.
    pub requests: usize,
}

/// Runs the load test and writes `BENCH_load.json` into
/// `opts.out_dir`. Returns the report and the path written.
///
/// Fails if the server is unreachable at probe time or if not a single
/// request succeeds (percentiles over nothing help nobody).
pub fn run(opts: &LoadgenOptions) -> std::io::Result<(LoadReport, PathBuf)> {
    assert!(opts.qps > 0.0, "qps must be positive");
    assert!(opts.seconds > 0.0, "seconds must be positive");
    assert!(opts.concurrency > 0, "concurrency must be positive");
    // Probe /healthz: fails fast when nothing is listening, and the item
    // count bounds the ids request synthesis may use.
    let (status, body) = http_request(&opts.addr, "GET", "/healthz", b"")
        .map_err(|e| std::io::Error::other(format!("cannot reach {}: {e}", opts.addr)))?;
    if status != 200 {
        return Err(std::io::Error::other(format!("/healthz answered {status}")));
    }
    let health = Json::parse(&body)
        .map_err(|e| std::io::Error::other(format!("/healthz unparseable: {e}")))?;
    let num_items = health
        .get("items")
        .and_then(Json::as_u64)
        .filter(|&n| n > 0)
        .ok_or_else(|| std::io::Error::other("/healthz reports no items"))? as u32;

    let n_requests = (opts.qps * opts.seconds).ceil().max(1.0) as usize;
    let schedule = poisson_schedule(n_requests, opts.qps, opts.seed);

    obs::set_enabled(true);
    let next = AtomicUsize::new(0);
    let (tx, rx) = channel::<Sample>();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency {
            let tx = tx.clone();
            let (next, schedule) = (&next, &schedule);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_requests {
                    break;
                }
                let due = started + schedule[i];
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let lag = started.elapsed().saturating_sub(schedule[i]);
                let (path, request_body) = synthesize(opts, i, num_items);
                let t0 = Instant::now();
                let status = match http_request(&opts.addr, "POST", path, &request_body) {
                    Ok((status, _)) => status,
                    Err(_) => 0,
                };
                let sample = Sample { status, latency: t0.elapsed(), lag };
                record_obs(path, &sample);
                let _ = tx.send(sample);
            });
        }
    });
    drop(tx);
    let wall = started.elapsed().as_secs_f64();
    let samples: Vec<Sample> = rx.into_iter().collect();
    obs::set_enabled(false);
    assert_eq!(samples.len(), n_requests, "every scheduled request reports exactly once");

    let ok_lat: Vec<Duration> =
        samples.iter().filter(|s| s.status == 200).map(|s| s.latency).collect();
    if ok_lat.is_empty() {
        return Err(std::io::Error::other(
            "no request succeeded — is the checkpoint loaded and the queue bound nonzero?",
        ));
    }
    let shed = samples.iter().filter(|s| s.status == 429 || s.status == 503).count();
    let errors = samples.len() - ok_lat.len() - shed;
    let lags: Vec<Duration> = samples.iter().map(|s| s.lag).collect();
    std::fs::create_dir_all(&opts.out_dir)?;
    let report = LoadReport {
        offered_qps: opts.qps,
        sustained_qps: ok_lat.len() as f64 / wall,
        latency_p50_us: percentile_us(&ok_lat, 0.50),
        latency_p99_us: percentile_us(&ok_lat, 0.99),
        latency_p999_us: percentile_us(&ok_lat, 0.999),
        shed_rate: shed as f64 / samples.len() as f64,
        error_rate: errors as f64 / samples.len() as f64,
        schedule_lag_p99_us: percentile_us(&lags, 0.99),
        requests: samples.len(),
    };
    let path = write_snapshot(&to_snapshot(&report, opts), &opts.out_dir)?;
    Ok((report, path))
}

/// Arrival offsets of a Poisson process: i.i.d. exponential
/// inter-arrivals with rate `qps`, deterministic per seed.
fn poisson_schedule(n: usize, qps: f64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // u ∈ (0, 1]: never ln(0)
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// The request for index `i`: route by mix, ids derived from the index
/// with co-prime strides so consecutive requests don't share cache keys.
fn synthesize(opts: &LoadgenOptions, i: usize, num_items: u32) -> (&'static str, Vec<u8>) {
    let recommend = match opts.route {
        RouteMix::Recommend => true,
        RouteMix::Target => false,
        RouteMix::Mixed => i.is_multiple_of(2),
    };
    let i = i as u32;
    // The rerank mix defeats the embedding cache harder (longer, more
    // varied histories → distinct query tags for the exploration stage)
    // and alternates k so both overfetch sizes are measured.
    let (hist_len, stagger, k) = if opts.rerank_mix {
        (5u32, i % 11, if i.is_multiple_of(3) { opts.k * 2 } else { opts.k })
    } else {
        (3u32, 0, opts.k)
    };
    if recommend {
        let history: Vec<String> = (0..hist_len)
            .map(|j| ((i.wrapping_mul(7) + j * 3 + stagger) % num_items).to_string())
            .collect();
        let body = format!("{{\"history\":[{}],\"k\":{}}}", history.join(","), k);
        ("/recommend", body.into_bytes())
    } else {
        let body = format!("{{\"item\":{},\"k\":{}}}", i.wrapping_mul(5) % num_items, k);
        ("/target", body.into_bytes())
    }
}

/// Routes one sample into the process-global obs series. Handles are
/// fetched per call — fine at request rates, and keeps this free of
/// statics that would survive into unrelated tests.
fn record_obs(path: &'static str, sample: &Sample) {
    if !obs::enabled() {
        return;
    }
    let route = match path {
        "/recommend" => "route=\"recommend\"",
        _ => "route=\"target\"",
    };
    let class = match sample.status {
        200 => "status=\"ok\"",
        429 | 503 => "status=\"shed\"",
        0 => "status=\"transport\"",
        _ => "status=\"error\"",
    };
    obs::registry::counter_labeled("unimatch_loadgen_responses_total", class).inc();
    obs::registry::histogram("unimatch_loadgen_latency_us", route, obs::LATENCY_BOUNDS_US)
        .observe(sample.latency.as_micros() as u64);
}

fn to_snapshot(report: &LoadReport, opts: &LoadgenOptions) -> Snapshot {
    let config = SnapshotConfig {
        scale: 1.0,
        seed: opts.seed,
        smoke: opts.smoke,
        threads: opts.concurrency,
    };
    let mut snap = Snapshot::new("load", config);
    // offered_qps is configuration, but recording it makes every
    // BENCH_load.json self-describing and lets diff refuse to compare
    // runs at different offered loads (a changed value shows up as a
    // giant "regression" instead of being silently absorbed).
    snap.push("offered_qps", report.offered_qps, "per_s", Direction::HigherBetter);
    snap.push("sustained_qps", report.sustained_qps, "per_s", Direction::HigherBetter);
    snap.push("latency_p50_us", report.latency_p50_us, "us", Direction::LowerBetter);
    snap.push("latency_p99_us", report.latency_p99_us, "us", Direction::LowerBetter);
    snap.push("latency_p999_us", report.latency_p999_us, "us", Direction::LowerBetter);
    snap.push("shed_rate", report.shed_rate, "ratio", Direction::LowerBetter);
    snap.push("error_rate", report.error_rate, "ratio", Direction::LowerBetter);
    snap.push("schedule_lag_p99_us", report.schedule_lag_p99_us, "us", Direction::LowerBetter);
    // workload-shape guard, same reasoning as offered_qps above
    snap.push(
        "rerank_mix",
        if opts.rerank_mix { 1.0 } else { 0.0 },
        "flag",
        Direction::HigherBetter,
    );
    snap
}

/// One HTTP/1.1 request over a fresh connection (the server closes after
/// each response, so read-to-EOF is the framing).
fn http_request(
    addr: &str,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<(u16, Vec<u8>)> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header/body separator"))?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|_| std::io::Error::other("non-utf8 response head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("no status code in status line"))?;
    Ok((status, response[head_end + 4..].to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_deterministic_and_near_rate() {
        let a = poisson_schedule(2_000, 500.0, 9);
        let b = poisson_schedule(2_000, 500.0, 9);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are ordered");
        // 2000 arrivals at 500/s span ~4s; the mean of 2000 exponentials
        // concentrates well within ±25 %.
        let span = a.last().expect("nonempty").as_secs_f64();
        assert!((3.0..5.0).contains(&span), "span {span} far from expected 4s");
        assert_ne!(a, poisson_schedule(2_000, 500.0, 10), "different seed, different schedule");
    }

    #[test]
    fn synthesized_requests_cycle_routes_and_stay_in_vocabulary() {
        let opts = LoadgenOptions {
            addr: String::new(),
            qps: 1.0,
            seconds: 1.0,
            concurrency: 1,
            k: 7,
            route: RouteMix::Mixed,
            seed: 42,
            out_dir: PathBuf::from("."),
            smoke: true,
            rerank_mix: false,
        };
        let (p0, b0) = synthesize(&opts, 0, 13);
        let (p1, b1) = synthesize(&opts, 1, 13);
        // The mix flag must not perturb the plain workload — committed
        // BENCH_load baselines stay comparable across this change.
        let mixed = LoadgenOptions { rerank_mix: true, ..opts.clone() };
        assert_ne!(synthesize(&mixed, 0, 13).1, b0, "mix must reshape recommend bodies");
        let mixed_k = |i| {
            let (_, b) = synthesize(&mixed, i, 13);
            Json::parse(&b).expect("json").get("k").and_then(Json::as_u64).expect("k")
        };
        assert_eq!((mixed_k(0), mixed_k(2)), (14, 7), "mix alternates overfetch sizes");
        assert_eq!((p0, p1), ("/recommend", "/target"));
        let parse = |b: &[u8]| Json::parse(b).expect("request bodies are valid json");
        assert_eq!(parse(&b0).get("k").and_then(Json::as_u64), Some(7));
        let item = parse(&b1).get("item").and_then(Json::as_u64).expect("item id");
        assert!(item < 13, "ids stay inside the advertised vocabulary");
    }

    #[test]
    fn report_snapshot_is_schema_valid() {
        let report = LoadReport {
            offered_qps: 800.0,
            sustained_qps: 750.0,
            latency_p50_us: 900.0,
            latency_p99_us: 4_000.0,
            latency_p999_us: 9_000.0,
            shed_rate: 0.02,
            error_rate: 0.0,
            schedule_lag_p99_us: 120.0,
            requests: 8_000,
        };
        let opts = LoadgenOptions {
            addr: String::new(),
            qps: 800.0,
            seconds: 10.0,
            concurrency: 32,
            k: 10,
            route: RouteMix::Mixed,
            seed: 42,
            out_dir: PathBuf::from("."),
            smoke: false,
            rerank_mix: false,
        };
        let doc = to_snapshot(&report, &opts).to_json();
        crate::schema::validate(&doc).expect("load snapshot validates");
        let text = doc.to_string();
        assert!(text.contains("\"suite\":\"load\""), "{text}");
    }
}
