//! Open-loop load generator for a running `unimatch-serve`.
//!
//! Closed-loop clients (like the `serve` snapshot suite) wait for each
//! response before sending the next request, so they can only ever
//! measure the server at the client's own pace and hide queueing
//! collapse entirely. This harness is **open-loop**: request *start
//! times* are drawn up front from a Poisson process at the target QPS
//! and workers fire at those times whether or not earlier requests have
//! returned. When the server falls behind, latency and shed rates grow
//! instead of the offered load silently shrinking — which is exactly the
//! signal capacity planning needs (see `docs/OPERATIONS.md`).
//!
//! The run is deterministic per seed on the client side: the arrival
//! schedule, every request body, and every retry's backoff jitter derive
//! from `LoadgenOptions::seed` and the request index alone.
//!
//! With `retries > 0` the client is also a resilience reference
//! implementation: overload answers (429/503) and transport failures are
//! retried with exponential backoff plus deterministic jitter, a
//! `Retry-After` header overrides the computed backoff, every socket
//! carries a read/write timeout, and a per-target circuit breaker opens
//! after consecutive transport failures so a dead server is not hammered
//! by every scheduled arrival.
//!
//! Results go two places:
//!
//! * raw per-request samples → exact percentiles in a schema-validated
//!   `BENCH_load.json` (the `load` suite of [`crate::schema`]), which
//!   `bench diff` can compare and gate;
//! * `unimatch-obs` histograms/counters (`unimatch_loadgen_*`), so a
//!   load run renders through the same text exposition as every other
//!   subsystem.

use std::io::{Read as _, Write as _};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_data::json::Json;
use unimatch_obs as obs;

use crate::schema::{Direction, Snapshot, SnapshotConfig};
use crate::snapshot::{percentile_us, write_snapshot};

/// Which route(s) the generated requests hit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteMix {
    /// `POST /recommend` only (item-tower searches).
    Recommend,
    /// `POST /target` only (user-tower searches).
    Target,
    /// Alternating recommend/target by request index.
    Mixed,
}

impl RouteMix {
    /// Parses a CLI name (`recommend`, `target`, `mixed`).
    pub fn parse(name: &str) -> Option<RouteMix> {
        match name {
            "recommend" => Some(RouteMix::Recommend),
            "target" => Some(RouteMix::Target),
            "mixed" => Some(RouteMix::Mixed),
            _ => None,
        }
    }
}

/// Options for one load run.
#[derive(Clone, Debug)]
pub struct LoadgenOptions {
    /// Address of the running server (`host:port`).
    pub addr: String,
    /// Offered load: the rate of the Poisson arrival process.
    pub qps: f64,
    /// Run duration — the schedule spans this many seconds.
    pub seconds: f64,
    /// Client worker threads. This bounds in-flight requests, so it must
    /// comfortably exceed `qps ×` the worst expected latency or the
    /// client itself becomes the bottleneck (visible as schedule lag).
    pub concurrency: usize,
    /// `k` requested from every search.
    pub k: usize,
    /// Route mix.
    pub route: RouteMix,
    /// Seed for the arrival schedule and request synthesis.
    pub seed: u64,
    /// Directory `BENCH_load.json` is written into.
    pub out_dir: PathBuf,
    /// Cheap CI variant, recorded into the snapshot config so `bench
    /// diff` never confuses a smoke run with a baseline.
    pub smoke: bool,
    /// Re-ranking workload shape: longer, more varied histories and
    /// alternating `k`, so a server running a `--rerank` chain is
    /// exercised across distinct query tags and overfetch sizes. Recorded
    /// into the snapshot (`rerank_mix`), so `bench diff` flags a
    /// comparison of mixed and plain runs instead of absorbing it.
    pub rerank_mix: bool,
    /// Additional attempts per request after a shed (429/503) or
    /// transport failure. `0` reproduces the historical fire-once client
    /// byte for byte; retried attempts back off exponentially with
    /// deterministic jitter, honoring the server's `Retry-After`.
    pub retries: u32,
}

/// One request's outcome. `status == 0` means the transport failed
/// (connect refused/reset/timed out) — under overload that is data, not
/// a bug.
#[derive(Clone, Copy, Debug)]
struct Sample {
    status: u16,
    latency: Duration,
    /// How late past its scheduled start the request actually fired —
    /// nonzero lag means the *client* could not sustain the offered
    /// load, and the latency numbers understate server queueing.
    lag: Duration,
    /// Attempts beyond the first (0 without `--retries`). Latency spans
    /// them all, backoff included — the client-observed answer time.
    retries: u32,
    /// The circuit breaker was open and the request failed fast without
    /// touching the network (reported with `status == 0`).
    fast_failed: bool,
}

/// Socket read/write timeout on every client connection: a wedged server
/// surfaces as a transport failure (→ breaker food) instead of a worker
/// parked forever.
const CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

/// Base backoff before attempt 1; attempt `a` waits `2^a` times this,
/// plus up to 100 % deterministic jitter, unless `Retry-After` overrides.
const BACKOFF_BASE: Duration = Duration::from_millis(25);

/// Backoff ceiling, also applied to `Retry-After` hints — an open-loop
/// client that parks for 30 s has left its measurement window.
const BACKOFF_CAP: Duration = Duration::from_secs(2);

/// A per-target circuit breaker: opens after `threshold` *consecutive*
/// transport failures, fails fast for `cooldown`, then half-opens (the
/// next arrival probes the target; success closes, failure re-opens).
/// One instance guards one target address, shared by all workers.
struct CircuitBreaker {
    consecutive_failures: AtomicUsize,
    /// Micros since run start before which requests fail fast; 0 = closed.
    open_until_us: std::sync::atomic::AtomicU64,
    threshold: usize,
    cooldown: Duration,
}

impl CircuitBreaker {
    fn new() -> CircuitBreaker {
        CircuitBreaker {
            consecutive_failures: AtomicUsize::new(0),
            open_until_us: std::sync::atomic::AtomicU64::new(0),
            threshold: 5,
            cooldown: Duration::from_millis(500),
        }
    }

    /// Whether a request may go out `now` (half-open probes are allowed:
    /// the deadline passing admits exactly the traffic that re-tests).
    fn allow(&self, now: Instant, started: Instant) -> bool {
        let now_us = now.duration_since(started).as_micros() as u64;
        now_us >= self.open_until_us.load(Ordering::Relaxed)
    }

    fn record_success(&self) {
        self.consecutive_failures.store(0, Ordering::Relaxed);
        self.open_until_us.store(0, Ordering::Relaxed);
    }

    fn record_transport_failure(&self, now: Instant, started: Instant) {
        let n = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.threshold {
            let until = now.duration_since(started) + self.cooldown;
            self.open_until_us.store(until.as_micros() as u64, Ordering::Relaxed);
        }
    }
}

/// What the run measured, before snapshot serialization.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// The configured arrival rate.
    pub offered_qps: f64,
    /// 200-responses per second of wall clock.
    pub sustained_qps: f64,
    /// p50/p99/p99.9 latency over 200 responses, µs.
    pub latency_p50_us: f64,
    /// See [`LoadReport::latency_p50_us`].
    pub latency_p99_us: f64,
    /// See [`LoadReport::latency_p50_us`].
    pub latency_p999_us: f64,
    /// Fraction of requests answered 429 (queue full) or 503 (deadline /
    /// connection capacity).
    pub shed_rate: f64,
    /// Fraction of requests that failed any other way (transport errors,
    /// 4xx/5xx besides the shed statuses).
    pub error_rate: f64,
    /// p99 of how late requests fired past their schedule, µs.
    pub schedule_lag_p99_us: f64,
    /// Total requests attempted.
    pub requests: usize,
    /// Retry attempts per request (0.0 without `--retries`).
    pub retry_rate: f64,
    /// Fraction of requests failed fast by an open circuit breaker.
    pub breaker_fast_fail_rate: f64,
}

/// Runs the load test and writes `BENCH_load.json` into
/// `opts.out_dir`. Returns the report and the path written.
///
/// Fails if the server is unreachable at probe time or if not a single
/// request succeeds (percentiles over nothing help nobody).
pub fn run(opts: &LoadgenOptions) -> std::io::Result<(LoadReport, PathBuf)> {
    assert!(opts.qps > 0.0, "qps must be positive");
    assert!(opts.seconds > 0.0, "seconds must be positive");
    assert!(opts.concurrency > 0, "concurrency must be positive");
    // Probe /healthz: fails fast when nothing is listening, and the item
    // count bounds the ids request synthesis may use.
    let probe = http_request(&opts.addr, "GET", "/healthz", b"")
        .map_err(|e| std::io::Error::other(format!("cannot reach {}: {e}", opts.addr)))?;
    if probe.status != 200 {
        return Err(std::io::Error::other(format!("/healthz answered {}", probe.status)));
    }
    let health = Json::parse(&probe.body)
        .map_err(|e| std::io::Error::other(format!("/healthz unparseable: {e}")))?;
    let num_items = health
        .get("items")
        .and_then(Json::as_u64)
        .filter(|&n| n > 0)
        .ok_or_else(|| std::io::Error::other("/healthz reports no items"))? as u32;

    let n_requests = (opts.qps * opts.seconds).ceil().max(1.0) as usize;
    let schedule = poisson_schedule(n_requests, opts.qps, opts.seed);

    obs::set_enabled(true);
    let next = AtomicUsize::new(0);
    let breaker = CircuitBreaker::new();
    let (tx, rx) = channel::<Sample>();
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..opts.concurrency {
            let tx = tx.clone();
            let (next, schedule, breaker) = (&next, &schedule, &breaker);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_requests {
                    break;
                }
                let due = started + schedule[i];
                let now = Instant::now();
                if due > now {
                    std::thread::sleep(due - now);
                }
                let lag = started.elapsed().saturating_sub(schedule[i]);
                let (path, request_body) = synthesize(opts, i, num_items);
                let sample = send_with_retries(opts, path, &request_body, i, breaker, started, lag);
                record_obs(path, &sample);
                let _ = tx.send(sample);
            });
        }
    });
    drop(tx);
    let wall = started.elapsed().as_secs_f64();
    let samples: Vec<Sample> = rx.into_iter().collect();
    obs::set_enabled(false);
    assert_eq!(samples.len(), n_requests, "every scheduled request reports exactly once");

    let ok_lat: Vec<Duration> =
        samples.iter().filter(|s| s.status == 200).map(|s| s.latency).collect();
    if ok_lat.is_empty() {
        return Err(std::io::Error::other(
            "no request succeeded — is the checkpoint loaded and the queue bound nonzero?",
        ));
    }
    let shed = samples.iter().filter(|s| s.status == 429 || s.status == 503).count();
    let errors = samples.len() - ok_lat.len() - shed;
    let lags: Vec<Duration> = samples.iter().map(|s| s.lag).collect();
    let retries: u64 = samples.iter().map(|s| s.retries as u64).sum();
    let fast_fails = samples.iter().filter(|s| s.fast_failed).count();
    std::fs::create_dir_all(&opts.out_dir)?;
    let report = LoadReport {
        offered_qps: opts.qps,
        sustained_qps: ok_lat.len() as f64 / wall,
        latency_p50_us: percentile_us(&ok_lat, 0.50),
        latency_p99_us: percentile_us(&ok_lat, 0.99),
        latency_p999_us: percentile_us(&ok_lat, 0.999),
        shed_rate: shed as f64 / samples.len() as f64,
        error_rate: errors as f64 / samples.len() as f64,
        schedule_lag_p99_us: percentile_us(&lags, 0.99),
        requests: samples.len(),
        retry_rate: retries as f64 / samples.len() as f64,
        breaker_fast_fail_rate: fast_fails as f64 / samples.len() as f64,
    };
    let path = write_snapshot(&to_snapshot(&report, opts), &opts.out_dir)?;
    Ok((report, path))
}

/// Issues one scheduled request, retrying sheds (429/503) and transport
/// failures up to `opts.retries` extra attempts. Backoff is exponential
/// from [`BACKOFF_BASE`] with deterministic jitter derived from
/// `(seed, request index, attempt)`; a server `Retry-After` overrides it
/// (capped at [`BACKOFF_CAP`]). Transport failures feed the circuit
/// breaker; an open breaker fails the request fast without a connection.
fn send_with_retries(
    opts: &LoadgenOptions,
    path: &'static str,
    body: &[u8],
    index: usize,
    breaker: &CircuitBreaker,
    started: Instant,
    lag: Duration,
) -> Sample {
    let t0 = Instant::now();
    let mut attempt: u32 = 0;
    loop {
        if !breaker.allow(Instant::now(), started) {
            return Sample { status: 0, latency: t0.elapsed(), lag, retries: attempt, fast_failed: true };
        }
        let (status, retry_after) = match http_request(&opts.addr, "POST", path, body) {
            Ok(r) => {
                breaker.record_success();
                (r.status, r.retry_after)
            }
            Err(_) => {
                breaker.record_transport_failure(Instant::now(), started);
                (0, None)
            }
        };
        let retryable = matches!(status, 0 | 429 | 503);
        if !retryable || attempt >= opts.retries {
            return Sample { status, latency: t0.elapsed(), lag, retries: attempt, fast_failed: false };
        }
        let backoff = match retry_after {
            Some(secs) => Duration::from_secs(secs),
            None => {
                let exp = BACKOFF_BASE * 2u32.pow(attempt.min(16));
                let mut rng =
                    StdRng::seed_from_u64(opts.seed ^ (index as u64) << 8 ^ attempt as u64);
                exp + Duration::from_micros(rng.gen_range(0..=exp.as_micros() as u64))
            }
        };
        std::thread::sleep(backoff.min(BACKOFF_CAP));
        attempt += 1;
    }
}

/// Arrival offsets of a Poisson process: i.i.d. exponential
/// inter-arrivals with rate `qps`, deterministic per seed.
fn poisson_schedule(n: usize, qps: f64, seed: u64) -> Vec<Duration> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..n)
        .map(|_| {
            // u ∈ (0, 1]: never ln(0)
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / qps;
            Duration::from_secs_f64(t)
        })
        .collect()
}

/// The request for index `i`: route by mix, ids derived from the index
/// with co-prime strides so consecutive requests don't share cache keys.
fn synthesize(opts: &LoadgenOptions, i: usize, num_items: u32) -> (&'static str, Vec<u8>) {
    let recommend = match opts.route {
        RouteMix::Recommend => true,
        RouteMix::Target => false,
        RouteMix::Mixed => i.is_multiple_of(2),
    };
    let i = i as u32;
    // The rerank mix defeats the embedding cache harder (longer, more
    // varied histories → distinct query tags for the exploration stage)
    // and alternates k so both overfetch sizes are measured.
    let (hist_len, stagger, k) = if opts.rerank_mix {
        (5u32, i % 11, if i.is_multiple_of(3) { opts.k * 2 } else { opts.k })
    } else {
        (3u32, 0, opts.k)
    };
    if recommend {
        let history: Vec<String> = (0..hist_len)
            .map(|j| ((i.wrapping_mul(7) + j * 3 + stagger) % num_items).to_string())
            .collect();
        let body = format!("{{\"history\":[{}],\"k\":{}}}", history.join(","), k);
        ("/recommend", body.into_bytes())
    } else {
        let body = format!("{{\"item\":{},\"k\":{}}}", i.wrapping_mul(5) % num_items, k);
        ("/target", body.into_bytes())
    }
}

/// Routes one sample into the process-global obs series. Handles are
/// fetched per call — fine at request rates, and keeps this free of
/// statics that would survive into unrelated tests.
fn record_obs(path: &'static str, sample: &Sample) {
    if !obs::enabled() {
        return;
    }
    let route = match path {
        "/recommend" => "route=\"recommend\"",
        _ => "route=\"target\"",
    };
    let class = match sample.status {
        200 => "status=\"ok\"",
        429 | 503 => "status=\"shed\"",
        0 => "status=\"transport\"",
        _ => "status=\"error\"",
    };
    obs::registry::counter_labeled("unimatch_loadgen_responses_total", class).inc();
    obs::registry::histogram("unimatch_loadgen_latency_us", route, obs::LATENCY_BOUNDS_US)
        .observe(sample.latency.as_micros() as u64);
}

fn to_snapshot(report: &LoadReport, opts: &LoadgenOptions) -> Snapshot {
    let config = SnapshotConfig {
        scale: 1.0,
        seed: opts.seed,
        smoke: opts.smoke,
        threads: opts.concurrency,
    };
    let mut snap = Snapshot::new("load", config);
    // offered_qps is configuration, but recording it makes every
    // BENCH_load.json self-describing and lets diff refuse to compare
    // runs at different offered loads (a changed value shows up as a
    // giant "regression" instead of being silently absorbed).
    snap.push("offered_qps", report.offered_qps, "per_s", Direction::HigherBetter);
    snap.push("sustained_qps", report.sustained_qps, "per_s", Direction::HigherBetter);
    snap.push("latency_p50_us", report.latency_p50_us, "us", Direction::LowerBetter);
    snap.push("latency_p99_us", report.latency_p99_us, "us", Direction::LowerBetter);
    snap.push("latency_p999_us", report.latency_p999_us, "us", Direction::LowerBetter);
    snap.push("shed_rate", report.shed_rate, "ratio", Direction::LowerBetter);
    snap.push("error_rate", report.error_rate, "ratio", Direction::LowerBetter);
    snap.push("schedule_lag_p99_us", report.schedule_lag_p99_us, "us", Direction::LowerBetter);
    // workload-shape guard, same reasoning as offered_qps above
    snap.push(
        "rerank_mix",
        if opts.rerank_mix { 1.0 } else { 0.0 },
        "flag",
        Direction::HigherBetter,
    );
    snap.push("retry_rate", report.retry_rate, "ratio", Direction::LowerBetter);
    snap.push(
        "breaker_fast_fail_rate",
        report.breaker_fast_fail_rate,
        "ratio",
        Direction::LowerBetter,
    );
    snap
}

/// A parsed client-side response: status, the `Retry-After` hint when
/// the server sent one, and the body.
struct HttpResponse {
    status: u16,
    retry_after: Option<u64>,
    body: Vec<u8>,
}

/// One HTTP/1.1 request over a fresh connection (the server closes after
/// each response, so read-to-EOF is the framing). Both socket directions
/// carry [`CLIENT_TIMEOUT`], so a wedged server turns into an `Err`
/// instead of a parked worker.
fn http_request(addr: &str, method: &str, path: &str, body: &[u8]) -> std::io::Result<HttpResponse> {
    let mut stream = std::net::TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    stream.write_all(
        format!(
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .as_bytes(),
    )?;
    stream.write_all(body)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("response without header/body separator"))?;
    let head = std::str::from_utf8(&response[..head_end])
        .map_err(|_| std::io::Error::other("non-utf8 response head"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("no status code in status line"))?;
    let retry_after = head.lines().find_map(|line| {
        let (name, value) = line.split_once(':')?;
        name.eq_ignore_ascii_case("retry-after").then(|| value.trim().parse().ok())?
    });
    Ok(HttpResponse { status, retry_after, body: response[head_end + 4..].to_vec() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_sorted_deterministic_and_near_rate() {
        let a = poisson_schedule(2_000, 500.0, 9);
        let b = poisson_schedule(2_000, 500.0, 9);
        assert_eq!(a, b, "same seed, same schedule");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals are ordered");
        // 2000 arrivals at 500/s span ~4s; the mean of 2000 exponentials
        // concentrates well within ±25 %.
        let span = a.last().expect("nonempty").as_secs_f64();
        assert!((3.0..5.0).contains(&span), "span {span} far from expected 4s");
        assert_ne!(a, poisson_schedule(2_000, 500.0, 10), "different seed, different schedule");
    }

    #[test]
    fn synthesized_requests_cycle_routes_and_stay_in_vocabulary() {
        let opts = LoadgenOptions {
            addr: String::new(),
            qps: 1.0,
            seconds: 1.0,
            concurrency: 1,
            k: 7,
            route: RouteMix::Mixed,
            seed: 42,
            out_dir: PathBuf::from("."),
            smoke: true,
            rerank_mix: false,
            retries: 0,
        };
        let (p0, b0) = synthesize(&opts, 0, 13);
        let (p1, b1) = synthesize(&opts, 1, 13);
        // The mix flag must not perturb the plain workload — committed
        // BENCH_load baselines stay comparable across this change.
        let mixed = LoadgenOptions { rerank_mix: true, ..opts.clone() };
        assert_ne!(synthesize(&mixed, 0, 13).1, b0, "mix must reshape recommend bodies");
        let mixed_k = |i| {
            let (_, b) = synthesize(&mixed, i, 13);
            Json::parse(&b).expect("json").get("k").and_then(Json::as_u64).expect("k")
        };
        assert_eq!((mixed_k(0), mixed_k(2)), (14, 7), "mix alternates overfetch sizes");
        assert_eq!((p0, p1), ("/recommend", "/target"));
        let parse = |b: &[u8]| Json::parse(b).expect("request bodies are valid json");
        assert_eq!(parse(&b0).get("k").and_then(Json::as_u64), Some(7));
        let item = parse(&b1).get("item").and_then(Json::as_u64).expect("item id");
        assert!(item < 13, "ids stay inside the advertised vocabulary");
    }

    #[test]
    fn report_snapshot_is_schema_valid() {
        let report = LoadReport {
            offered_qps: 800.0,
            sustained_qps: 750.0,
            latency_p50_us: 900.0,
            latency_p99_us: 4_000.0,
            latency_p999_us: 9_000.0,
            shed_rate: 0.02,
            error_rate: 0.0,
            schedule_lag_p99_us: 120.0,
            requests: 8_000,
            retry_rate: 0.01,
            breaker_fast_fail_rate: 0.0,
        };
        let opts = LoadgenOptions {
            addr: String::new(),
            qps: 800.0,
            seconds: 10.0,
            concurrency: 32,
            k: 10,
            route: RouteMix::Mixed,
            seed: 42,
            out_dir: PathBuf::from("."),
            smoke: false,
            rerank_mix: false,
            retries: 2,
        };
        let doc = to_snapshot(&report, &opts).to_json();
        crate::schema::validate(&doc).expect("load snapshot validates");
        let text = doc.to_string();
        assert!(text.contains("\"suite\":\"load\""), "{text}");
        assert!(text.contains("retry_rate"), "{text}");
    }

    #[test]
    fn breaker_opens_after_consecutive_failures_and_half_opens() {
        let b = CircuitBreaker::new();
        let t0 = Instant::now();
        for _ in 0..b.threshold - 1 {
            b.record_transport_failure(t0, t0);
        }
        assert!(b.allow(t0, t0), "below the threshold the breaker stays closed");
        b.record_transport_failure(t0, t0);
        assert!(!b.allow(t0, t0), "threshold consecutive failures open the breaker");
        // past the cooldown the next request is allowed through (half-open)
        let later = t0 + b.cooldown + Duration::from_millis(1);
        assert!(b.allow(later, t0), "cooldown expiry admits a probe");
        // a success closes it fully and clears the failure streak
        b.record_success();
        assert!(b.allow(t0, t0));
        b.record_transport_failure(t0, t0);
        assert!(b.allow(t0, t0), "one failure after reset does not re-open");
    }
}
