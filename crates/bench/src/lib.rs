//! # unimatch-bench
//!
//! The experiment harness regenerating every table and figure of the
//! UniMatch paper's evaluation (see `DESIGN.md` §4 for the index), plus
//! criterion performance benchmarks.
//!
//! Each `src/bin/tableNN.rs` binary prints the paper's table shape from
//! freshly trained models; `--bin all_experiments` runs the full suite and
//! writes `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod cli;
pub mod convergence;
pub mod experiments;
pub mod loadgen;
pub mod schema;
pub mod snapshot;

pub use cli::Args;
