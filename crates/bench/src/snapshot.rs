//! The `bench snapshot` runner: measures the six hot paths — training,
//! ANN retrieval, post-retrieval re-ranking, online serving, the
//! quantized-store kernel, and the shadow deployment plane — and
//! emits one schema-validated `BENCH_<suite>.json` per suite (see
//! [`crate::schema`]).
//!
//! Snapshots are the repo's perf-regression mechanism: a baseline
//! recorded on a reference machine is committed at the repo root, and CI
//! re-runs a `--smoke` snapshot to validate the schema/pipeline, while
//! developers compare full runs with `bench diff`. Latency percentiles
//! come from raw per-operation samples captured here (exact), not from
//! histogram buckets (coarse).

use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_ann::{
    AnnIndex, BruteForceIndex, EmbeddingStore, HnswConfig, HnswIndex, IvfConfig, IvfIndex,
    RowFormat,
};
use unimatch_core::persist::save_model;
use unimatch_core::{ModelHandle, UniMatch, UniMatchConfig};
use unimatch_data::batch::multinomial_batches;
use unimatch_data::json::Json;
use unimatch_data::windowing::{build_samples, WindowConfig};
use unimatch_data::{DatasetProfile, Marginals};
use unimatch_losses::{BiasConfig, MultinomialLoss};
use unimatch_models::{ModelConfig, TwoTower};
use unimatch_obs as obs;
use unimatch_rerank::{query_tag, BusinessRules, RerankChain, RerankContext};
use unimatch_serve::{ServeConfig, Server, ShadowSpec};
use unimatch_train::{AdamConfig, TrainConfig, TrainLoss, Trainer};

use crate::schema::{validate, Direction, Snapshot, SnapshotConfig};

/// Options for a snapshot run.
#[derive(Clone, Debug)]
pub struct SnapshotOptions {
    /// Dataset down-scaling factor (multiplies the suite's base sizes).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Cheap CI variant: tiny corpora, enough to exercise every code
    /// path and validate the schema, not enough to be a stable baseline.
    pub smoke: bool,
    /// Worker threads (0 = auto); recorded into the snapshot config.
    pub threads: usize,
    /// Directory the `BENCH_*.json` files are written into.
    pub out_dir: PathBuf,
}

impl SnapshotOptions {
    fn config(&self) -> SnapshotConfig {
        SnapshotConfig {
            scale: self.scale,
            seed: self.seed,
            smoke: self.smoke,
            threads: self.threads,
        }
    }
}

/// Runs all six suites and writes their snapshot files. Returns the
/// paths written. Enables observability for the duration — a snapshot
/// is exactly the place to exercise the instrumented paths.
pub fn run_all(opts: &SnapshotOptions) -> std::io::Result<Vec<PathBuf>> {
    obs::set_enabled(true);
    let snaps = [
        run_train(opts),
        run_ann(opts),
        run_rerank(opts),
        run_serve(opts),
        run_quant(opts),
        run_shadow(opts),
    ];
    obs::set_enabled(false);
    let mut paths = Vec::new();
    for snap in snaps {
        paths.push(write_snapshot(&snap, &opts.out_dir)?);
    }
    Ok(paths)
}

/// Serializes `snap`, writes `BENCH_<suite>.json` into `dir`, then reads
/// the file back and re-validates it — what CI consumes is what is
/// checked, not the in-memory value.
pub fn write_snapshot(snap: &Snapshot, dir: &Path) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{}.json", snap.suite));
    let doc = snap.to_json();
    validate(&doc).map_err(|e| std::io::Error::other(format!("snapshot invalid: {e}")))?;
    let mut text = doc.to_string();
    text.push('\n');
    std::fs::File::create(&path)?.write_all(text.as_bytes())?;
    let mut readback = Vec::new();
    std::fs::File::open(&path)?.read_to_end(&mut readback)?;
    let reparsed = Json::parse(&readback)
        .map_err(|e| std::io::Error::other(format!("written snapshot unparseable: {e}")))?;
    validate(&reparsed)
        .map_err(|e| std::io::Error::other(format!("written snapshot invalid: {e}")))?;
    Ok(path)
}

/// Exact percentile from raw samples (nearest-rank on a sorted copy).
pub(crate) fn percentile_us(samples: &[Duration], q: f64) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    let mut us: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e6).collect();
    us.sort_by(|a, b| a.partial_cmp(b).expect("finite durations"));
    let rank = ((q * (us.len() - 1) as f64).round() as usize).min(us.len() - 1);
    us[rank]
}

/// Seeded row-major unit vectors, the ANN suite's corpus.
fn unit_cloud(n: usize, dim: usize, rng: &mut StdRng) -> Vec<f32> {
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

/// Measures the training hot path: per-step latency, record throughput,
/// and loss on a seeded bbcNCE run.
pub fn run_train(opts: &SnapshotOptions) -> Snapshot {
    let data_scale = (if opts.smoke { 0.08 } else { 0.4 }) * opts.scale;
    let months = if opts.smoke { 2 } else { 4 };
    let epochs = if opts.smoke { 1 } else { 2 };
    let log = DatasetProfile::EComp.generate(data_scale, months).filter_min_interactions(2);
    let samples = build_samples(&log, &WindowConfig { max_seq_len: 16, min_history: 1 });
    let marginals = Marginals::from_samples(&samples, log.num_users(), log.num_items());
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = TwoTower::new(
        ModelConfig::youtube_dnn_mean(log.num_items() as usize, 16, 0.15),
        &mut rng,
    );
    let kind = MultinomialLoss::Nce(BiasConfig::bbcnce());
    let cfg = TrainConfig {
        batch_size: 64,
        epochs_per_month: epochs,
        max_seq_len: 16,
        optimizer: AdamConfig::default(),
        loss: TrainLoss::Multinomial(kind),
        seed: opts.seed,
    };
    let mut trainer = Trainer::new(model, cfg);

    // Drive steps directly (not train_epochs) so each one is timed with
    // its own Instant pair — exact p50/p99, no histogram coarseness.
    let mut step_lat = Vec::new();
    let started = Instant::now();
    for _ in 0..epochs {
        let batches = multinomial_batches(&samples, &marginals, 64, 16, &mut rng);
        for b in &batches {
            let t0 = Instant::now();
            trainer.step_multinomial(b, &kind, None).expect("training step failed");
            step_lat.push(t0.elapsed());
        }
    }
    let wall = started.elapsed().as_secs_f64();
    let stats = *trainer.stats();

    let mut snap = Snapshot::new("train", opts.config());
    snap.push("steps_per_s", stats.steps as f64 / wall, "per_s", Direction::HigherBetter);
    snap.push(
        "records_per_s",
        stats.records_consumed as f64 / wall,
        "per_s",
        Direction::HigherBetter,
    );
    snap.push("step_p50_us", percentile_us(&step_lat, 0.50), "us", Direction::LowerBetter);
    snap.push("step_p99_us", percentile_us(&step_lat, 0.99), "us", Direction::LowerBetter);
    snap.push("mean_loss", stats.mean_loss() as f64, "nats", Direction::LowerBetter);
    snap.push("final_grad_norm", obs::registry::gauge("unimatch_train_grad_norm").get(), "l2", Direction::LowerBetter);
    snap
}

/// Measures the retrieval hot path: build time, search latency/QPS, and
/// recall@10 versus the brute-force oracle for HNSW and IVF.
pub fn run_ann(opts: &SnapshotOptions) -> Snapshot {
    let n = (((if opts.smoke { 1_500.0 } else { 20_000.0 }) * opts.scale) as usize).max(200);
    let dim = 16;
    let k = 10;
    let n_queries = if opts.smoke { 30 } else { 200 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let data = unit_cloud(n, dim, &mut rng);
    let queries = unit_cloud(n_queries, dim, &mut rng);

    // One store, three indexes: every backend reads the same aligned arena.
    let store = std::sync::Arc::new(EmbeddingStore::from_vec(data, dim));
    let bf = BruteForceIndex::over(store.clone());
    let t0 = Instant::now();
    let hnsw = HnswIndex::build_over(
        store.clone(),
        HnswConfig { m: 16, ef_construction: 100, ef_search: 100 },
        &mut rng,
    );
    let hnsw_build = t0.elapsed();
    let t0 = Instant::now();
    let ivf = IvfIndex::build_over(
        store,
        IvfConfig { nlist: 32, nprobe: 12, kmeans_iters: 8 },
        &mut rng,
    );
    let ivf_build = t0.elapsed();

    let exact: Vec<std::collections::HashSet<u32>> = queries
        .chunks(dim)
        .map(|q| bf.search(q, k).iter().map(|h| h.id).collect())
        .collect();

    let mut snap = Snapshot::new("ann", opts.config());
    snap.push("hnsw_build_us", hnsw_build.as_secs_f64() * 1e6, "us", Direction::LowerBetter);
    snap.push("ivf_build_us", ivf_build.as_secs_f64() * 1e6, "us", Direction::LowerBetter);

    let suites: [(&str, &dyn AnnIndex); 3] = [("bruteforce", &bf), ("hnsw", &hnsw), ("ivf", &ivf)];
    for (name, index) in suites {
        let mut lat = Vec::with_capacity(n_queries);
        let mut recalled = 0usize;
        let started = Instant::now();
        for (qi, q) in queries.chunks(dim).enumerate() {
            let t0 = Instant::now();
            let hits = index.search(q, k);
            lat.push(t0.elapsed());
            recalled += hits.iter().filter(|h| exact[qi].contains(&h.id)).count();
        }
        let wall = started.elapsed().as_secs_f64();
        let recall = recalled as f64 / (n_queries * k) as f64;
        snap.push(
            &format!("{name}_search_p50_us"),
            percentile_us(&lat, 0.50),
            "us",
            Direction::LowerBetter,
        );
        snap.push(
            &format!("{name}_search_p99_us"),
            percentile_us(&lat, 0.99),
            "us",
            Direction::LowerBetter,
        );
        snap.push(&format!("{name}_qps"), n_queries as f64 / wall, "per_s", Direction::HigherBetter);
        snap.push(&format!("{name}_recall_at_{k}"), recall, "ratio", Direction::HigherBetter);
    }

    // The engine's batched entry point at the batch sizes the serving tier
    // actually sees: single request, serving micro-batch, offline chunk.
    // "exact" goes through the blocked kernel; "hnsw" through the
    // parallel per-query fan-out.
    let batched_suites: [(&str, &dyn AnnIndex); 2] = [("exact", &bf), ("hnsw", &hnsw)];
    for (name, index) in batched_suites {
        for batch in [1usize, 32, 256] {
            let mut batched = Vec::with_capacity(batch * dim);
            for qi in 0..batch {
                batched.extend_from_slice(&queries[(qi % n_queries) * dim..][..dim]);
            }
            let reps = ((if opts.smoke { 64 } else { 1_024 }) / batch).max(1);
            let started = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(index.search_batch(&batched, k));
            }
            let wall = started.elapsed().as_secs_f64();
            snap.push(
                &format!("{name}_qps_b{batch}"),
                (reps * batch) as f64 / wall,
                "per_s",
                Direction::HigherBetter,
            );
        }
    }
    snap
}

/// Measures the quantized-store hot path: for every row encoding, exact
/// top-k over the same seeded corpus through the fused dequant-dot
/// kernel — throughput at serving batch sizes, recall@10 against the
/// f32 exact oracle, and the per-row footprint the encoding buys.
pub fn run_quant(opts: &SnapshotOptions) -> Snapshot {
    let n = (((if opts.smoke { 2_000.0 } else { 20_000.0 }) * opts.scale) as usize).max(200);
    let dim = 16;
    let k = 10;
    let n_queries = if opts.smoke { 30 } else { 200 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let f32_store =
        std::sync::Arc::new(EmbeddingStore::from_vec(unit_cloud(n, dim, &mut rng), dim));
    let queries = unit_cloud(n_queries, dim, &mut rng);

    let oracle: Vec<std::collections::HashSet<u32>> = {
        let bf = BruteForceIndex::over(f32_store.clone());
        queries.chunks(dim).map(|q| bf.search(q, k).iter().map(|h| h.id).collect()).collect()
    };

    let mut snap = Snapshot::new("quant", opts.config());
    for format in RowFormat::ALL {
        let store = if format == RowFormat::F32 {
            f32_store.clone()
        } else {
            std::sync::Arc::new(f32_store.quantize(format))
        };
        let index = BruteForceIndex::over(store);
        let name = format.name();

        let mut recalled = 0usize;
        for (qi, q) in queries.chunks(dim).enumerate() {
            recalled += index.search(q, k).iter().filter(|h| oracle[qi].contains(&h.id)).count();
        }
        snap.push(
            &format!("{name}_recall_at_{k}"),
            recalled as f64 / (n_queries * k) as f64,
            "ratio",
            Direction::HigherBetter,
        );

        for batch in [1usize, 32] {
            let mut batched = Vec::with_capacity(batch * dim);
            for qi in 0..batch {
                batched.extend_from_slice(&queries[(qi % n_queries) * dim..][..dim]);
            }
            let reps = ((if opts.smoke { 64 } else { 1_024 }) / batch).max(1);
            let started = Instant::now();
            for _ in 0..reps {
                std::hint::black_box(index.search_batch(&batched, k));
            }
            let wall = started.elapsed().as_secs_f64();
            snap.push(
                &format!("{name}_qps_b{batch}"),
                (reps * batch) as f64 / wall,
                "per_s",
                Direction::HigherBetter,
            );
        }

        // code bytes per row, plus i8's per-row [scale, zero] sidecar pair
        let row_bytes = dim * format.bytes_per_value()
            + if format == RowFormat::I8 { 2 * std::mem::size_of::<f32>() } else { 0 };
        snap.push(&format!("{name}_bytes_per_row"), row_bytes as f64, "bytes", Direction::LowerBetter);
    }
    snap
}

/// Measures the post-retrieval re-ranking hot path: per-stage `apply`
/// latency over realistic candidate lists, the full production chain,
/// and the end-to-end cost of retrieve-then-rerank relative to a raw
/// top-k fetch (`chain_overhead_ratio`).
pub fn run_rerank(opts: &SnapshotOptions) -> Snapshot {
    let n = (((if opts.smoke { 2_000.0 } else { 20_000.0 }) * opts.scale) as usize).max(200);
    let dim = 16;
    let k = 10;
    let n_queries = if opts.smoke { 30 } else { 200 };
    let reps = if opts.smoke { 2 } else { 8 };
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let store = std::sync::Arc::new(EmbeddingStore::from_vec(unit_cloud(n, dim, &mut rng), dim));
    let queries = unit_cloud(n_queries, dim, &mut rng);
    let index = BruteForceIndex::over(store.clone());

    // Zipf log-marginals and a production-shaped rules sidecar: every
    // item categorized (17 categories), a sparse deny list.
    let total: f64 = (0..n).map(|r| 1.0 / (r + 1) as f64).sum();
    let log_p: Vec<f32> =
        (0..n).map(|r| ((1.0 / (r + 1) as f64) / total).ln() as f32).collect();
    let categories: Vec<String> =
        (0..n as u32).map(|id| format!("[{},{}]", id, id % 17)).collect();
    let deny: Vec<String> = (0..n as u32).step_by(97).map(|id| id.to_string()).collect();
    let rules_json = format!(
        "{{\"deny\":[{}],\"categories\":[{}]}}",
        deny.join(","),
        categories.join(",")
    );
    let rules = BusinessRules::parse(&Json::parse(rules_json.as_bytes()).expect("rules json"))
        .expect("rules parse");

    let mut snap = Snapshot::new("rerank", opts.config());
    let chains: [(&str, &str); 6] = [
        ("debias", "debias@0.5"),
        ("mmr", "mmr@0.3"),
        ("filter", "filter"),
        ("cap", "cap:category=3"),
        ("explore", "explore@0.1"),
        ("chain", "debias@0.5,mmr@0.3,filter,cap:category=3,explore@0.1"),
    ];
    for (name, spec) in chains {
        let chain = RerankChain::parse(spec).expect("benchmark spec is valid");
        let mut lat = Vec::with_capacity(n_queries * reps);
        for q in queries.chunks(dim) {
            let fetched = index.search(q, chain.fetch_k(k));
            let ctx = RerankContext {
                store: Some(&store),
                log_marginals: Some(&log_p),
                external_ids: None,
                rules: Some(&rules),
                seed: opts.seed,
                query_tag: query_tag(q),
                k,
            };
            for _ in 0..reps {
                let hits = fetched.clone();
                let t0 = Instant::now();
                std::hint::black_box(chain.apply(&ctx, hits));
                lat.push(t0.elapsed());
            }
        }
        snap.push(
            &format!("{name}_apply_p50_us"),
            percentile_us(&lat, 0.50),
            "us",
            Direction::LowerBetter,
        );
        snap.push(
            &format!("{name}_apply_p99_us"),
            percentile_us(&lat, 0.99),
            "us",
            Direction::LowerBetter,
        );
    }

    // End-to-end: what a serving request pays for the full chain —
    // over-fetch plus apply — relative to the raw top-k it replaces.
    let chain = RerankChain::parse(chains[5].1).expect("benchmark spec is valid");
    let t0 = Instant::now();
    for q in queries.chunks(dim) {
        std::hint::black_box(index.search(q, k));
    }
    let raw_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    for q in queries.chunks(dim) {
        let ctx = RerankContext {
            store: Some(&store),
            log_marginals: Some(&log_p),
            external_ids: None,
            rules: Some(&rules),
            seed: opts.seed,
            query_tag: query_tag(q),
            k,
        };
        std::hint::black_box(chain.apply(&ctx, index.search(q, chain.fetch_k(k))));
    }
    let chained_wall = t0.elapsed().as_secs_f64();
    snap.push(
        "reranked_qps",
        n_queries as f64 / chained_wall,
        "per_s",
        Direction::HigherBetter,
    );
    snap.push(
        "chain_overhead_ratio",
        chained_wall / raw_wall.max(f64::MIN_POSITIVE),
        "ratio",
        Direction::LowerBetter,
    );
    snap
}

/// Measures the serving hot path: end-to-end HTTP latency and request
/// throughput against a real loopback [`Server`] with a freshly trained
/// checkpoint.
pub fn run_serve(opts: &SnapshotOptions) -> Snapshot {
    let data_scale = (if opts.smoke { 0.1 } else { 0.25 }) * opts.scale;
    let n_requests = if opts.smoke { 40 } else { 300 };
    let log = DatasetProfile::EComp.generate(data_scale, 2).filter_min_interactions(2);
    let cfg = UniMatchConfig {
        max_seq_len: 8,
        epochs_per_month: 1,
        seed: opts.seed,
        ..Default::default()
    };
    let fitted = UniMatch::new(cfg.clone()).fit(log.clone());

    let dir = std::env::temp_dir()
        .join(format!("unimatch_bench_serve_{}_{}", std::process::id(), opts.seed));
    std::fs::create_dir_all(&dir).expect("snapshot tmp dir");
    let ckpt = dir.join("model.json");
    save_model(&fitted.model, &ckpt).expect("save checkpoint");
    let handle = std::sync::Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &ckpt, log).expect("load checkpoint"),
    );
    let num_items = handle.current().fitted.num_items() as u32;
    let server = Server::start(
        "127.0.0.1:0",
        handle,
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();

    let mut recommend_lat = Vec::with_capacity(n_requests);
    let mut target_lat = Vec::with_capacity(n_requests);
    let started = Instant::now();
    for i in 0..n_requests as u32 {
        let history: Vec<String> =
            (0..3).map(|j| ((i * 7 + j * 3) % num_items).to_string()).collect();
        let body = format!("{{\"history\":[{}],\"k\":10}}", history.join(","));
        let t0 = Instant::now();
        let (status, _) = http_request(&addr, "POST", "/recommend", body.as_bytes());
        recommend_lat.push(t0.elapsed());
        assert_eq!(status, 200, "recommend request failed during snapshot");

        let body = format!("{{\"item\":{},\"k\":10}}", (i * 5) % num_items);
        let t0 = Instant::now();
        let (status, _) = http_request(&addr, "POST", "/target", body.as_bytes());
        target_lat.push(t0.elapsed());
        assert_eq!(status, 200, "target request failed during snapshot");
    }
    let wall = started.elapsed().as_secs_f64();

    // One scrape proves the unified exposition works under the snapshot.
    let (status, metrics) = http_request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200, "metrics scrape failed during snapshot");
    let metrics = String::from_utf8(metrics).expect("metrics body is utf8");
    assert!(metrics.contains("unimatch_requests_total"), "scrape missing serving series");
    drop(server);
    std::fs::remove_dir_all(&dir).ok();

    let mut snap = Snapshot::new("serve", opts.config());
    snap.push(
        "requests_per_s",
        (2 * n_requests) as f64 / wall,
        "per_s",
        Direction::HigherBetter,
    );
    snap.push("recommend_p50_us", percentile_us(&recommend_lat, 0.50), "us", Direction::LowerBetter);
    snap.push("recommend_p99_us", percentile_us(&recommend_lat, 0.99), "us", Direction::LowerBetter);
    snap.push("target_p50_us", percentile_us(&target_lat, 0.50), "us", Direction::LowerBetter);
    snap.push("target_p99_us", percentile_us(&target_lat, 0.99), "us", Direction::LowerBetter);
    snap
}

/// Measures what arming a shadow deployment costs the primary serving
/// path: the same request ladder is driven against a server without a
/// shadow and against one with an A/A shadow (same checkpoint) at
/// sample rate 0.5, and the p99 ratio is the suite's headline metric —
/// the shadow plane's contract is that this stays ~1.0. The mirror
/// queue's own lag (primary answer → shadow dequeue) is reported from
/// the `unimatch_shadow_lag_us` histogram after the queue drains.
pub fn run_shadow(opts: &SnapshotOptions) -> Snapshot {
    let data_scale = (if opts.smoke { 0.1 } else { 0.25 }) * opts.scale;
    let n_requests = if opts.smoke { 40 } else { 300 };
    let log = DatasetProfile::EComp.generate(data_scale, 2).filter_min_interactions(2);
    let cfg = UniMatchConfig {
        max_seq_len: 8,
        epochs_per_month: 1,
        seed: opts.seed,
        ..Default::default()
    };
    let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
    let dir = std::env::temp_dir()
        .join(format!("unimatch_bench_shadow_{}_{}", std::process::id(), opts.seed));
    std::fs::create_dir_all(&dir).expect("snapshot tmp dir");
    let ckpt = dir.join("model.json");
    save_model(&fitted.model, &ckpt).expect("save checkpoint");

    // one phase = one fresh server; the request ladder is identical so
    // the only variable between phases is the armed shadow
    let drive = |shadow: Option<f64>| -> (Vec<Duration>, Option<String>) {
        let handle = std::sync::Arc::new(
            ModelHandle::from_checkpoint(UniMatch::new(cfg.clone()), &ckpt, log.clone())
                .expect("load checkpoint"),
        );
        let spec = shadow.map(|rate| {
            let mirror = std::sync::Arc::new(
                ModelHandle::from_checkpoint(UniMatch::new(cfg.clone()), &ckpt, log.clone())
                    .expect("load shadow checkpoint"),
            );
            ShadowSpec::new(mirror, rate)
        });
        let num_items = handle.current().fitted.num_items() as u32;
        let server = Server::start_with_shadow(
            "127.0.0.1:0",
            handle,
            ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
            spec,
        )
        .expect("bind ephemeral port");
        let addr = server.addr().to_string();
        let mut latencies = Vec::with_capacity(n_requests);
        for i in 0..n_requests as u32 {
            let history: Vec<String> =
                (0..3).map(|j| ((i * 7 + j * 3) % num_items).to_string()).collect();
            let body = format!("{{\"history\":[{}],\"k\":10}}", history.join(","));
            let t0 = Instant::now();
            let (status, _) = http_request(&addr, "POST", "/recommend", body.as_bytes());
            latencies.push(t0.elapsed());
            assert_eq!(status, 200, "recommend request failed during shadow snapshot");
        }
        // with a shadow armed, let the mirror queue drain (two identical
        // consecutive pair counts) before the final scrape
        let text = shadow.map(|_| {
            let mut last = -1.0;
            for _ in 0..200 {
                let (status, body) = http_request(&addr, "GET", "/metrics", b"");
                assert_eq!(status, 200, "metrics scrape failed during shadow snapshot");
                let text = String::from_utf8(body).expect("metrics body is utf8");
                let pairs = scrape_value(&text, "unimatch_shadow_pairs_total{route=\"recommend\"}");
                let drained = scrape_value(&text, "unimatch_shadow_lag_us_count");
                if pairs > 0.0 && (pairs - last).abs() < f64::EPSILON && drained >= pairs {
                    return text;
                }
                last = pairs;
                std::thread::sleep(Duration::from_millis(10));
            }
            panic!("shadow queue never drained during snapshot");
        });
        (latencies, text)
    };

    let (off_lat, _) = drive(None);
    let (on_lat, scrape) = drive(Some(0.5));
    std::fs::remove_dir_all(&dir).ok();
    let scrape = scrape.expect("shadow phase scrapes metrics");
    let pairs = scrape_value(&scrape, "unimatch_shadow_pairs_total{route=\"recommend\"}");
    assert!(pairs > 0.0, "sample rate 0.5 mirrored nothing across {n_requests} requests");

    let off_p99 = percentile_us(&off_lat, 0.99);
    let on_p99 = percentile_us(&on_lat, 0.99);
    let mut snap = Snapshot::new("shadow", opts.config());
    snap.push("primary_p99_off_us", off_p99, "us", Direction::LowerBetter);
    snap.push("primary_p99_on_us", on_p99, "us", Direction::LowerBetter);
    snap.push(
        "primary_overhead_ratio",
        on_p99 / off_p99.max(f64::MIN_POSITIVE),
        "ratio",
        Direction::LowerBetter,
    );
    snap.push("shadow_pairs", pairs, "count", Direction::HigherBetter);
    snap.push(
        "shadow_lag_p99_us",
        histogram_p99(&scrape, "unimatch_shadow_lag_us_bucket"),
        "us",
        Direction::LowerBetter,
    );
    snap
}

/// Reads one single-sample line (`name value`) from an exposition body.
fn scrape_value(metrics: &str, prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing from scrape"))
}

/// Nearest-rank p99 from a rendered `_bucket{le="…"}` family (coarse —
/// the bucket's upper bound), for metrics only the server can observe.
fn histogram_p99(metrics: &str, family: &str) -> f64 {
    let buckets: Vec<(f64, f64)> = metrics
        .lines()
        .filter(|l| l.starts_with(family))
        .filter_map(|l| {
            let le = l.split("le=\"").nth(1)?.split('"').next()?;
            let cumulative: f64 = l.rsplit(' ').next()?.parse().ok()?;
            Some((le.parse().unwrap_or(f64::INFINITY), cumulative))
        })
        .collect();
    let total = buckets.last().map(|&(_, c)| c).unwrap_or(0.0);
    assert!(total > 0.0, "{family} has no observations");
    let rank = (0.99 * total).ceil();
    for &(bound, cumulative) in &buckets {
        if cumulative >= rank && bound.is_finite() {
            return bound;
        }
    }
    buckets.iter().rev().find(|(b, _)| b.is_finite()).map(|&(b, _)| b).unwrap_or(0.0)
}

/// One HTTP/1.1 request over a fresh connection (the server closes after
/// each response, so read-to-EOF is the framing).
fn http_request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect to snapshot server");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send request head");
    stream.write_all(body).expect("send request body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end =
        response.windows(4).position(|w| w == b"\r\n\r\n").expect("header/body separator");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, response[head_end + 4..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert!((percentile_us(&samples, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile_us(&samples, 1.0) - 100.0).abs() < 1e-9);
        assert!((percentile_us(&samples, 0.50) - 51.0).abs() < 2.0);
    }

    #[test]
    fn smoke_snapshot_round_trips_all_suites() {
        let dir = std::env::temp_dir()
            .join(format!("unimatch_bench_snapshot_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let opts = SnapshotOptions {
            scale: 1.0,
            seed: 42,
            smoke: true,
            threads: 0,
            out_dir: dir.clone(),
        };
        let paths = run_all(&opts).expect("snapshot run");
        assert_eq!(paths.len(), 6);
        for path in &paths {
            let bytes = std::fs::read(path).expect("read snapshot");
            let doc = Json::parse(&bytes).expect("parse snapshot");
            validate(&doc).expect("snapshot validates");
        }
        // identical-config snapshots diff cleanly with a generous tolerance
        let base = Json::parse(&std::fs::read(&paths[1]).expect("read")).expect("parse");
        let rows = crate::schema::diff(&base, &base, 0.0).expect("self-diff");
        assert!(rows.iter().all(|r| !r.regressed));
        std::fs::remove_dir_all(&dir).ok();
    }
}
