//! The Tab. I / Tab. II convergence experiments.
//!
//! We fit a **free logit table** `φ[u,i]` (no encoder, no temperature —
//! nothing constrains the optimum) on samples from a small synthetic
//! joint distribution, under each loss / negative-sampling configuration,
//! then regress the fitted `φ` against every candidate theoretical optimum
//! (`log p̂(i|u)`, `log p̂(u|i)`, PMI, `log p̂(u,i)`). The paper's claim
//! is that each configuration's designated target wins the fit.
//!
//! Gauge freedom: a row-only softmax loss cannot pin down per-user
//! offsets (`φ + f(u)` is equally optimal), so fits are compared after
//! removing the appropriate per-row / per-column / global means.

use rand::rngs::StdRng;
use rand::Rng;
use unimatch_data::alias::AliasTable;
use unimatch_data::matrix::InteractionMatrix;
use unimatch_losses::{bce_loss, nce_loss, BiasConfig};
use unimatch_tensor::{Graph, ParamSet, Tensor, Var};
use unimatch_train::{Adam, AdamConfig};

/// A small fully-materialized joint distribution over users × items.
pub struct ToyJoint {
    /// Number of users.
    pub m: usize,
    /// Number of items.
    pub k: usize,
    /// The empirical counts matrix.
    pub matrix: InteractionMatrix,
    /// Sampler over `(u, i)` cells proportional to the counts.
    cell_sampler: AliasTable,
    /// Sampler over users proportional to the marginal.
    user_sampler: AliasTable,
    /// Sampler over items proportional to the marginal.
    item_sampler: AliasTable,
}

impl ToyJoint {
    /// Builds a structured random joint: Zipf item popularity, skewed user
    /// activity, and a block-affinity structure so the joint is far from
    /// the product of its marginals (otherwise PMI degenerates).
    pub fn structured(m: usize, k: usize, rng: &mut StdRng) -> Self {
        let clusters = 3usize;
        let mut weights = vec![0f64; m * k];
        let user_act: Vec<f64> = (0..m).map(|u| 1.0 / (1.0 + u as f64 % 5.0)).collect();
        let item_pop: Vec<f64> = (0..k).map(|i| 1.0 / (1.0 + i as f64).powf(0.8)).collect();
        for u in 0..m {
            for i in 0..k {
                let affinity = if u % clusters == i % clusters { 4.0 } else { 1.0 };
                let jitter = rng.gen_range(0.5..1.5);
                weights[u * k + i] = user_act[u] * item_pop[i] * affinity * jitter;
            }
        }
        // quantize to counts (total ~ 20k so marginals are well estimated)
        let total_w: f64 = weights.iter().sum();
        let mut pairs = Vec::new();
        for u in 0..m {
            for i in 0..k {
                let c = (weights[u * k + i] / total_w * 20_000.0).round() as u64;
                for _ in 0..c {
                    pairs.push((u as u32, i as u32));
                }
            }
        }
        let matrix = InteractionMatrix::from_pairs(&pairs, m as u32, k as u32);
        let counts: Vec<f64> = (0..m * k)
            .map(|ix| matrix.count((ix / k) as u32, (ix % k) as u32) as f64)
            .collect();
        let user_w: Vec<f64> = (0..m).map(|u| matrix.user_marginal(u as u32)).collect();
        let item_w: Vec<f64> = (0..k).map(|i| matrix.item_marginal(i as u32)).collect();
        ToyJoint {
            m,
            k,
            cell_sampler: AliasTable::new(&counts),
            user_sampler: AliasTable::new(&user_w),
            item_sampler: AliasTable::new(&item_w),
            matrix,
        }
    }

    /// Samples one `(u, i)` positive pair from the joint.
    pub fn sample_pair(&self, rng: &mut StdRng) -> (u32, u32) {
        let cell = self.cell_sampler.sample(rng) as usize;
        ((cell / self.k) as u32, (cell % self.k) as u32)
    }

    /// Samples a user from the empirical marginal.
    pub fn sample_user(&self, rng: &mut StdRng) -> u32 {
        self.user_sampler.sample(rng)
    }

    /// Samples an item from the empirical marginal.
    pub fn sample_item(&self, rng: &mut StdRng) -> u32 {
        self.item_sampler.sample(rng)
    }
}

/// The candidate theoretical optima of Tabs. I and II.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Target {
    /// `log p̂(i|u)`.
    ItemGivenUser,
    /// `log p̂(u|i)`.
    UserGivenItem,
    /// `log (p̂(u,i) / (p̂(u)·p̂(i)))`.
    Pmi,
    /// `log p̂(u,i)`.
    Joint,
}

impl Target {
    /// All four candidates.
    pub const ALL: [Target; 4] = [Target::ItemGivenUser, Target::UserGivenItem, Target::Pmi, Target::Joint];

    /// Label for tables.
    pub fn label(self) -> &'static str {
        match self {
            Target::ItemGivenUser => "log p(i|u)",
            Target::UserGivenItem => "log p(u|i)",
            Target::Pmi => "PMI",
            Target::Joint => "log p(u,i)",
        }
    }

    /// The target value on a seen cell.
    pub fn value(self, m: &InteractionMatrix, u: u32, i: u32) -> f64 {
        match self {
            Target::ItemGivenUser => m.item_given_user(u, i).ln(),
            Target::UserGivenItem => m.user_given_item(u, i).ln(),
            Target::Pmi => m.pmi(u, i).expect("seen cell"),
            Target::Joint => m.joint(u, i).ln(),
        }
    }
}

/// Gauge under which a fit is compared (the loss's unidentifiable offsets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gauge {
    /// Global additive constant only.
    Global,
    /// Per-user (row) offsets are free.
    PerRow,
    /// Per-item (column) offsets are free.
    PerCol,
}

/// Fits the free logit table under an NCE config with in-batch negatives.
pub fn fit_nce(
    joint: &ToyJoint,
    cfg: &BiasConfig,
    steps: usize,
    batch: usize,
    lr: f32,
    rng: &mut StdRng,
) -> Tensor {
    let mut params = ParamSet::new();
    let phi = params.add("phi", Tensor::zeros([joint.m, joint.k]));
    let mut adam = Adam::new(AdamConfig::with_lr(lr));
    let log_pu_all: Vec<f32> = (0..joint.m)
        .map(|u| (joint.matrix.user_marginal(u as u32).max(1e-12)).ln() as f32)
        .collect();
    let log_pi_all: Vec<f32> = (0..joint.k)
        .map(|i| (joint.matrix.item_marginal(i as u32).max(1e-12)).ln() as f32)
        .collect();
    for _ in 0..steps {
        let pairs: Vec<(u32, u32)> = (0..batch).map(|_| joint.sample_pair(rng)).collect();
        let users: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
        let items: Vec<u32> = pairs.iter().map(|&(_, i)| i).collect();
        let mut g = Graph::new();
        let logits = gather_logit_matrix(&mut g, &params, phi, &users, &items, joint.k);
        let log_pu: Vec<f32> = users.iter().map(|&u| log_pu_all[u as usize]).collect();
        let log_pi: Vec<f32> = items.iter().map(|&i| log_pi_all[i as usize]).collect();
        let loss = nce_loss(&mut g, logits, &log_pu, &log_pi, cfg);
        g.backward(loss);
        adam.step(&mut params, &g);
    }
    params.get(phi).clone()
}

/// The Tab. I negative-sampling strategies for the BCE fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BceNoise {
    /// `p_n ∝ p̂(u)`: keep the positive's user, item uniform.
    UserFreq,
    /// `p_n ∝ p̂(i)`: keep the positive's item, user uniform.
    ItemFreq,
    /// `p_n ∝ p̂(u)p̂(i)`: both from their empirical marginals.
    Product,
    /// `p_n = 1/(MK)`: both uniform.
    Uniform,
}

impl BceNoise {
    /// All four strategies in Tab. I order.
    pub const ALL: [BceNoise; 4] = [BceNoise::UserFreq, BceNoise::ItemFreq, BceNoise::Product, BceNoise::Uniform];

    /// Label matching Tab. I.
    pub fn label(self) -> &'static str {
        match self {
            BceNoise::UserFreq => "p(u)",
            BceNoise::ItemFreq => "p(i)",
            BceNoise::Product => "p(u)p(i)",
            BceNoise::Uniform => "1/MK",
        }
    }

    /// The designated Tab. I optimum.
    pub fn designated_target(self) -> Target {
        match self {
            BceNoise::UserFreq => Target::ItemGivenUser,
            BceNoise::ItemFreq => Target::UserGivenItem,
            BceNoise::Product => Target::Pmi,
            BceNoise::Uniform => Target::Joint,
        }
    }

    /// The gauge of the BCE fit: none beyond a global constant.
    pub fn gauge(self) -> Gauge {
        Gauge::Global
    }
}

/// Fits the free logit table with BCE under a Tab. I noise distribution.
pub fn fit_bce(
    joint: &ToyJoint,
    noise: BceNoise,
    steps: usize,
    batch: usize,
    lr: f32,
    rng: &mut StdRng,
) -> Tensor {
    let mut params = ParamSet::new();
    let phi = params.add("phi", Tensor::zeros([joint.m, joint.k]));
    let mut adam = Adam::new(AdamConfig::with_lr(lr));
    for _ in 0..steps {
        let mut users = Vec::with_capacity(batch);
        let mut items = Vec::with_capacity(batch);
        let mut labels = Vec::with_capacity(batch);
        for _ in 0..batch / 2 {
            let (u, i) = joint.sample_pair(rng);
            users.push(u);
            items.push(i);
            labels.push(1.0);
            let (nu, ni) = match noise {
                BceNoise::UserFreq => (u, rng.gen_range(0..joint.k as u32)),
                BceNoise::ItemFreq => (rng.gen_range(0..joint.m as u32), i),
                BceNoise::Product => (joint.sample_user(rng), joint.sample_item(rng)),
                BceNoise::Uniform => {
                    (rng.gen_range(0..joint.m as u32), rng.gen_range(0..joint.k as u32))
                }
            };
            users.push(nu);
            items.push(ni);
            labels.push(0.0);
        }
        let mut g = Graph::new();
        let rows = g.embedding(&params, phi, &users);
        let item_ix: Vec<usize> = items.iter().map(|&i| i as usize).collect();
        let pair_logits = g.pick_per_row(rows, &item_ix);
        let loss = bce_loss(&mut g, pair_logits, &labels);
        g.backward(loss);
        adam.step(&mut params, &g);
    }
    params.get(phi).clone()
}

/// Fits the free logit table with sampled softmax (negatives from the
/// item marginal, logQ-corrected) — Tab. II's SSM row, designed to
/// converge to `log p̂(i|u)`.
pub fn fit_ssm(
    joint: &ToyJoint,
    negatives: usize,
    steps: usize,
    batch: usize,
    lr: f32,
    rng: &mut StdRng,
) -> Tensor {
    let mut params = ParamSet::new();
    let phi = params.add("phi", Tensor::zeros([joint.m, joint.k]));
    let mut adam = Adam::new(AdamConfig::with_lr(lr));
    let log_q: Vec<f32> = (0..joint.k)
        .map(|i| (joint.matrix.item_marginal(i as u32).max(1e-12)).ln() as f32)
        .collect();
    for _ in 0..steps {
        let pairs: Vec<(u32, u32)> = (0..batch).map(|_| joint.sample_pair(rng)).collect();
        let users: Vec<u32> = pairs.iter().map(|&(u, _)| u).collect();
        let pos_items: Vec<usize> = pairs.iter().map(|&(_, i)| i as usize).collect();
        let neg_items: Vec<u32> = (0..negatives).map(|_| joint.sample_item(rng)).collect();
        let mut g = Graph::new();
        let rows = g.embedding(&params, phi, &users); // [B, K]
        let pos = g.pick_per_row(rows, &pos_items); // [B]
        // negatives: select the shared negative columns
        let mut sel = Tensor::zeros([joint.k, negatives]);
        for (c, &i) in neg_items.iter().enumerate() {
            sel.data_mut()[i as usize * negatives + c] = 1.0;
        }
        let sv = g.constant(sel);
        let neg = g.matmul(rows, sv); // [B, n]
        let log_q_pos: Vec<f32> = pos_items.iter().map(|&i| log_q[i]).collect();
        let log_q_neg: Vec<f32> = neg_items.iter().map(|&i| log_q[i as usize]).collect();
        let loss = unimatch_losses::ssm_loss(&mut g, pos, neg, &log_q_pos, &log_q_neg);
        g.backward(loss);
        adam.step(&mut params, &g);
    }
    params.get(phi).clone()
}

/// Builds the `[B,B]` in-batch logit matrix `φ[u_r, i_c]` from the free
/// table: gather user rows, then select item columns via a 0/1 matrix.
fn gather_logit_matrix(
    g: &mut Graph,
    params: &ParamSet,
    phi: unimatch_tensor::ParamId,
    users: &[u32],
    items: &[u32],
    k: usize,
) -> Var {
    let rows = g.embedding(params, phi, users); // [B, K]
    let b = items.len();
    let mut sel = Tensor::zeros([k, b]);
    for (c, &i) in items.iter().enumerate() {
        sel.data_mut()[i as usize * b + c] = 1.0;
    }
    let sv = g.constant(sel);
    g.matmul(rows, sv) // [B, B]
}

/// R² of an affine fit `φ ≈ a·target + b` over the *seen* cells, after
/// removing the gauge's free offsets from both sides.
pub fn fit_r2(phi: &Tensor, joint: &ToyJoint, target: Target, gauge: Gauge) -> f64 {
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut rows = Vec::new();
    let mut cols = Vec::new();
    for u in 0..joint.m as u32 {
        for i in 0..joint.k as u32 {
            if joint.matrix.count(u, i) > 0 {
                xs.push(target.value(&joint.matrix, u, i));
                ys.push(phi.at(&[u as usize, i as usize]) as f64);
                rows.push(u as usize);
                cols.push(i as usize);
            }
        }
    }
    let center = |v: &mut [f64], groups: &[usize], n_groups: usize| {
        let mut sums = vec![0.0; n_groups];
        let mut counts = vec![0usize; n_groups];
        for (x, &gix) in v.iter().zip(groups) {
            sums[gix] += x;
            counts[gix] += 1;
        }
        for (x, &gix) in v.iter_mut().zip(groups) {
            *x -= sums[gix] / counts[gix].max(1) as f64;
        }
    };
    match gauge {
        Gauge::Global => {
            let all = vec![0usize; xs.len()];
            center(&mut xs, &all, 1);
            center(&mut ys, &all, 1);
        }
        Gauge::PerRow => {
            center(&mut xs, &rows, joint.m);
            center(&mut ys, &rows, joint.m);
        }
        Gauge::PerCol => {
            center(&mut xs, &cols, joint.k);
            center(&mut ys, &cols, joint.k);
        }
    }
    // least-squares slope through the origin (both sides centered)
    let sxx: f64 = xs.iter().map(|x| x * x).sum();
    let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
    let syy: f64 = ys.iter().map(|y| y * y).sum();
    if sxx == 0.0 || syy == 0.0 {
        return 0.0;
    }
    let slope = sxy / sxx;
    let ss_res: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| {
            let e = y - slope * x;
            e * e
        })
        .sum();
    1.0 - ss_res / syy
}

/// The NCE rows of Tab. II: `(label, config, designated target, gauge)`.
pub fn nce_table() -> Vec<(&'static str, BiasConfig, Target, Gauge)> {
    vec![
        ("InfoNCE", BiasConfig::infonce(), Target::Pmi, Gauge::PerRow),
        ("SimCLR", BiasConfig::simclr(), Target::Pmi, Gauge::Global),
        ("row-bcNCE", BiasConfig::row_bcnce(), Target::ItemGivenUser, Gauge::PerRow),
        ("col-bcNCE", BiasConfig::col_bcnce(), Target::UserGivenItem, Gauge::PerCol),
        ("bbcNCE", BiasConfig::bbcnce(), Target::Joint, Gauge::Global),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn joint() -> ToyJoint {
        let mut rng = StdRng::seed_from_u64(77);
        ToyJoint::structured(9, 7, &mut rng)
    }

    #[test]
    fn structured_joint_is_not_product_of_marginals() {
        let j = joint();
        // at least one seen cell has |PMI| > 0.3
        let mut max_abs: f64 = 0.0;
        for u in 0..j.m as u32 {
            for i in 0..j.k as u32 {
                if let Some(p) = j.matrix.pmi(u, i) {
                    max_abs = max_abs.max(p.abs());
                }
            }
        }
        assert!(max_abs > 0.3, "max |PMI| = {max_abs}");
    }

    #[test]
    fn targets_are_distinguishable() {
        // the four targets must not be affinely identical over seen cells
        let j = joint();
        let mut vals: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for u in 0..j.m as u32 {
            for i in 0..j.k as u32 {
                if j.matrix.count(u, i) > 0 {
                    for (t_ix, t) in Target::ALL.iter().enumerate() {
                        vals[t_ix].push(t.value(&j.matrix, u, i));
                    }
                }
            }
        }
        for a in 0..4 {
            for b in (a + 1)..4 {
                let corr = pearson(&vals[a], &vals[b]);
                assert!(corr < 0.999, "targets {a} and {b} collinear: {corr}");
            }
        }
    }

    fn pearson(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len() as f64;
        let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
        let cov: f64 = a.iter().zip(b).map(|(x, y)| (x - ma) * (y - mb)).sum();
        let va: f64 = a.iter().map(|x| (x - ma) * (x - ma)).sum();
        let vb: f64 = b.iter().map(|y| (y - mb) * (y - mb)).sum();
        (cov / (va * vb).sqrt()).abs()
    }

    #[test]
    fn bbcnce_fits_the_joint_best() {
        let j = joint();
        let mut rng = StdRng::seed_from_u64(5);
        let phi = fit_nce(&j, &BiasConfig::bbcnce(), 1200, 128, 0.05, &mut rng);
        let r2_joint = fit_r2(&phi, &j, Target::Joint, Gauge::Global);
        assert!(r2_joint > 0.85, "R² against log p(u,i) = {r2_joint}");
        let r2_pmi = fit_r2(&phi, &j, Target::Pmi, Gauge::Global);
        assert!(
            r2_joint > r2_pmi,
            "joint {r2_joint} should beat PMI {r2_pmi} for bbcNCE"
        );
    }

    #[test]
    fn row_bcnce_recovers_conditional_not_pmi() {
        let j = joint();
        let mut rng = StdRng::seed_from_u64(6);
        let phi = fit_nce(&j, &BiasConfig::row_bcnce(), 1200, 128, 0.05, &mut rng);
        let r2_cond = fit_r2(&phi, &j, Target::ItemGivenUser, Gauge::PerRow);
        let r2_pmi = fit_r2(&phi, &j, Target::Pmi, Gauge::PerRow);
        assert!(r2_cond > 0.8, "R² = {r2_cond}");
        assert!(r2_cond > r2_pmi, "cond {r2_cond} vs pmi {r2_pmi}");
    }

    #[test]
    fn infonce_recovers_pmi_not_conditional() {
        let j = joint();
        let mut rng = StdRng::seed_from_u64(7);
        let phi = fit_nce(&j, &BiasConfig::infonce(), 1200, 128, 0.05, &mut rng);
        let r2_pmi = fit_r2(&phi, &j, Target::Pmi, Gauge::PerRow);
        let r2_cond = fit_r2(&phi, &j, Target::ItemGivenUser, Gauge::PerRow);
        assert!(r2_pmi > 0.8, "R² = {r2_pmi}");
        assert!(r2_pmi > r2_cond, "pmi {r2_pmi} vs cond {r2_cond}");
    }

    #[test]
    fn bce_uniform_recovers_the_joint() {
        let j = joint();
        let mut rng = StdRng::seed_from_u64(8);
        let phi = fit_bce(&j, BceNoise::Uniform, 2500, 256, 0.05, &mut rng);
        let r2 = fit_r2(&phi, &j, Target::Joint, Gauge::Global);
        assert!(r2 > 0.75, "R² against log p(u,i) = {r2}");
    }

    #[test]
    fn bce_user_freq_recovers_item_conditional() {
        let j = joint();
        let mut rng = StdRng::seed_from_u64(9);
        let phi = fit_bce(&j, BceNoise::UserFreq, 2500, 256, 0.05, &mut rng);
        let r2_cond = fit_r2(&phi, &j, Target::ItemGivenUser, Gauge::Global);
        let r2_joint = fit_r2(&phi, &j, Target::Joint, Gauge::Global);
        assert!(r2_cond > 0.75, "R² = {r2_cond}");
        assert!(r2_cond > r2_joint, "cond {r2_cond} vs joint {r2_joint}");
    }
}
