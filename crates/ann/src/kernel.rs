//! The one exact-scoring kernel behind every retrieval path.
//!
//! Historically each crate carried its own `dot` + top-k loop (brute
//! force scan, HNSW neighbour scoring, IVF probing, the batch-inference
//! block loop, the eval ranking pools). They all computed the same thing;
//! this module is the single shared implementation: [`dot`], the
//! crate-internal `TopK` bounded heap, and [`top_k_exact`] — a
//! blocked/tiled exact scorer that answers a whole query batch with
//! `unimatch-parallel` chunking.
//!
//! Determinism contract: for a given `(queries, targets, dim, k)`,
//! [`top_k_exact`] returns bit-identical scores and identical ids no
//! matter the thread count or tiling. The kernel tiles over *queries*
//! and *targets* only — never over `dim`, so each score is one
//! sequential multiply-add reduction — and visits targets in ascending
//! id order per query, so the heap admission sequence matches a naive
//! scan exactly.

use crate::index::Hit;
use unimatch_parallel::par_map_indexed;

/// Queries handled per parallel chunk (amortizes the per-task overhead;
/// matches the historical batch-inference block size).
const QUERY_BLOCK: usize = 128;

/// Target rows scored per tile before moving to the next query — sized
/// so a tile of 16-dim rows (~32 KiB) stays L1/L2-resident across the
/// queries of a block.
const TARGET_TILE: usize = 512;

/// Dot product over slices — the only `dot` in the workspace.
///
/// A plain sequential multiply-add reduction: the fixed association
/// order is what makes every retrieval path bit-reproducible.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Shared helper: maintain the top-k of a score stream with a small binary
/// heap of the *worst* retained hit.
///
/// Admission uses a strict `score > worst` comparison, so when scores tie
/// at the boundary the earliest-pushed candidates are kept — combined
/// with an ascending id scan this keeps the lowest ids, matching what a
/// stable full sort would retain.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapHit>>,
}

#[derive(Debug, PartialEq)]
pub(crate) struct HeapHit(pub f32, pub u32);

impl Eq for HeapHit {}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    pub fn push(&mut self, id: u32, score: f32) {
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(HeapHit(score, id)));
        } else if let Some(worst) = self.heap.peek() {
            if score > worst.0 .0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(HeapHit(score, id)));
            }
        }
    }

    /// Current k-th best score (lower bound for admission).
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.0 .0)
        }
    }

    /// Drains into a list sorted under the engine's canonical
    /// [`crate::order`] (score descending, ids ascending on ties — the
    /// same order a stable descending sort of the full score array would
    /// produce).
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut v: Vec<Hit> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapHit(score, id))| Hit { id, score })
            .collect();
        crate::order::sort_canonical(&mut v);
        v
    }
}

/// Exact blocked top-k: scores every query against every target row and
/// returns the `k` best hits per query, best first.
///
/// `queries` and `targets` are row-major `n × dim` buffers. Queries are
/// processed in 128-row blocks fanned out through `unimatch-parallel`
/// (work estimate `nq × nt × dim × 2` flops); within a block, target
/// rows are re-streamed in 512-row tiles so the targets stay
/// cache-resident while every query of the block consumes them. Results are bit-identical to a naive
/// one-query-at-a-time scan (see the module docs for why).
pub fn top_k_exact(queries: &[f32], targets: &[f32], dim: usize, k: usize) -> Vec<Vec<Hit>> {
    assert!(dim > 0, "dim must be positive");
    assert_eq!(queries.len() % dim, 0, "query buffer not a multiple of dim");
    assert_eq!(targets.len() % dim, 0, "target buffer not a multiple of dim");
    let nq = queries.len() / dim;
    let nt = targets.len() / dim;
    let k = k.min(nt);
    if nq == 0 {
        return Vec::new();
    }
    let n_blocks = nq.div_ceil(QUERY_BLOCK);
    let work = nq * nt * dim * 2;
    let per_block: Vec<Vec<Vec<Hit>>> = par_map_indexed(n_blocks, work, |b| {
        let q_start = b * QUERY_BLOCK;
        let q_end = (q_start + QUERY_BLOCK).min(nq);
        let mut tops: Vec<TopK> = (q_start..q_end).map(|_| TopK::new(k)).collect();
        let mut t_start = 0;
        while t_start < nt {
            let t_end = (t_start + TARGET_TILE).min(nt);
            for (top, q) in tops.iter_mut().zip(q_start..q_end) {
                let query = &queries[q * dim..(q + 1) * dim];
                for t in t_start..t_end {
                    top.push(t as u32, dot(query, &targets[t * dim..(t + 1) * dim]));
                }
            }
            t_start = t_end;
        }
        tops.into_iter().map(TopK::into_sorted).collect()
    });
    per_block.into_iter().flatten().collect()
}

/// Exact blocked top-k over an [`EmbeddingStore`](crate::EmbeddingStore)
/// in any row format: the store-aware twin of [`top_k_exact`].
///
/// For `f32` stores this delegates to [`top_k_exact`] over the store's
/// slice, so results are bit-identical to the historical path. For
/// quantized stores it runs the same query-block × target-tile loop
/// structure with the store's fused dequant-dot
/// ([`score_row`](crate::EmbeddingStore::score_row)) as the inner
/// kernel — rows are
/// decoded inside the multiply-add loop, never materialized as `f32`,
/// and each score is one sequential reduction, so the determinism
/// contract (bit-identical across thread counts, tilings, and owned vs
/// mmap backings) carries over unchanged.
pub fn top_k_exact_store(
    queries: &[f32],
    store: &crate::EmbeddingStore,
    k: usize,
) -> Vec<Vec<Hit>> {
    let dim = store.dim();
    if store.format() == crate::RowFormat::F32 {
        return top_k_exact(queries, store.as_slice(), dim, k);
    }
    assert!(dim > 0, "dim must be positive");
    assert_eq!(queries.len() % dim, 0, "query buffer not a multiple of dim");
    let nq = queries.len() / dim;
    let nt = store.rows();
    let k = k.min(nt);
    if nq == 0 {
        return Vec::new();
    }
    let n_blocks = nq.div_ceil(QUERY_BLOCK);
    let work = nq * nt * dim * 2;
    let per_block: Vec<Vec<Vec<Hit>>> = par_map_indexed(n_blocks, work, |b| {
        let q_start = b * QUERY_BLOCK;
        let q_end = (q_start + QUERY_BLOCK).min(nq);
        let mut tops: Vec<TopK> = (q_start..q_end).map(|_| TopK::new(k)).collect();
        let mut t_start = 0;
        while t_start < nt {
            let t_end = (t_start + TARGET_TILE).min(nt);
            for (top, q) in tops.iter_mut().zip(q_start..q_end) {
                let query = &queries[q * dim..(q + 1) * dim];
                for t in t_start..t_end {
                    top.push(t as u32, store.score_row(query, t));
                }
            }
            t_start = t_end;
        }
        tops.into_iter().map(TopK::into_sorted).collect()
    });
    per_block.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_best() {
        let mut t = TopK::new(2);
        for (id, s) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)] {
            t.push(id, s);
        }
        let hits = t.into_sorted();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn topk_threshold_tracks_worst_kept() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.push(0, 0.3);
        t.push(1, 0.8);
        assert_eq!(t.threshold(), 0.3);
        t.push(2, 0.5);
        assert_eq!(t.threshold(), 0.5);
    }

    #[test]
    fn topk_fewer_candidates_than_k() {
        let mut t = TopK::new(5);
        t.push(7, 0.2);
        let hits = t.into_sorted();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }

    #[test]
    fn topk_ties_sort_by_id_ascending() {
        let mut t = TopK::new(3);
        for id in [5, 1, 3] {
            t.push(id, 0.5);
        }
        let ids: Vec<u32> = t.into_sorted().iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![1, 3, 5]);
    }

    /// Naive oracle: full stable sort, descending by score.
    fn oracle(queries: &[f32], targets: &[f32], dim: usize, k: usize) -> Vec<Vec<Hit>> {
        let nt = targets.len() / dim;
        queries
            .chunks(dim)
            .map(|q| {
                let mut scored: Vec<Hit> = (0..nt)
                    .map(|t| Hit {
                        id: t as u32,
                        score: dot(q, &targets[t * dim..(t + 1) * dim]),
                    })
                    .collect();
                scored.sort_by(|a, b| {
                    b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal)
                });
                scored.truncate(k.min(nt));
                scored
            })
            .collect()
    }

    fn pseudo_random(n: usize, seed: u64) -> Vec<f32> {
        let mut state = seed;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect()
    }

    #[test]
    fn blocked_kernel_matches_naive_oracle_bit_for_bit() {
        let dim = 7;
        // Sizes straddle both the query block and the target tile.
        for (nq, nt) in [(1, 1), (3, 50), (130, 600), (257, 513)] {
            let queries = pseudo_random(nq * dim, 0x5eed);
            let targets = pseudo_random(nt * dim, 0xf00d);
            for k in [1, 5, nt + 3] {
                let got = top_k_exact(&queries, &targets, dim, k);
                let want = oracle(&queries, &targets, dim, k);
                assert_eq!(got.len(), want.len());
                for (g, w) in got.iter().zip(&want) {
                    assert_eq!(g.len(), w.len(), "nq={nq} nt={nt} k={k}");
                    for (gh, wh) in g.iter().zip(w) {
                        assert_eq!(gh.id, wh.id, "nq={nq} nt={nt} k={k}");
                        assert_eq!(
                            gh.score.to_bits(),
                            wh.score.to_bits(),
                            "nq={nq} nt={nt} k={k}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tied_scores_keep_lowest_ids() {
        // Duplicate rows: ids 0/2/4 identical, 1/3 identical.
        let targets = vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0, 0.0];
        let hits = &top_k_exact(&[1.0, 0.0], &targets, 2, 2)[0];
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 2]);
    }

    #[test]
    fn k_zero_and_empty_inputs() {
        assert!(top_k_exact(&[], &[1.0, 0.0], 2, 3).is_empty());
        let hits = top_k_exact(&[1.0, 0.0], &[], 2, 3);
        assert_eq!(hits.len(), 1);
        assert!(hits[0].is_empty());
        let hits = top_k_exact(&[1.0, 0.0], &[1.0, 0.0], 2, 0);
        assert!(hits[0].is_empty());
    }

    #[test]
    fn store_kernel_matches_flat_kernel_for_f32() {
        let dim = 5;
        let queries = pseudo_random(37 * dim, 0xabc);
        let targets = pseudo_random(600 * dim, 0xdef);
        let store = crate::EmbeddingStore::from_rows(&targets, dim);
        let flat = top_k_exact(&queries, &targets, dim, 7);
        let via_store = top_k_exact_store(&queries, &store, 7);
        assert_eq!(flat.len(), via_store.len());
        for (a, b) in flat.iter().zip(&via_store) {
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.id, y.id);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }
    }

    #[test]
    fn store_kernel_matches_naive_scan_for_quantized() {
        // Same oracle contract as the flat kernel, but the "truth" is a
        // naive one-row-at-a-time fused scan over the quantized store.
        let dim = 6;
        let queries = pseudo_random(140 * dim, 0x111);
        let targets = pseudo_random(531 * dim, 0x222);
        for format in [crate::RowFormat::F16, crate::RowFormat::I8] {
            let store = crate::EmbeddingStore::from_rows(&targets, dim).quantize(format);
            let got = top_k_exact_store(&queries, &store, 9);
            for (q, hits) in got.iter().enumerate() {
                let query = &queries[q * dim..(q + 1) * dim];
                let mut top = TopK::new(9);
                for t in 0..store.rows() {
                    top.push(t as u32, store.score_row(query, t));
                }
                let want = top.into_sorted();
                assert_eq!(hits.len(), want.len(), "{format:?} q={q}");
                for (g, w) in hits.iter().zip(&want) {
                    assert_eq!(g.id, w.id, "{format:?} q={q}");
                    assert_eq!(g.score.to_bits(), w.score.to_bits(), "{format:?} q={q}");
                }
            }
        }
    }
}
