//! The common index interface: maximum-inner-product / cosine top-k search
//! over unit-normalized embeddings.
//!
//! Every index implements [`AnnIndex`]; serving code (the `unimatch-core`
//! batch-inference pipeline, the examples, the bench harness) programs
//! against the trait so brute force, IVF, and HNSW are interchangeable.
//! Besides the per-query [`AnnIndex::search`], the trait provides
//! [`AnnIndex::search_batch`], which answers many queries in one call and
//! fans them out across threads via `unimatch-parallel` when the total
//! scoring work crosses the configured threshold. The batched results are
//! *identical* to calling `search` per query — parallelism only changes
//! which thread scores which query, never the scores or the ordering.

use unimatch_faults::FaultPoint;
use unimatch_parallel::par_map_indexed;

/// Chaos-testing seam: a latency fault armed at `ann.search` models a slow
/// index (cold page cache, an overloaded shard). Disarmed cost is one
/// relaxed atomic load per batch.
const SEARCH_FAULT: FaultPoint = FaultPoint::new("ann.search");

/// A scored search hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Row id of the matched vector.
    pub id: u32,
    /// Inner-product score (cosine similarity for unit vectors).
    pub score: f32,
}

/// A top-k nearest-neighbour index over a fixed set of vectors.
///
/// UniMatch's two-tower separation exists precisely so serving can run
/// through an index like this (Sec. III-B1): item embeddings are indexed
/// once, user queries arrive online (IR); or vice versa (UT).
///
/// The `Sync` supertrait keeps the trait object-safe (`dyn AnnIndex` is
/// used by the serving example and pipeline tests) while allowing the
/// default [`AnnIndex::search_batch`] to share `&self` across threads.
pub trait AnnIndex: Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// The `k` highest-inner-product vectors for `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// Answers one row-major batch of queries (`queries.len()` must be a
    /// multiple of [`AnnIndex::dim`]), returning one hit list per query in
    /// input order.
    ///
    /// The default implementation fans the queries out over threads with
    /// `unimatch-parallel` when `n_queries × len × dim` multiply-adds exceed
    /// the global work threshold, and falls back to a plain loop otherwise.
    /// Either way each query is answered by the same [`AnnIndex::search`]
    /// code, so results are identical to the sequential path.
    fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        SEARCH_FAULT.inject_latency();
        let d = self.dim();
        assert!(d > 0, "search_batch on an index with zero dimension");
        assert_eq!(
            queries.len() % d,
            0,
            "query batch length {} is not a multiple of dim {}",
            queries.len(),
            d
        );
        let nq = queries.len() / d;
        // 2 flops per multiply-add; exact for brute force, an upper bound
        // for the pruned indexes (IVF probes a subset, HNSW walks a graph).
        let work = nq * self.len() * d * 2;
        par_map_indexed(nq, work, |i| self.search(&queries[i * d..(i + 1) * d], k))
    }
}

/// Shared helper: maintain the top-k of a score stream with a small binary
/// heap of the *worst* retained hit.
#[derive(Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapHit>>,
}

#[derive(Debug, PartialEq)]
pub(crate) struct HeapHit(pub f32, pub u32);

impl Eq for HeapHit {}

impl Ord for HeapHit {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for HeapHit {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    pub fn new(k: usize) -> Self {
        TopK { k, heap: std::collections::BinaryHeap::with_capacity(k + 1) }
    }

    pub fn push(&mut self, id: u32, score: f32) {
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(HeapHit(score, id)));
        } else if let Some(worst) = self.heap.peek() {
            if score > worst.0 .0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(HeapHit(score, id)));
            }
        }
    }

    /// Current k-th best score (lower bound for admission).
    pub fn threshold(&self) -> f32 {
        if self.heap.len() < self.k {
            f32::NEG_INFINITY
        } else {
            self.heap.peek().map_or(f32::NEG_INFINITY, |w| w.0 .0)
        }
    }

    pub fn into_sorted(self) -> Vec<Hit> {
        let mut v: Vec<Hit> = self
            .heap
            .into_iter()
            .map(|std::cmp::Reverse(HeapHit(score, id))| Hit { id, score })
            .collect();
        v.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        v
    }
}

/// Dot product over slices.
pub(crate) fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topk_keeps_best() {
        let mut t = TopK::new(2);
        for (id, s) in [(0, 0.1), (1, 0.9), (2, 0.5), (3, 0.7)] {
            t.push(id, s);
        }
        let hits = t.into_sorted();
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn topk_threshold_tracks_worst_kept() {
        let mut t = TopK::new(2);
        assert_eq!(t.threshold(), f32::NEG_INFINITY);
        t.push(0, 0.3);
        t.push(1, 0.8);
        assert_eq!(t.threshold(), 0.3);
        t.push(2, 0.5);
        assert_eq!(t.threshold(), 0.5);
    }

    #[test]
    fn topk_fewer_candidates_than_k() {
        let mut t = TopK::new(5);
        t.push(7, 0.2);
        let hits = t.into_sorted();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 7);
    }
}
