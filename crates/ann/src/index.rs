//! The common retrieval interface: maximum-inner-product / cosine top-k
//! search over unit-normalized embeddings.
//!
//! Every index implements [`Retriever`]; serving code (the `unimatch-core`
//! batch-inference pipeline, the serve handlers, the examples, the bench
//! harness) programs against the trait so brute force, IVF, and HNSW are
//! interchangeable. Besides the per-query [`Retriever::search`], the trait
//! provides [`Retriever::search_batch`], which answers many queries in one
//! call and fans them out across threads via `unimatch-parallel` when the
//! total scoring work crosses the configured threshold. The batched
//! results are *identical* to calling `search` per query — parallelism
//! only changes which thread scores which query, never the scores or the
//! ordering.
//!
//! The historical `AnnIndex` name remains available as an alias of
//! [`Retriever`] from the crate root.

use std::fmt;

use unimatch_faults::FaultPoint;
use unimatch_obs as obs;
use unimatch_parallel::par_map_indexed;

/// Chaos-testing seam: a latency fault armed at `ann.search` models a slow
/// index (cold page cache, an overloaded shard). Disarmed cost is one
/// relaxed atomic load per batch.
const SEARCH_FAULT: FaultPoint = FaultPoint::new("ann.search");

/// Why one shard's contribution to a fan-out was dropped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardFailureKind {
    /// The shard's search reported an I/O error (injected or real).
    Io,
    /// The shard's search panicked; the fan-out captured the unwind.
    Panic,
    /// The shard answered, but past its per-shard deadline.
    Deadline,
}

impl ShardFailureKind {
    /// Stable label (`"io"`, `"panic"`, `"deadline"`) for metrics/logs.
    pub fn label(self) -> &'static str {
        match self {
            ShardFailureKind::Io => "io",
            ShardFailureKind::Panic => "panic",
            ShardFailureKind::Deadline => "deadline",
        }
    }
}

/// Health report of one checked search fan-out: how many partitions were
/// asked, and which of them failed (with the reason). An empty failure
/// list means the answer is complete; a non-empty one means the hits are
/// a *partial* top-k over the shards that did answer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardHealth {
    /// Partitions the fan-out covers (1 for unsharded backends).
    pub total: usize,
    /// `(shard index, reason)` for every dropped shard.
    pub failures: Vec<(u32, ShardFailureKind)>,
}

impl ShardHealth {
    /// A fully healthy fan-out over `total` partitions.
    pub fn healthy(total: usize) -> ShardHealth {
        ShardHealth { total, failures: Vec::new() }
    }

    /// True when at least one shard was dropped (the answer is partial).
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
    }

    /// Shards that answered in time.
    pub fn healthy_shards(&self) -> usize {
        self.total - self.failures.len()
    }
}

/// Fewer shards answered than the quorum policy requires; the query has
/// no usable (even partial) result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QuorumError {
    /// Shards that answered in time.
    pub healthy: usize,
    /// Minimum healthy shards the effective policy demanded.
    pub required: usize,
    /// Total shards in the fan-out.
    pub total: usize,
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shard quorum missed: {}/{} shards healthy, policy requires {}",
            self.healthy, self.total, self.required
        )
    }
}

impl std::error::Error for QuorumError {}

/// Per-call options for [`Retriever::search_batch_checked`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchOptions {
    /// Relax the quorum to a single healthy shard for this call — the
    /// brownout ladder's "answer from whatever is still standing" step.
    /// Ignored by unsharded backends.
    pub relax_quorum: bool,
}

/// A scored search hit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Row id of the matched vector.
    pub id: u32,
    /// Inner-product score (cosine similarity for unit vectors).
    pub score: f32,
}

/// A top-k nearest-neighbour retriever over a fixed set of vectors.
///
/// UniMatch's two-tower separation exists precisely so serving can run
/// through an index like this (Sec. III-B1): item embeddings are indexed
/// once, user queries arrive online (IR); or vice versa (UT).
///
/// Implementations score against a shared [`crate::EmbeddingStore`]; the
/// exact reference implementation is [`crate::BruteForceIndex`], and every
/// backend is expected to agree with it up to its documented approximation
/// (exact backends bit-for-bit, ANN backends on recall).
///
/// The `Sync` supertrait keeps the trait object-safe (`dyn Retriever` is
/// used by the serving layer, the examples, and pipeline tests) while
/// allowing the default [`Retriever::search_batch`] to share `&self`
/// across threads.
pub trait Retriever: Send + Sync {
    /// Number of indexed vectors.
    fn len(&self) -> usize;

    /// True when nothing is indexed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Stable backend name (`"bruteforce"`, `"hnsw"`, `"ivf"`), used for
    /// metric labels and surfaced through serving introspection.
    fn backend(&self) -> &'static str;

    /// Pre-formatted `index="…"` label for obs series (static because the
    /// metrics registry interns label sets by pointer).
    fn obs_label(&self) -> &'static str {
        match self.backend() {
            "bruteforce" => "index=\"bruteforce\"",
            "hnsw" => "index=\"hnsw\"",
            "ivf" => "index=\"ivf\"",
            _ => "index=\"other\"",
        }
    }

    /// Number of partitions answering each search: 1 for every plain
    /// backend; [`crate::ShardedRetriever`] reports its fan-out.
    /// Surfaced through serving introspection (`/healthz`).
    fn shards(&self) -> usize {
        1
    }

    /// The `k` highest-inner-product vectors for `query`, best first.
    fn search(&self, query: &[f32], k: usize) -> Vec<Hit>;

    /// Answers one row-major batch of queries (`queries.len()` must be a
    /// multiple of [`Retriever::dim`]), returning one hit list per query
    /// in input order.
    ///
    /// The default implementation fans the queries out over threads with
    /// `unimatch-parallel` when `n_queries × len × dim` multiply-adds exceed
    /// the global work threshold, and falls back to a plain loop otherwise.
    /// Either way each query is answered by the same [`Retriever::search`]
    /// code, so results are identical to the sequential path. Exact
    /// backends override this with the blocked kernel
    /// ([`crate::kernel::top_k_exact`]), which carries the same guarantee.
    fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        SEARCH_FAULT.inject_latency();
        let _span = obs::span_us("unimatch_retrieval_search_us", self.obs_label());
        let d = self.dim();
        assert!(d > 0, "search_batch on an index with zero dimension");
        assert_eq!(
            queries.len() % d,
            0,
            "query batch length {} is not a multiple of dim {}",
            queries.len(),
            d
        );
        let nq = queries.len() / d;
        // 2 flops per multiply-add; exact for brute force, an upper bound
        // for the pruned indexes (IVF probes a subset, HNSW walks a graph).
        let work = nq * self.len() * d * 2;
        par_map_indexed(nq, work, |i| self.search(&queries[i * d..(i + 1) * d], k))
    }

    /// Fallible form of [`Retriever::search_batch`] that also reports
    /// fan-out health. Unsharded backends have no partitions to isolate,
    /// so the default implementation delegates to the infallible path and
    /// always reports a healthy single-partition fan-out;
    /// [`crate::ShardedRetriever`] overrides it with per-shard failure
    /// isolation and a quorum policy.
    fn search_batch_checked(
        &self,
        queries: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<Vec<Hit>>, ShardHealth), QuorumError> {
        let _ = opts;
        Ok((self.search_batch(queries, k), ShardHealth::healthy(self.shards())))
    }
}

/// Fires the `ann.search` latency fault and opens the batch retrieval
/// span — for implementations that override [`Retriever::search_batch`]
/// and must keep the chaos/obs seams identical to the default path.
pub(crate) fn batch_entry_hooks(label: &'static str) -> obs::Span {
    SEARCH_FAULT.inject_latency();
    obs::span_us("unimatch_retrieval_search_us", label)
}
