//! # unimatch-ann
//!
//! The retrieval engine serving UniMatch embeddings: the two-tower
//! architecture keeps user and item representations separable precisely
//! so retrieval can run through an index like these (Sec. III-B1 of the
//! paper, citing \[25\]).
//!
//! Three layers:
//!
//! * [`EmbeddingStore`] — the shared, 32-byte-aligned, row-major
//!   embedding arena every backend scores against (one copy of the
//!   vectors, however many indexes are built over it). Rows can be
//!   stored full-precision or quantized ([`RowFormat`]: `f32`/`f16`/
//!   per-row affine `i8`), and the arena bytes can live on the heap or
//!   in a read-only mmap of a [`table`] sidecar file ([`StoreBacking`]);
//! * [`kernel`] — the single exact-scoring kernel: the workspace's one
//!   [`kernel::dot`], the blocked/tiled [`kernel::top_k_exact`], and its
//!   store-aware twin [`kernel::top_k_exact_store`] whose inner loop is
//!   the fused dequant-dot for quantized rows;
//! * [`Retriever`] — the backend-agnostic search trait, implemented by
//!   [`BruteForceIndex`] (exact scan, the correctness baseline),
//!   [`IvfIndex`] (spherical k-means inverted lists with `nprobe`
//!   tuning), and [`HnswIndex`] (hierarchical navigable small-world
//!   graph).
//!
//! All backends perform maximum-inner-product top-k over unit vectors
//! (equivalently cosine similarity). `AnnIndex` remains as an alias of
//! [`Retriever`] for code written against the pre-engine API.
//!
//! On top of the backends, [`ShardedRetriever`] partitions a store into
//! contiguous row ranges (zero-copy [`EmbeddingStore::view_rows`] views
//! of one arena), searches the per-range indexes in parallel, and k-way
//! merges the results under the canonical `(score desc, lowest id)`
//! order — bitwise identical to the unsharded search for exact backends.

#![warn(missing_docs)]

pub mod bruteforce;
pub mod hnsw;
pub mod index;
pub mod ivf;
pub mod kernel;
pub mod order;
pub mod sharded;
pub mod store;
pub mod table;

pub use bruteforce::BruteForceIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use index::{
    Hit, QuorumError, Retriever, Retriever as AnnIndex, SearchOptions, ShardFailureKind,
    ShardHealth,
};
pub use ivf::{IvfConfig, IvfIndex};
pub use kernel::{dot, top_k_exact, top_k_exact_store};
pub use order::{canonical, sort_canonical};
pub use sharded::{ShardPolicy, ShardedRetriever};
pub use store::{
    f16_to_f32, f32_to_f16, i8_decode, i8_encode, i8_row_params, EmbeddingStore, RowFormat,
    StoreBacking, STORE_ALIGN,
};
pub use table::{open_table, open_table_with, read_table_header, write_table, TableHeader};
