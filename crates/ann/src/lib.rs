//! # unimatch-ann
//!
//! Approximate nearest-neighbour indexes for serving UniMatch embeddings:
//! the two-tower architecture keeps user and item representations
//! separable precisely so retrieval can run through an index like these
//! (Sec. III-B1 of the paper, citing \[25\]).
//!
//! * [`BruteForceIndex`] — exact scan, the correctness baseline;
//! * [`IvfIndex`] — spherical k-means inverted lists with `nprobe` tuning;
//! * [`HnswIndex`] — hierarchical navigable small-world graph.
//!
//! All indexes perform maximum-inner-product top-k over unit vectors
//! (equivalently cosine similarity).

#![warn(missing_docs)]

pub mod bruteforce;
pub mod hnsw;
pub mod index;
pub mod ivf;

pub use bruteforce::BruteForceIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use index::{AnnIndex, Hit};
pub use ivf::{IvfConfig, IvfIndex};
