//! Binary table sidecar files: the zero-copy, mmap-able serialization of
//! an [`EmbeddingStore`].
//!
//! The JSON checkpoint stays the durable source of truth for model
//! parameters, but JSON cannot be mapped into memory — so a fitted item
//! table (in any [`RowFormat`]) can additionally be written as a compact
//! binary *sidecar* next to the checkpoint. Opening a sidecar with
//! `mmap = true` serves straight out of the page cache: the table is
//! paged in lazily, shared across processes, and never copied onto the
//! heap ([`StoreBacking::Mmap`](crate::StoreBacking)).
//!
//! ## File layout (all integers little-endian)
//!
//! | offset | bytes | field |
//! |-------:|------:|-------|
//! | 0      | 8     | magic `"UMTABLE1"` |
//! | 8      | 4     | row format code (0 = f32, 1 = f16, 2 = i8) |
//! | 12     | 4     | reserved (zero) |
//! | 16     | 8     | rows |
//! | 24     | 8     | dim |
//! | 32     | 8     | `source_checksum` — the `embedding_checksum` of the checkpoint this table was derived from |
//! | 40     | 8     | `table_checksum` — FNV-1a over every other byte of the file |
//! | 48     | 8     | params length in bytes (`rows × 8` for i8, else 0) |
//! | 56     | 8     | data length in bytes (`rows × dim × bytes_per_value`) |
//! | 64     | …     | per-row `[scale, zero]` f32 pairs (i8 only) |
//! | pad to 64-byte boundary | | |
//! | `data_off` | … | row-major encoded rows |
//!
//! The data section starts on a 64-byte boundary, so a page-aligned map
//! hands the store an f32/f16-aligned (and `STORE_ALIGN`-compatible)
//! base pointer.
//!
//! ## Integrity
//!
//! `table_checksum` covers the whole file except its own field, so any
//! single-bit flip — header, params, or data — is detected. [`open_table`]
//! validates eagerly: it streams the file once, checks magic, sizes
//! (truncation), and the checksum, and only then maps or copies it. The
//! validation read warms the page cache, so the eager pass costs one
//! sequential scan, not a second steady-state copy. `source_checksum`
//! binds the sidecar to the checkpoint that produced it: loaders compare
//! it against the checkpoint's own `embedding_checksum` and reject stale
//! or foreign sidecars.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::ptr::NonNull;
use std::sync::Arc;

use crate::store::{Arena, EmbeddingStore, RowFormat};

/// Leading magic of every table sidecar file.
pub const TABLE_MAGIC: &[u8; 8] = b"UMTABLE1";

/// Fixed header size; also the alignment of the data section.
const HEADER_LEN: usize = 64;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn round_up(n: usize, align: usize) -> usize {
    n.div_ceil(align) * align
}

// ---------------------------------------------------------------------------
// Memory mapping (no libc crate in the workspace: std already links libc
// on unix, so the two syscall wrappers are declared directly)
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod sys {
    extern "C" {
        pub fn mmap(
            addr: *mut u8,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut u8;
        pub fn munmap(addr: *mut u8, len: usize) -> i32;
    }
    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
}

/// A read-only, page-aligned private map of a whole file. Unmapped on
/// drop.
pub(crate) struct MmapRegion {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the region is a read-only private mapping; aliasing it across
// threads is as safe as sharing a &[u8]. (The map is validated at open;
// later external modification of the file does not alter a MAP_PRIVATE
// view's already-resident pages.)
unsafe impl Send for MmapRegion {}
unsafe impl Sync for MmapRegion {}

impl MmapRegion {
    /// Maps `len` bytes of `file` read-only.
    #[cfg(unix)]
    fn map(file: &fs::File, len: usize) -> io::Result<MmapRegion> {
        use std::os::unix::io::AsRawFd;
        assert!(len > 0, "cannot map an empty file");
        // SAFETY: fd is a valid open file descriptor for `file`, len > 0,
        // and a NULL addr lets the kernel pick the placement.
        let raw = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if raw as isize == -1 {
            return Err(io::Error::last_os_error());
        }
        let ptr = NonNull::new(raw)
            .ok_or_else(|| io::Error::other("mmap returned a null mapping"))?;
        Ok(MmapRegion { ptr, len })
    }

    #[cfg(not(unix))]
    fn map(_file: &fs::File, _len: usize) -> io::Result<MmapRegion> {
        Err(io::Error::other("mmap-backed stores require a unix platform"))
    }

    pub(crate) fn as_bytes(&self) -> &[u8] {
        // SAFETY: the mapping covers exactly len readable bytes for the
        // region's lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for MmapRegion {
    fn drop(&mut self) {
        #[cfg(unix)]
        // SAFETY: ptr/len describe the mapping created in map().
        unsafe {
            sys::munmap(self.ptr.as_ptr(), self.len);
        }
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

/// The parsed fixed header of a table sidecar file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TableHeader {
    /// Row encoding of the stored table.
    pub format: RowFormat,
    /// Number of rows.
    pub rows: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// The `embedding_checksum` of the checkpoint the table was derived
    /// from — loaders reject sidecars whose source doesn't match.
    pub source_checksum: u64,
    /// FNV-1a over every file byte except this field.
    pub table_checksum: u64,
}

impl TableHeader {
    fn params_len(&self) -> usize {
        match self.format {
            RowFormat::I8 => self.rows * 8,
            _ => 0,
        }
    }

    fn data_len(&self) -> usize {
        self.rows * self.dim * self.format.bytes_per_value()
    }

    fn data_off(&self) -> usize {
        round_up(HEADER_LEN + self.params_len(), HEADER_LEN)
    }

    fn file_len(&self) -> usize {
        self.data_off() + self.data_len()
    }

    fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(TABLE_MAGIC);
        h[8..12].copy_from_slice(&self.format.code().to_le_bytes());
        h[16..24].copy_from_slice(&(self.rows as u64).to_le_bytes());
        h[24..32].copy_from_slice(&(self.dim as u64).to_le_bytes());
        h[32..40].copy_from_slice(&self.source_checksum.to_le_bytes());
        h[40..48].copy_from_slice(&self.table_checksum.to_le_bytes());
        h[48..56].copy_from_slice(&(self.params_len() as u64).to_le_bytes());
        h[56..64].copy_from_slice(&(self.data_len() as u64).to_le_bytes());
        h
    }

    fn decode(bytes: &[u8]) -> io::Result<TableHeader> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        if bytes.len() < HEADER_LEN {
            return Err(bad(format!("table file truncated: {} byte header", bytes.len())));
        }
        if &bytes[0..8] != TABLE_MAGIC {
            return Err(bad("table file magic mismatch".to_string()));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
        let format = RowFormat::from_code(u32_at(8))
            .ok_or_else(|| bad(format!("unknown table row format code {}", u32_at(8))))?;
        let header = TableHeader {
            format,
            rows: u64_at(16) as usize,
            dim: u64_at(24) as usize,
            source_checksum: u64_at(32),
            table_checksum: u64_at(40),
        };
        if header.dim == 0 {
            return Err(bad("table dim must be positive".to_string()));
        }
        if u64_at(48) as usize != header.params_len() || u64_at(56) as usize != header.data_len() {
            return Err(bad("table section lengths disagree with shape".to_string()));
        }
        Ok(header)
    }
}

/// FNV-1a over every byte of a serialized table file except the
/// `table_checksum` field itself (bytes 40..48).
fn checksum_file_bytes(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    fnv1a(&mut hash, &bytes[..40]);
    fnv1a(&mut hash, &bytes[48..]);
    hash
}

// ---------------------------------------------------------------------------
// Write / open
// ---------------------------------------------------------------------------

/// Serializes `store`'s window as a table sidecar at `path`
/// (atomically: temp file + rename). `source_checksum` is the
/// `embedding_checksum` of the checkpoint the table derives from.
///
/// The byte image is deterministic for a given store, so repeated saves
/// are bit-identical. Multi-byte values are little-endian on disk; the
/// in-memory arena uses the same layout on the little-endian targets
/// this workspace supports.
pub fn write_table(
    store: &EmbeddingStore,
    source_checksum: u64,
    path: &Path,
) -> io::Result<TableHeader> {
    let mut header = TableHeader {
        format: store.format(),
        rows: store.rows(),
        dim: store.dim(),
        source_checksum,
        table_checksum: 0,
    };
    let mut image = vec![0u8; header.file_len()];
    if header.format == RowFormat::I8 {
        for (out, p) in
            image[HEADER_LEN..HEADER_LEN + header.params_len()].chunks_exact_mut(8).zip(
                store.window_params(),
            )
        {
            out[0..4].copy_from_slice(&p[0].to_le_bytes());
            out[4..8].copy_from_slice(&p[1].to_le_bytes());
        }
    }
    let data_off = header.data_off();
    image[data_off..].copy_from_slice(store.window_bytes());
    image[..HEADER_LEN].copy_from_slice(&header.encode());
    header.table_checksum = checksum_file_bytes(&image);
    image[40..48].copy_from_slice(&header.table_checksum.to_le_bytes());

    let tmp = path.with_extension("table.tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(header)
}

/// Reads and validates only the fixed header of a table sidecar (cheap
/// staleness probe before deciding to rewrite or open).
pub fn read_table_header(path: &Path) -> io::Result<TableHeader> {
    use std::io::Read;
    let mut bytes = vec![0u8; HEADER_LEN];
    fs::File::open(path)?.read_exact(&mut bytes).map_err(|_| {
        io::Error::new(io::ErrorKind::InvalidData, "table file truncated: short header")
    })?;
    TableHeader::decode(&bytes)
}

/// [`open_table_with`] without a tamper hook.
pub fn open_table(path: &Path, mmap: bool) -> io::Result<(EmbeddingStore, TableHeader)> {
    open_table_with(path, mmap, |_| {})
}

/// Opens a table sidecar as an [`EmbeddingStore`].
///
/// The whole file is read once and validated — magic, shape-consistent
/// section lengths (catching truncation), and the full-file checksum —
/// before any arena is built. With `mmap = false` the data section is
/// copied into an owned aligned arena; with `mmap = true` the file is
/// mapped read-only and the store serves from the page cache with zero
/// heap copy (the validation read already warmed those pages).
///
/// `tamper` runs over the raw file bytes before validation — the fault
/// seam the persistence layer's `persist.load_corrupt` injection uses to
/// prove single-bit corruption is always rejected, identically for both
/// backings.
pub fn open_table_with(
    path: &Path,
    mmap: bool,
    tamper: impl FnOnce(&mut Vec<u8>),
) -> io::Result<(EmbeddingStore, TableHeader)> {
    let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
    let mut bytes = fs::read(path)?;
    tamper(&mut bytes);
    let header = TableHeader::decode(&bytes)?;
    if bytes.len() != header.file_len() {
        return Err(bad(format!(
            "table file length {} does not match header ({} expected)",
            bytes.len(),
            header.file_len()
        )));
    }
    let got = checksum_file_bytes(&bytes);
    if got != header.table_checksum {
        return Err(bad(format!(
            "table checksum mismatch: stored {:016x}, computed {got:016x}",
            header.table_checksum
        )));
    }
    let params: Vec<[f32; 2]> = bytes[HEADER_LEN..HEADER_LEN + header.params_len()]
        .chunks_exact(8)
        .map(|p| {
            [
                f32::from_le_bytes(p[0..4].try_into().expect("4 bytes")),
                f32::from_le_bytes(p[4..8].try_into().expect("4 bytes")),
            ]
        })
        .collect();
    let data_off = header.data_off();
    let (arena, base) = if mmap {
        let file = fs::File::open(path)?;
        let region = MmapRegion::map(&file, header.file_len())?;
        // The validated read and the map are two reads of the same path;
        // a write racing between them is caught by the next reload, not
        // this open — same contract as the JSON checkpoint loader.
        (Arc::new(Arena::mmap(region)), data_off)
    } else {
        (Arc::new(Arena::owned_copy(&bytes[data_off..])), 0)
    };
    let store = EmbeddingStore::from_table_parts(
        arena,
        base,
        header.format,
        header.rows,
        header.dim,
        params,
    );
    Ok((store, header))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store(format: RowFormat) -> EmbeddingStore {
        let data: Vec<f32> = (0..60).map(|i| (i as f32 * 0.7).sin()).collect();
        EmbeddingStore::from_rows(&data, 6).quantize(format)
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("unimatch_table_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir
    }

    #[test]
    fn round_trips_every_format_and_backing() {
        let dir = tmp_dir("roundtrip");
        for format in RowFormat::ALL {
            let store = sample_store(format);
            let path = dir.join(format!("t_{}.table", format.name()));
            let written = write_table(&store, 0xfeed, &path).expect("write");
            assert_eq!(written.source_checksum, 0xfeed);
            for mmap in [false, true] {
                let (loaded, header) = open_table(&path, mmap).expect("open");
                assert_eq!(header, written);
                assert_eq!(loaded.format(), format);
                assert_eq!(
                    loaded.backing().name(),
                    if mmap { "mmap" } else { "owned" }
                );
                assert_eq!(loaded.rows(), store.rows());
                assert_eq!(loaded.dim(), store.dim());
                assert_eq!(loaded.window_bytes(), store.window_bytes(), "{format:?}");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repeated_writes_are_bit_identical() {
        let dir = tmp_dir("determinism");
        let store = sample_store(RowFormat::I8);
        let (a, b) = (dir.join("a.table"), dir.join("b.table"));
        write_table(&store, 7, &a).expect("write a");
        write_table(&store, 7, &b).expect("write b");
        assert_eq!(std::fs::read(&a).expect("a"), std::fs::read(&b).expect("b"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_and_any_bit_flip_are_rejected() {
        let dir = tmp_dir("corrupt");
        let store = sample_store(RowFormat::I8);
        let path = dir.join("t.table");
        write_table(&store, 1, &path).expect("write");
        let image = std::fs::read(&path).expect("read");
        // truncation at every section boundary and a few interior points
        for cut in [0, 8, HEADER_LEN - 1, HEADER_LEN, image.len() / 2, image.len() - 1] {
            for mmap in [false, true] {
                let err = open_table_with(&path, mmap, |b| b.truncate(cut))
                    .expect_err("truncated file must be rejected");
                assert_eq!(err.kind(), io::ErrorKind::InvalidData, "cut={cut}");
            }
        }
        // flip one bit per byte across the whole image (both backings
        // share the same validation path; alternate to keep this fast)
        for byte in 0..image.len() {
            let err = open_table_with(&path, byte % 2 == 0, |b| b[byte] ^= 1)
                .expect_err("bit flip must be rejected");
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "byte={byte}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_probe_reads_shape_without_payload() {
        let dir = tmp_dir("probe");
        let store = sample_store(RowFormat::F16);
        let path = dir.join("t.table");
        let written = write_table(&store, 42, &path).expect("write");
        let probed = read_table_header(&path).expect("probe");
        assert_eq!(probed, written);
        assert_eq!(probed.rows, 10);
        assert_eq!(probed.dim, 6);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
