//! The shared embedding arena every retrieval path scores against.
//!
//! [`EmbeddingStore`] owns a row-major `f32` matrix in a 32-byte-aligned
//! allocation (one cache-line-friendly, SIMD-ready block — the alignment
//! a future vectorized or mmap-backed kernel can rely on) plus an
//! optional id↔row mapping for corpora whose external ids are not dense
//! row indices (e.g. the user pool's user ids). Indexes hold the store
//! behind an `Arc`, so brute force, HNSW, and IVF built over the same
//! embeddings share one arena instead of three private copies.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::Arc;

/// Alignment (bytes) of every [`EmbeddingStore`] allocation.
pub const STORE_ALIGN: usize = 32;

/// A fixed-size, 32-byte-aligned `f32` buffer.
///
/// `Vec<f32>` only guarantees 4-byte alignment; this buffer allocates
/// through [`std::alloc`] with an explicit [`STORE_ALIGN`]-byte layout so
/// the arena's base address is stable for aligned loads.
struct AlignedBuf {
    ptr: NonNull<f32>,
    len: usize,
}

// SAFETY: the buffer is an owned allocation of plain floats; sharing or
// sending it across threads is exactly as safe as for a Vec<f32>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Layout of a `len`-float allocation. Panics if the size overflows.
    fn layout(len: usize) -> Layout {
        let bytes = len.checked_mul(std::mem::size_of::<f32>()).expect("store size overflow");
        Layout::from_size_align(bytes, STORE_ALIGN).expect("store layout")
    }

    /// An aligned, zero-initialized buffer of `len` floats.
    fn zeroed(len: usize) -> AlignedBuf {
        if len == 0 {
            return AlignedBuf { ptr: NonNull::dangling(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw.cast::<f32>()) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    fn as_slice(&self) -> &[f32] {
        // SAFETY: ptr covers exactly len initialized floats (zeroed at
        // allocation, only ever written through as_mut_slice).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as as_slice, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in zeroed() with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr().cast(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedBuf {
    fn clone(&self) -> AlignedBuf {
        let mut out = AlignedBuf::zeroed(self.len);
        out.as_mut_slice().copy_from_slice(self.as_slice());
        out
    }
}

/// Row ↔ external-id mapping for stores whose rows are not identified by
/// their own index (kept out of the hot path: searches speak row ids,
/// translation happens once per returned hit).
#[derive(Clone, Debug, Default)]
struct IdMap {
    row_to_id: Vec<u32>,
    id_to_row: HashMap<u32, u32>,
}

/// An aligned, row-major embedding matrix with id↔row mapping — either a
/// whole owned arena or a zero-copy row-range *view* into one.
///
/// Built either by copying rows in ([`EmbeddingStore::from_vec`],
/// [`EmbeddingStore::with_ids`]) or zero-fill-then-write
/// ([`EmbeddingStore::zeroed`] + [`EmbeddingStore::data_mut`] — the
/// checkpoint-direct load path, which decodes the embedding section of a
/// serialized model straight into the arena without materializing any
/// intermediate parameter set).
///
/// The arena itself sits behind an `Arc`, so
/// [`EmbeddingStore::view_rows`] can cut a contiguous row range into its
/// own `EmbeddingStore` without copying a float — the mechanism the
/// sharded retriever uses to hand each shard a window of one shared
/// arena. Views are read-only: the mutating accessors
/// ([`EmbeddingStore::data_mut`], [`EmbeddingStore::row_mut`]) require
/// the arena to still be uniquely owned, which is exactly the
/// fill-then-share lifecycle every construction path follows.
pub struct EmbeddingStore {
    buf: Arc<AlignedBuf>,
    /// First float of this store's window into the arena
    /// (`row offset × dim`).
    offset: usize,
    /// Floats in this store's window (`rows × dim`).
    len: usize,
    dim: usize,
    ids: Option<IdMap>,
}

impl EmbeddingStore {
    /// A zero-initialized `rows × dim` store (fill via
    /// [`EmbeddingStore::data_mut`] / [`EmbeddingStore::row_mut`]).
    pub fn zeroed(rows: usize, dim: usize) -> EmbeddingStore {
        assert!(dim > 0, "dim must be positive");
        let len = rows * dim;
        EmbeddingStore { buf: Arc::new(AlignedBuf::zeroed(len)), offset: 0, len, dim, ids: None }
    }

    /// Copies a row-major `n × dim` buffer into a fresh aligned arena.
    pub fn from_rows(data: &[f32], dim: usize) -> EmbeddingStore {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        let mut store = EmbeddingStore::zeroed(data.len() / dim, dim);
        store.data_mut().copy_from_slice(data);
        store
    }

    /// [`EmbeddingStore::from_rows`] taking ownership (the common call
    /// shape at index-build sites).
    pub fn from_vec(data: Vec<f32>, dim: usize) -> EmbeddingStore {
        EmbeddingStore::from_rows(&data, dim)
    }

    /// A store whose rows carry external ids (`ids[r]` is row `r`'s id).
    pub fn with_ids(data: &[f32], dim: usize, ids: Vec<u32>) -> EmbeddingStore {
        let mut store = EmbeddingStore::from_rows(data, dim);
        store.set_ids(ids);
        store
    }

    /// Attaches (or replaces) the external-id mapping. Ids must be unique
    /// and one per row.
    pub fn set_ids(&mut self, ids: Vec<u32>) {
        assert_eq!(ids.len(), self.rows(), "one id per row");
        let mut id_to_row = HashMap::with_capacity(ids.len());
        for (r, &id) in ids.iter().enumerate() {
            let prev = id_to_row.insert(id, r as u32);
            assert!(prev.is_none(), "duplicate store id {id}");
        }
        self.ids = Some(IdMap { row_to_id: ids, id_to_row });
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.len / self.dim
    }

    /// Alias for [`EmbeddingStore::rows`], matching the index trait.
    pub fn len(&self) -> usize {
        self.rows()
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.as_slice()[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutable row `r` (checkpoint-load fill path).
    ///
    /// # Panics
    /// Panics if the arena is already shared (a view exists or the store
    /// sits behind a cloned `Arc`) — stores follow a strict
    /// fill-then-share lifecycle.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let d = self.dim;
        &mut self.data_mut()[r * d..(r + 1) * d]
    }

    /// This store's window of the arena, row-major.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf.as_slice()[self.offset..self.offset + self.len]
    }

    /// The whole arena, mutable (checkpoint-load fill path).
    ///
    /// # Panics
    /// Panics if the arena is already shared — see
    /// [`EmbeddingStore::row_mut`].
    pub fn data_mut(&mut self) -> &mut [f32] {
        let (offset, len) = (self.offset, self.len);
        let buf = Arc::get_mut(&mut self.buf)
            .expect("mutating an embedding arena that is already shared");
        &mut buf.as_mut_slice()[offset..offset + len]
    }

    /// A zero-copy view of rows `start..end` sharing this store's arena:
    /// row `r` of the view is row `start + r` of `self`. The view carries
    /// no id mapping — callers translate through the parent store (the
    /// sharded retriever's offset arithmetic does exactly that).
    pub fn view_rows(&self, start: usize, end: usize) -> EmbeddingStore {
        assert!(start <= end && end <= self.rows(), "view {start}..{end} out of bounds");
        EmbeddingStore {
            buf: self.buf.clone(),
            offset: self.offset + start * self.dim,
            len: (end - start) * self.dim,
            dim: self.dim,
            ids: None,
        }
    }

    /// True when `self` and `other` are windows over the same allocation
    /// (i.e. a view relationship, not a copy).
    pub fn shares_arena(&self, other: &EmbeddingStore) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// The external id of row `row` (the row index itself when no mapping
    /// is attached).
    pub fn id_of_row(&self, row: usize) -> u32 {
        match &self.ids {
            Some(map) => map.row_to_id[row],
            None => row as u32,
        }
    }

    /// The row holding external id `id`, if present.
    pub fn row_of_id(&self, id: u32) -> Option<usize> {
        match &self.ids {
            Some(map) => map.id_to_row.get(&id).map(|&r| r as usize),
            None => ((id as usize) < self.rows()).then_some(id as usize),
        }
    }

    /// Wraps the store for sharing across indexes.
    pub fn into_shared(self) -> Arc<EmbeddingStore> {
        Arc::new(self)
    }
}

impl Clone for EmbeddingStore {
    /// Deep copy of this store's window into a fresh arena (views stay
    /// zero-copy only through [`EmbeddingStore::view_rows`]; `clone` is
    /// always an independent allocation).
    fn clone(&self) -> EmbeddingStore {
        let mut copy = EmbeddingStore::zeroed(self.rows(), self.dim);
        copy.data_mut().copy_from_slice(self.as_slice());
        copy.ids = self.ids.clone();
        copy
    }
}

impl std::fmt::Debug for EmbeddingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingStore")
            .field("rows", &self.rows())
            .field("dim", &self.dim)
            .field("mapped", &self.ids.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_32_byte_aligned() {
        for rows in [1, 3, 17, 257] {
            let store = EmbeddingStore::zeroed(rows, 16);
            assert_eq!(store.as_slice().as_ptr() as usize % STORE_ALIGN, 0, "rows={rows}");
        }
    }

    #[test]
    fn rows_round_trip() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let store = EmbeddingStore::from_rows(&data, 2);
        assert_eq!(store.rows(), 3);
        assert_eq!(store.row(1), &[3.0, 4.0]);
        assert_eq!(store.as_slice(), data.as_slice());
    }

    #[test]
    fn identity_mapping_by_default() {
        let store = EmbeddingStore::from_rows(&[0.0; 8], 2);
        assert_eq!(store.id_of_row(3), 3);
        assert_eq!(store.row_of_id(2), Some(2));
        assert_eq!(store.row_of_id(4), None);
    }

    #[test]
    fn explicit_id_mapping() {
        let store = EmbeddingStore::with_ids(&[0.0; 6], 2, vec![100, 7, 42]);
        assert_eq!(store.id_of_row(0), 100);
        assert_eq!(store.row_of_id(42), Some(2));
        assert_eq!(store.row_of_id(5), None);
    }

    #[test]
    #[should_panic(expected = "duplicate store id")]
    fn duplicate_ids_rejected() {
        EmbeddingStore::with_ids(&[0.0; 6], 2, vec![1, 2, 1]);
    }

    #[test]
    fn empty_store_is_valid() {
        let store = EmbeddingStore::zeroed(0, 4);
        assert!(store.is_empty());
        assert_eq!(store.rows(), 0);
        assert!(store.as_slice().is_empty());
    }

    #[test]
    fn views_are_zero_copy_windows() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let store = EmbeddingStore::from_rows(&data, 2);
        let view = store.view_rows(2, 5);
        assert!(view.shares_arena(&store));
        assert_eq!(view.rows(), 3);
        assert_eq!(view.dim(), 2);
        assert_eq!(view.row(0), store.row(2));
        assert_eq!(view.as_slice(), &data[4..10]);
        // same allocation, not a copy
        assert_eq!(view.row(0).as_ptr(), store.row(2).as_ptr());
        // views drop the id mapping: rows are local indices again
        assert_eq!(view.id_of_row(1), 1);
        // view of a view composes offsets
        let inner = view.view_rows(1, 3);
        assert_eq!(inner.as_slice(), &data[6..10]);
        assert!(inner.shares_arena(&store));
        // empty and full views are valid
        assert_eq!(store.view_rows(6, 6).rows(), 0);
        assert_eq!(store.view_rows(0, 6).as_slice(), store.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_bounds_checked() {
        EmbeddingStore::zeroed(4, 2).view_rows(2, 5);
    }

    #[test]
    #[should_panic(expected = "already shared")]
    fn mutating_a_shared_arena_panics() {
        let mut store = EmbeddingStore::zeroed(4, 2);
        let _view = store.view_rows(0, 2);
        store.row_mut(0)[0] = 1.0;
    }

    #[test]
    fn clone_copies_the_arena() {
        let a = EmbeddingStore::with_ids(&[1.0, 2.0], 2, vec![9]);
        let b = a.clone();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(b.id_of_row(0), 9);
        assert_eq!(b.as_slice().as_ptr() as usize % STORE_ALIGN, 0);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }
}
