//! The shared embedding arena every retrieval path scores against.
//!
//! [`EmbeddingStore`] owns a row-major matrix in a 32-byte-aligned
//! allocation (one cache-line-friendly, SIMD-ready block) plus an
//! optional id↔row mapping for corpora whose external ids are not dense
//! row indices (e.g. the user pool's user ids). Indexes hold the store
//! behind an `Arc`, so brute force, HNSW, and IVF built over the same
//! embeddings share one arena instead of three private copies.
//!
//! Two orthogonal axes extend the original f32 arena:
//!
//! * **[`RowFormat`]** — rows are stored as `f32`, IEEE 754 half
//!   precision (`f16`), or per-row affine-quantized 8-bit codes (`i8`).
//!   Quantized stores never hand out borrowed `&[f32]` rows; scoring
//!   goes through the fused [`EmbeddingStore::score_row`] (dequantize
//!   inside the multiply-add loop, no row materialized) and cold paths
//!   through [`EmbeddingStore::decode_row`].
//! * **[`StoreBacking`]** — the arena bytes are either an owned
//!   allocation or a read-only `mmap` of a table sidecar file (see
//!   [`crate::table`]), so a multi-GB item table is paged in lazily and
//!   shared across processes instead of copied onto every heap.
//!
//! Determinism contract: for a fixed format, [`EmbeddingStore::score_row`]
//! is one sequential multiply-add reduction in row order — the same
//! association order as [`crate::dot`] — so scores are bit-identical
//! across runs, thread counts, and backings (owned and mmap arenas hold
//! identical bytes).

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::borrow::Cow;
use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::Arc;

use crate::table::MmapRegion;

/// Alignment (bytes) of every owned [`EmbeddingStore`] allocation.
pub const STORE_ALIGN: usize = 32;

/// How a store's rows are encoded in the arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RowFormat {
    /// Full-precision `f32` rows (the training/checkpoint format).
    F32,
    /// IEEE 754 binary16 rows: 2 bytes per value, ~3 decimal digits.
    F16,
    /// Per-row affine 8-bit codes: 1 byte per value plus a `[scale,
    /// zero]` pair per row; `value = zero + scale * code`.
    I8,
}

impl RowFormat {
    /// Bytes one value occupies in this format.
    pub fn bytes_per_value(self) -> usize {
        match self {
            RowFormat::F32 => 4,
            RowFormat::F16 => 2,
            RowFormat::I8 => 1,
        }
    }

    /// The CLI / schema name (`f32`, `f16`, `i8`).
    pub fn name(self) -> &'static str {
        match self {
            RowFormat::F32 => "f32",
            RowFormat::F16 => "f16",
            RowFormat::I8 => "i8",
        }
    }

    /// Parses a CLI / schema name.
    pub fn parse(s: &str) -> Option<RowFormat> {
        match s {
            "f32" => Some(RowFormat::F32),
            "f16" => Some(RowFormat::F16),
            "i8" => Some(RowFormat::I8),
            _ => None,
        }
    }

    /// Stable on-disk code for the table sidecar header.
    pub(crate) fn code(self) -> u32 {
        match self {
            RowFormat::F32 => 0,
            RowFormat::F16 => 1,
            RowFormat::I8 => 2,
        }
    }

    /// Inverse of [`RowFormat::code`].
    pub(crate) fn from_code(c: u32) -> Option<RowFormat> {
        match c {
            0 => Some(RowFormat::F32),
            1 => Some(RowFormat::F16),
            2 => Some(RowFormat::I8),
            _ => None,
        }
    }

    /// Every format, in declaration order (bench/eval sweeps).
    pub const ALL: [RowFormat; 3] = [RowFormat::F32, RowFormat::F16, RowFormat::I8];
}

/// Where a store's arena bytes live.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StoreBacking {
    /// An owned, 32-byte-aligned heap allocation.
    Owned,
    /// A read-only memory map of a table sidecar file.
    Mmap,
}

impl StoreBacking {
    /// The CLI / `/healthz` name (`owned`, `mmap`).
    pub fn name(self) -> &'static str {
        match self {
            StoreBacking::Owned => "owned",
            StoreBacking::Mmap => "mmap",
        }
    }
}

// ---------------------------------------------------------------------------
// f16 codec (no `half` crate in the workspace — hand-rolled bit transport)
// ---------------------------------------------------------------------------

/// Converts an `f32` to IEEE 754 binary16 bits, rounding to nearest even.
/// Infinities and NaN map to their half-precision counterparts (store
/// construction rejects non-finite values before encoding).
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let man = bits & 0x007f_ffff;
    if exp == 0xff {
        // Inf / NaN: keep NaN-ness with a quiet payload bit.
        return sign | 0x7c00 | if man != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → ±inf
    }
    if unbiased >= -14 {
        // Normal half: drop 13 mantissa bits with round-to-nearest-even.
        let mut half_exp = (unbiased + 15) as u32;
        let mut half_man = man >> 13;
        let round = man & 0x1fff;
        if round > 0x1000 || (round == 0x1000 && half_man & 1 == 1) {
            half_man += 1;
            if half_man == 0x400 {
                half_man = 0;
                half_exp += 1;
                if half_exp >= 31 {
                    return sign | 0x7c00;
                }
            }
        }
        return sign | ((half_exp as u16) << 10) | half_man as u16;
    }
    if unbiased < -25 {
        return sign; // underflow → ±0
    }
    // Subnormal half: shift the hidden bit into the mantissa field.
    let man = man | 0x0080_0000;
    let shift = (13 - 14 - unbiased) as u32;
    let mut half_man = man >> shift;
    let round = man & ((1u32 << shift) - 1);
    let halfway = 1u32 << (shift - 1);
    if round > halfway || (round == halfway && half_man & 1 == 1) {
        // A carry out of the subnormal range lands on 0x0400, which is
        // exactly the smallest normal encoding — no fixup needed.
        half_man += 1;
    }
    sign | half_man as u16
}

/// Converts IEEE 754 binary16 bits back to `f32` (exact).
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let man = (h & 0x03ff) as u32;
    let bits = if exp == 0 {
        if man == 0 {
            sign // ±0
        } else {
            // Subnormal half: renormalize into an f32 exponent.
            let mut e: i32 = 113;
            let mut m = man;
            while m & 0x400 == 0 {
                m <<= 1;
                e -= 1;
            }
            sign | ((e as u32) << 23) | ((m & 0x3ff) << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (man << 13) // ±inf / NaN
    } else {
        sign | ((exp + 112) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

// ---------------------------------------------------------------------------
// i8 codec: per-row affine quantization
// ---------------------------------------------------------------------------

/// Per-row `[scale, zero]` for a row's `i8` codes: `value = zero +
/// scale * code`, codes in `0..=255`. The overflow-safe `max/255 -
/// min/255` form keeps the scale finite even for ±`f32::MAX` rows.
pub fn i8_row_params(row: &[f32]) -> [f32; 2] {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &x in row {
        assert!(x.is_finite(), "non-finite value {x} cannot be quantized");
        min = min.min(x);
        max = max.max(x);
    }
    let scale = max / 255.0 - min / 255.0;
    [scale, min]
}

/// Encodes one value against a row's `[scale, zero]` params.
pub fn i8_encode(x: f32, params: [f32; 2]) -> u8 {
    let [scale, zero] = params;
    if scale <= 0.0 {
        return 0; // constant row: every value decodes to `zero` exactly
    }
    ((x - zero) / scale).round().clamp(0.0, 255.0) as u8
}

/// Decodes one `i8` code against a row's `[scale, zero]` params.
pub fn i8_decode(code: u8, params: [f32; 2]) -> f32 {
    params[1] + params[0] * code as f32
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

/// A fixed-size, 32-byte-aligned byte buffer.
///
/// `Vec<u8>` only guarantees 1-byte alignment; this buffer allocates
/// through [`std::alloc`] with an explicit [`STORE_ALIGN`]-byte layout so
/// the arena's base address is stable for aligned `f32` loads.
pub(crate) struct AlignedBuf {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: the buffer is an owned allocation of plain bytes; sharing or
// sending it across threads is exactly as safe as for a Vec<u8>.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

impl AlignedBuf {
    /// Layout of a `len`-byte allocation. Panics if the size overflows.
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len, STORE_ALIGN).expect("store layout")
    }

    /// An aligned, zero-initialized buffer of `len` bytes.
    fn zeroed(len: usize) -> AlignedBuf {
        if len == 0 {
            // Dangle at STORE_ALIGN so empty windows still cast to &[f32].
            let ptr = NonNull::new(STORE_ALIGN as *mut u8).expect("non-zero align");
            return AlignedBuf { ptr, len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        AlignedBuf { ptr, len }
    }

    fn as_bytes(&self) -> &[u8] {
        // SAFETY: ptr covers exactly len initialized bytes (zeroed at
        // allocation, only ever written through as_bytes_mut).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }

    fn as_bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: as as_bytes, plus &mut self guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        if self.len > 0 {
            // SAFETY: allocated in zeroed() with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr(), Self::layout(self.len)) };
        }
    }
}

/// The arena bytes behind a store: one owned allocation or one mmap.
pub(crate) enum Arena {
    /// Owned aligned heap bytes.
    Owned(AlignedBuf),
    /// A read-only map of a table sidecar file.
    Mmap(MmapRegion),
}

impl Arena {
    /// Wraps an mmap'd table file as an arena.
    pub(crate) fn mmap(region: MmapRegion) -> Arena {
        Arena::Mmap(region)
    }

    /// Copies raw bytes into a fresh owned, aligned arena.
    pub(crate) fn owned_copy(bytes: &[u8]) -> Arena {
        let mut buf = AlignedBuf::zeroed(bytes.len());
        buf.as_bytes_mut().copy_from_slice(bytes);
        Arena::Owned(buf)
    }

    fn bytes(&self) -> &[u8] {
        match self {
            Arena::Owned(buf) => buf.as_bytes(),
            Arena::Mmap(map) => map.as_bytes(),
        }
    }

    fn backing(&self) -> StoreBacking {
        match self {
            Arena::Owned(_) => StoreBacking::Owned,
            Arena::Mmap(_) => StoreBacking::Mmap,
        }
    }
}

/// Row ↔ external-id mapping for stores whose rows are not identified by
/// their own index (kept out of the hot path: searches speak row ids,
/// translation happens once per returned hit).
#[derive(Clone, Debug, Default)]
struct IdMap {
    row_to_id: Vec<u32>,
    id_to_row: HashMap<u32, u32>,
}

/// An aligned, row-major embedding matrix with id↔row mapping — either a
/// whole arena (owned or mmap'd, see [`StoreBacking`]) or a zero-copy
/// row-range *view* into one, in any [`RowFormat`].
///
/// Built either by copying rows in ([`EmbeddingStore::from_vec`],
/// [`EmbeddingStore::with_ids`]), zero-fill-then-write
/// ([`EmbeddingStore::zeroed`] + [`EmbeddingStore::data_mut`] — the
/// checkpoint-direct load path), re-encoding an f32 store
/// ([`EmbeddingStore::quantize`]), or opening a table sidecar file
/// ([`crate::table::open_table`]).
///
/// The arena itself sits behind an `Arc`, so
/// [`EmbeddingStore::view_rows`] can cut a contiguous row range into its
/// own `EmbeddingStore` without copying a value — the mechanism the
/// sharded retriever uses to hand each shard a window of one shared
/// arena, identically for owned and mmap backings. Views are read-only:
/// the mutating accessors ([`EmbeddingStore::data_mut`],
/// [`EmbeddingStore::row_mut`]) require an uniquely-owned f32 arena,
/// which is exactly the fill-then-share lifecycle every construction
/// path follows.
pub struct EmbeddingStore {
    arena: Arc<Arena>,
    /// Byte offset of arena row 0 (non-zero for table-file maps, whose
    /// arena spans the whole file including header and params).
    base: usize,
    format: RowFormat,
    /// First row of this store's window, absolute within the arena.
    row_offset: usize,
    /// Rows in this store's window.
    rows: usize,
    dim: usize,
    /// Per-row `[scale, zero]` dequant params for the whole arena,
    /// indexed by absolute row (`I8` only; empty otherwise). Shared by
    /// views, like the arena itself.
    params: Arc<Vec<[f32; 2]>>,
    ids: Option<IdMap>,
}

impl EmbeddingStore {
    /// A zero-initialized f32 `rows × dim` store (fill via
    /// [`EmbeddingStore::data_mut`] / [`EmbeddingStore::row_mut`]).
    pub fn zeroed(rows: usize, dim: usize) -> EmbeddingStore {
        assert!(dim > 0, "dim must be positive");
        let bytes = rows.checked_mul(dim).and_then(|n| n.checked_mul(4)).expect("store size");
        EmbeddingStore {
            arena: Arc::new(Arena::Owned(AlignedBuf::zeroed(bytes))),
            base: 0,
            format: RowFormat::F32,
            row_offset: 0,
            rows,
            dim,
            params: Arc::new(Vec::new()),
            ids: None,
        }
    }

    /// Copies a row-major `n × dim` f32 buffer into a fresh aligned arena.
    pub fn from_rows(data: &[f32], dim: usize) -> EmbeddingStore {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        let mut store = EmbeddingStore::zeroed(data.len() / dim, dim);
        store.data_mut().copy_from_slice(data);
        store
    }

    /// [`EmbeddingStore::from_rows`] taking ownership (the common call
    /// shape at index-build sites).
    pub fn from_vec(data: Vec<f32>, dim: usize) -> EmbeddingStore {
        EmbeddingStore::from_rows(&data, dim)
    }

    /// A store whose rows carry external ids (`ids[r]` is row `r`'s id).
    pub fn with_ids(data: &[f32], dim: usize, ids: Vec<u32>) -> EmbeddingStore {
        let mut store = EmbeddingStore::from_rows(data, dim);
        store.set_ids(ids);
        store
    }

    /// Crate-internal constructor for table-file loads: the arena holds
    /// the file image (owned copy or mmap) and `base` points at row 0.
    pub(crate) fn from_table_parts(
        arena: Arc<Arena>,
        base: usize,
        format: RowFormat,
        rows: usize,
        dim: usize,
        params: Vec<[f32; 2]>,
    ) -> EmbeddingStore {
        assert!(dim > 0, "dim must be positive");
        let need = base + rows * dim * format.bytes_per_value();
        assert!(arena.bytes().len() >= need, "table arena too small");
        if format == RowFormat::I8 {
            assert_eq!(params.len(), rows, "one [scale, zero] pair per i8 row");
        }
        EmbeddingStore {
            arena,
            base,
            format,
            row_offset: 0,
            rows,
            dim,
            params: Arc::new(params),
            ids: None,
        }
    }

    /// Attaches (or replaces) the external-id mapping. Ids must be unique
    /// and one per row.
    pub fn set_ids(&mut self, ids: Vec<u32>) {
        assert_eq!(ids.len(), self.rows(), "one id per row");
        let mut id_to_row = HashMap::with_capacity(ids.len());
        for (r, &id) in ids.iter().enumerate() {
            let prev = id_to_row.insert(id, r as u32);
            assert!(prev.is_none(), "duplicate store id {id}");
        }
        self.ids = Some(IdMap { row_to_id: ids, id_to_row });
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Alias for [`EmbeddingStore::rows`], matching the index trait.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// How rows are encoded.
    pub fn format(&self) -> RowFormat {
        self.format
    }

    /// Where the arena bytes live.
    pub fn backing(&self) -> StoreBacking {
        self.arena.backing()
    }

    /// Bytes one row occupies.
    fn stride(&self) -> usize {
        self.dim * self.format.bytes_per_value()
    }

    /// This store's window of the arena, raw row-major bytes.
    pub(crate) fn window_bytes(&self) -> &[u8] {
        let start = self.base + self.row_offset * self.stride();
        &self.arena.bytes()[start..start + self.rows * self.stride()]
    }

    /// Row `r`'s raw encoded bytes.
    fn row_bytes(&self, r: usize) -> &[u8] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        let stride = self.stride();
        &self.window_bytes()[r * stride..(r + 1) * stride]
    }

    /// Per-row `[scale, zero]` dequant params (`I8` stores only).
    pub fn row_params(&self, r: usize) -> [f32; 2] {
        assert_eq!(self.format, RowFormat::I8, "row params only exist for i8 stores");
        self.params[self.row_offset + r]
    }

    /// The window's `[scale, zero]` pairs, one per row (`I8` stores only;
    /// the table writer serializes these ahead of the code bytes).
    pub(crate) fn window_params(&self) -> &[[f32; 2]] {
        assert_eq!(self.format, RowFormat::I8, "row params only exist for i8 stores");
        &self.params[self.row_offset..self.row_offset + self.rows]
    }

    /// Row `r` as an `f32` slice.
    ///
    /// # Panics
    /// Panics on quantized stores, which cannot lend borrowed `f32`
    /// rows — score through [`EmbeddingStore::score_row`] or decode via
    /// [`EmbeddingStore::decode_row`].
    pub fn row(&self, r: usize) -> &[f32] {
        &self.as_slice()[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutable row `r` (checkpoint-load fill path).
    ///
    /// # Panics
    /// Panics if the arena is already shared (a view exists or the store
    /// sits behind a cloned `Arc`), quantized, or mmap-backed — stores
    /// follow a strict fill-then-share lifecycle.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let d = self.dim;
        &mut self.data_mut()[r * d..(r + 1) * d]
    }

    /// This store's window of the arena, row-major `f32`.
    ///
    /// # Panics
    /// Panics on quantized stores — see [`EmbeddingStore::row`].
    pub fn as_slice(&self) -> &[f32] {
        assert_eq!(
            self.format,
            RowFormat::F32,
            "f32 slice access on a {} store — use score_row/decode_row",
            self.format.name()
        );
        let bytes = self.window_bytes();
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0, "f32 window misaligned");
        // SAFETY: an F32 store's window is rows*dim*4 bytes of initialized
        // f32 data; owned arenas are 32-byte aligned and table files place
        // the data section on a 64-byte boundary, so the pointer is
        // f32-aligned. Any bit pattern is a valid f32.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<f32>(), bytes.len() / 4) }
    }

    /// The whole arena, mutable (checkpoint-load fill path).
    ///
    /// # Panics
    /// Panics if the arena is already shared, quantized, or mmap-backed —
    /// see [`EmbeddingStore::row_mut`].
    pub fn data_mut(&mut self) -> &mut [f32] {
        assert_eq!(
            self.format,
            RowFormat::F32,
            "mutating a {} store — quantized stores are write-once",
            self.format.name()
        );
        let start = self.base + self.row_offset * self.stride();
        let len = self.rows * self.stride();
        let arena = Arc::get_mut(&mut self.arena)
            .expect("mutating an embedding arena that is already shared");
        let Arena::Owned(buf) = arena else {
            panic!("mutating an mmap-backed arena — maps are read-only")
        };
        let bytes = &mut buf.as_bytes_mut()[start..start + len];
        // SAFETY: as as_slice, plus Arc::get_mut guarantees uniqueness.
        unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr().cast::<f32>(), len / 4) }
    }

    /// Re-encodes this f32 store into `format`, preserving the id
    /// mapping. `quantize(RowFormat::F32)` is a deep copy.
    ///
    /// # Panics
    /// Panics if `self` is not `f32`, or contains non-finite values.
    pub fn quantize(&self, format: RowFormat) -> EmbeddingStore {
        assert_eq!(self.format, RowFormat::F32, "quantize re-encodes an f32 store");
        if format == RowFormat::F32 {
            return self.clone();
        }
        let src = self.as_slice();
        let bytes_len = self.rows * self.dim * format.bytes_per_value();
        let mut buf = AlignedBuf::zeroed(bytes_len);
        let mut params = Vec::new();
        match format {
            RowFormat::F32 => unreachable!(),
            RowFormat::F16 => {
                for (out, &x) in buf.as_bytes_mut().chunks_exact_mut(2).zip(src) {
                    assert!(x.is_finite(), "non-finite value {x} cannot be quantized");
                    out.copy_from_slice(&f32_to_f16(x).to_le_bytes());
                }
            }
            RowFormat::I8 => {
                params.reserve(self.rows);
                for (out, row) in
                    buf.as_bytes_mut().chunks_exact_mut(self.dim).zip(src.chunks_exact(self.dim))
                {
                    let p = i8_row_params(row);
                    for (o, &x) in out.iter_mut().zip(row) {
                        *o = i8_encode(x, p);
                    }
                    params.push(p);
                }
            }
        }
        EmbeddingStore {
            arena: Arc::new(Arena::Owned(buf)),
            base: 0,
            format,
            row_offset: 0,
            rows: self.rows,
            dim: self.dim,
            params: Arc::new(params),
            ids: self.ids.clone(),
        }
    }

    /// Row `r` as `f32` values: borrowed for f32 stores, decoded into an
    /// owned buffer for quantized ones (cold paths — index construction,
    /// query gathering; hot scoring goes through
    /// [`EmbeddingStore::score_row`]).
    pub fn decode_row(&self, r: usize) -> Cow<'_, [f32]> {
        match self.format {
            RowFormat::F32 => Cow::Borrowed(self.row(r)),
            _ => {
                let mut out = vec![0.0; self.dim];
                self.decode_row_into(r, &mut out);
                Cow::Owned(out)
            }
        }
    }

    /// Decodes row `r` into `out` (`out.len() == dim`).
    pub fn decode_row_into(&self, r: usize, out: &mut [f32]) {
        assert_eq!(out.len(), self.dim, "output buffer must hold one row");
        match self.format {
            RowFormat::F32 => out.copy_from_slice(self.row(r)),
            RowFormat::F16 => {
                for (o, h) in out.iter_mut().zip(self.row_bytes(r).chunks_exact(2)) {
                    *o = f16_to_f32(u16::from_le_bytes([h[0], h[1]]));
                }
            }
            RowFormat::I8 => {
                let p = self.row_params(r);
                for (o, &c) in out.iter_mut().zip(self.row_bytes(r)) {
                    *o = i8_decode(c, p);
                }
            }
        }
    }

    /// Fused dequantize-dot of `query` against row `r` — the one scoring
    /// primitive every retrieval path uses. Quantized rows are decoded
    /// inside the multiply-add loop (no `f32` row is materialized), and
    /// the accumulation is a fixed sequential reduction in value order —
    /// the same association order as [`crate::dot`] — so scores are
    /// bit-reproducible across runs and identical for owned and mmap
    /// backings. The scalar loops carry no cross-iteration control flow,
    /// so the compiler can vectorize the byte→f32 conversions.
    pub fn score_row(&self, query: &[f32], r: usize) -> f32 {
        debug_assert_eq!(query.len(), self.dim, "query/dim mismatch");
        match self.format {
            RowFormat::F32 => crate::kernel::dot(query, self.row(r)),
            RowFormat::F16 => {
                let mut acc = 0.0f32;
                for (q, h) in query.iter().zip(self.row_bytes(r).chunks_exact(2)) {
                    acc += q * f16_to_f32(u16::from_le_bytes([h[0], h[1]]));
                }
                acc
            }
            RowFormat::I8 => {
                let [scale, zero] = self.row_params(r);
                let mut acc = 0.0f32;
                for (q, &c) in query.iter().zip(self.row_bytes(r)) {
                    acc += q * (zero + scale * c as f32);
                }
                acc
            }
        }
    }

    /// A zero-copy view of rows `start..end` sharing this store's arena:
    /// row `r` of the view is row `start + r` of `self`. The view carries
    /// no id mapping — callers translate through the parent store (the
    /// sharded retriever's offset arithmetic does exactly that). Works
    /// identically over owned and mmap arenas and every row format.
    pub fn view_rows(&self, start: usize, end: usize) -> EmbeddingStore {
        assert!(start <= end && end <= self.rows(), "view {start}..{end} out of bounds");
        EmbeddingStore {
            arena: self.arena.clone(),
            base: self.base,
            format: self.format,
            row_offset: self.row_offset + start,
            rows: end - start,
            dim: self.dim,
            params: self.params.clone(),
            ids: None,
        }
    }

    /// True when `self` and `other` are windows over the same allocation
    /// (i.e. a view relationship, not a copy).
    pub fn shares_arena(&self, other: &EmbeddingStore) -> bool {
        Arc::ptr_eq(&self.arena, &other.arena)
    }

    /// The external id of row `row` (the row index itself when no mapping
    /// is attached).
    pub fn id_of_row(&self, row: usize) -> u32 {
        match &self.ids {
            Some(map) => map.row_to_id[row],
            None => row as u32,
        }
    }

    /// The row holding external id `id`, if present.
    pub fn row_of_id(&self, id: u32) -> Option<usize> {
        match &self.ids {
            Some(map) => map.id_to_row.get(&id).map(|&r| r as usize),
            None => ((id as usize) < self.rows()).then_some(id as usize),
        }
    }

    /// Wraps the store for sharing across indexes.
    pub fn into_shared(self) -> Arc<EmbeddingStore> {
        Arc::new(self)
    }
}

impl Clone for EmbeddingStore {
    /// Deep copy of this store's window into a fresh owned arena (views
    /// stay zero-copy only through [`EmbeddingStore::view_rows`]; `clone`
    /// is always an independent allocation — cloning an mmap-backed store
    /// yields an owned one holding identical bytes).
    fn clone(&self) -> EmbeddingStore {
        let src = self.window_bytes();
        let mut buf = AlignedBuf::zeroed(src.len());
        buf.as_bytes_mut().copy_from_slice(src);
        let params = if self.format == RowFormat::I8 {
            self.window_params().to_vec()
        } else {
            Vec::new()
        };
        EmbeddingStore {
            arena: Arc::new(Arena::Owned(buf)),
            base: 0,
            format: self.format,
            row_offset: 0,
            rows: self.rows,
            dim: self.dim,
            params: Arc::new(params),
            ids: self.ids.clone(),
        }
    }
}

impl std::fmt::Debug for EmbeddingStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EmbeddingStore")
            .field("rows", &self.rows())
            .field("dim", &self.dim)
            .field("format", &self.format.name())
            .field("backing", &self.backing().name())
            .field("mapped", &self.ids.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_is_32_byte_aligned() {
        for rows in [1, 3, 17, 257] {
            let store = EmbeddingStore::zeroed(rows, 16);
            assert_eq!(store.as_slice().as_ptr() as usize % STORE_ALIGN, 0, "rows={rows}");
        }
    }

    #[test]
    fn rows_round_trip() {
        let data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let store = EmbeddingStore::from_rows(&data, 2);
        assert_eq!(store.rows(), 3);
        assert_eq!(store.row(1), &[3.0, 4.0]);
        assert_eq!(store.as_slice(), data.as_slice());
        assert_eq!(store.format(), RowFormat::F32);
        assert_eq!(store.backing(), StoreBacking::Owned);
    }

    #[test]
    fn identity_mapping_by_default() {
        let store = EmbeddingStore::from_rows(&[0.0; 8], 2);
        assert_eq!(store.id_of_row(3), 3);
        assert_eq!(store.row_of_id(2), Some(2));
        assert_eq!(store.row_of_id(4), None);
    }

    #[test]
    fn explicit_id_mapping() {
        let store = EmbeddingStore::with_ids(&[0.0; 6], 2, vec![100, 7, 42]);
        assert_eq!(store.id_of_row(0), 100);
        assert_eq!(store.row_of_id(42), Some(2));
        assert_eq!(store.row_of_id(5), None);
    }

    #[test]
    #[should_panic(expected = "duplicate store id")]
    fn duplicate_ids_rejected() {
        EmbeddingStore::with_ids(&[0.0; 6], 2, vec![1, 2, 1]);
    }

    #[test]
    fn empty_store_is_valid() {
        let store = EmbeddingStore::zeroed(0, 4);
        assert!(store.is_empty());
        assert_eq!(store.rows(), 0);
        assert!(store.as_slice().is_empty());
    }

    #[test]
    fn views_are_zero_copy_windows() {
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let store = EmbeddingStore::from_rows(&data, 2);
        let view = store.view_rows(2, 5);
        assert!(view.shares_arena(&store));
        assert_eq!(view.rows(), 3);
        assert_eq!(view.dim(), 2);
        assert_eq!(view.row(0), store.row(2));
        assert_eq!(view.as_slice(), &data[4..10]);
        // same allocation, not a copy
        assert_eq!(view.row(0).as_ptr(), store.row(2).as_ptr());
        // views drop the id mapping: rows are local indices again
        assert_eq!(view.id_of_row(1), 1);
        // view of a view composes offsets
        let inner = view.view_rows(1, 3);
        assert_eq!(inner.as_slice(), &data[6..10]);
        assert!(inner.shares_arena(&store));
        // empty and full views are valid
        assert_eq!(store.view_rows(6, 6).rows(), 0);
        assert_eq!(store.view_rows(0, 6).as_slice(), store.as_slice());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_bounds_checked() {
        EmbeddingStore::zeroed(4, 2).view_rows(2, 5);
    }

    #[test]
    #[should_panic(expected = "already shared")]
    fn mutating_a_shared_arena_panics() {
        let mut store = EmbeddingStore::zeroed(4, 2);
        let _view = store.view_rows(0, 2);
        store.row_mut(0)[0] = 1.0;
    }

    #[test]
    fn clone_copies_the_arena() {
        let a = EmbeddingStore::with_ids(&[1.0, 2.0], 2, vec![9]);
        let b = a.clone();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(b.id_of_row(0), 9);
        assert_eq!(b.as_slice().as_ptr() as usize % STORE_ALIGN, 0);
        assert_ne!(a.as_slice().as_ptr(), b.as_slice().as_ptr());
    }

    // ---- quantized formats -------------------------------------------------

    fn ramp_store(rows: usize, dim: usize) -> EmbeddingStore {
        let data: Vec<f32> = (0..rows * dim).map(|i| (i as f32).sin()).collect();
        EmbeddingStore::from_rows(&data, dim)
    }

    #[test]
    fn f16_codec_round_trips_representable_values() {
        // the last entry is 2^-14, the smallest normal binary16 value
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 2.0f32.powi(-14)] {
            assert_eq!(f16_to_f32(f32_to_f16(x)), x, "{x} is exactly representable");
        }
        assert_eq!(f32_to_f16(1e9), 0x7c00, "overflow saturates to +inf");
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn quantize_preserves_shape_ids_and_approximate_values() {
        for format in [RowFormat::F16, RowFormat::I8] {
            let mut base = ramp_store(5, 8);
            base.set_ids(vec![10, 20, 30, 40, 50]);
            let q = base.quantize(format);
            assert_eq!(q.rows(), 5);
            assert_eq!(q.dim(), 8);
            assert_eq!(q.format(), format);
            assert_eq!(q.id_of_row(2), 30);
            for r in 0..5 {
                let orig = base.row(r);
                let decoded = q.decode_row(r);
                for (a, b) in orig.iter().zip(decoded.iter()) {
                    assert!((a - b).abs() < 0.01, "{format:?} row {r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn i8_constant_rows_decode_exactly() {
        let store = EmbeddingStore::from_rows(&[0.25; 6], 3).quantize(RowFormat::I8);
        assert_eq!(store.decode_row(1).as_ref(), &[0.25, 0.25, 0.25]);
        let zeros = EmbeddingStore::zeroed(2, 3).quantize(RowFormat::I8);
        assert_eq!(zeros.decode_row(0).as_ref(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn quantize_rejects_non_finite() {
        EmbeddingStore::from_rows(&[1.0, f32::NAN], 2).quantize(RowFormat::I8);
    }

    #[test]
    #[should_panic(expected = "f32 slice access")]
    fn quantized_stores_refuse_borrowed_rows() {
        let q = ramp_store(2, 4).quantize(RowFormat::I8);
        let _ = q.row(0);
    }

    #[test]
    fn score_row_matches_dot_exactly_for_f32() {
        let store = ramp_store(7, 5);
        let query: Vec<f32> = (0..5).map(|i| (i as f32).cos()).collect();
        for r in 0..7 {
            assert_eq!(
                store.score_row(&query, r).to_bits(),
                crate::kernel::dot(&query, store.row(r)).to_bits()
            );
        }
    }

    #[test]
    fn score_row_equals_dot_over_decoded_row_for_quantized() {
        // The fused kernel must equal a dot over the decoded row bit for
        // bit: same per-element dequant expression, same accumulation
        // order, no row materialized on the fused side.
        for format in [RowFormat::F16, RowFormat::I8] {
            let q = ramp_store(6, 9).quantize(format);
            let query: Vec<f32> = (0..9).map(|i| 0.3 * i as f32 - 1.0).collect();
            for r in 0..6 {
                let fused = q.score_row(&query, r);
                let decoded = crate::kernel::dot(&query, &q.decode_row(r));
                assert_eq!(fused.to_bits(), decoded.to_bits(), "{format:?} row {r}");
            }
        }
    }

    #[test]
    fn quantized_views_share_arena_and_score_identically() {
        let q = ramp_store(10, 4).quantize(RowFormat::I8);
        let view = q.view_rows(3, 8);
        assert!(view.shares_arena(&q));
        let query = [0.5, -0.5, 1.0, 0.25];
        for r in 0..view.rows() {
            assert_eq!(
                view.score_row(&query, r).to_bits(),
                q.score_row(&query, r + 3).to_bits()
            );
        }
        // clone of a quantized view re-bases params and bytes
        let copy = view.clone();
        assert!(!copy.shares_arena(&q));
        for r in 0..view.rows() {
            assert_eq!(copy.score_row(&query, r).to_bits(), view.score_row(&query, r).to_bits());
        }
    }
}
