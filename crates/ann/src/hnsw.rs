//! HNSW (hierarchical navigable small world) graph index for
//! maximum-inner-product search over unit vectors.
//!
//! A faithful, compact implementation of Malkov & Yashunin's algorithm:
//! exponentially-thinned layers, greedy descent from the top layer, and a
//! beam (`ef`) search on layer 0.

use std::sync::Arc;

use crate::index::{Hit, Retriever};
use crate::kernel::TopK;
use crate::store::EmbeddingStore;
use rand::Rng;
use unimatch_obs as obs;

/// HNSW build/search parameters.
#[derive(Clone, Copy, Debug)]
pub struct HnswConfig {
    /// Max neighbours per node on upper layers (layer 0 gets `2 * m`).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search.
    pub ef_search: usize,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig { m: 16, ef_construction: 100, ef_search: 50 }
    }
}

#[derive(Clone, Debug)]
struct HnswNode {
    /// Neighbour lists, one per layer the node participates in.
    neighbours: Vec<Vec<u32>>,
}

/// The HNSW index, scoring against a shared [`EmbeddingStore`].
#[derive(Clone, Debug)]
pub struct HnswIndex {
    store: Arc<EmbeddingStore>,
    nodes: Vec<HnswNode>,
    entry: u32,
    max_layer: usize,
    cfg: HnswConfig,
}

impl HnswIndex {
    /// Builds the graph by inserting every row of an owned buffer.
    pub fn build(data: Vec<f32>, dim: usize, cfg: HnswConfig, rng: &mut impl Rng) -> Self {
        HnswIndex::build_over(Arc::new(EmbeddingStore::from_vec(data, dim)), cfg, rng)
    }

    /// Builds the graph over an existing shared store (no vector copy; the
    /// graph structure is the only per-index allocation).
    pub fn build_over(store: Arc<EmbeddingStore>, cfg: HnswConfig, rng: &mut impl Rng) -> Self {
        let _build_span = obs::span_us("unimatch_ann_build_us", "index=\"hnsw\"");
        let n = store.rows();
        assert!(n > 0, "cannot build HNSW over an empty set");
        let mut index = HnswIndex {
            store,
            nodes: Vec::with_capacity(n),
            entry: 0,
            max_layer: 0,
            cfg,
        };
        let ml = 1.0 / (cfg.m as f64).ln();
        for r in 0..n {
            let level = (-rng.gen_range(f64::EPSILON..1.0).ln() * ml).floor() as usize;
            index.insert(r as u32, level);
        }
        index
    }

    /// The embedding arena this index scores against.
    pub fn store(&self) -> &Arc<EmbeddingStore> {
        &self.store
    }

    fn score(&self, q: &[f32], r: u32) -> f32 {
        self.store.score_row(q, r as usize)
    }

    /// Greedy beam search on one layer; returns up to `ef` best (score desc).
    /// `visited_count` accumulates how many distinct nodes were scored —
    /// the work metric the observability layer reports per search.
    fn search_layer(
        &self,
        q: &[f32],
        entry: u32,
        ef: usize,
        layer: usize,
        visited_count: &mut usize,
    ) -> Vec<Hit> {
        let mut visited = std::collections::HashSet::new();
        visited.insert(entry);
        *visited_count += 1;
        let mut candidates = std::collections::BinaryHeap::new(); // max-heap by score
        let entry_score = self.score(q, entry);
        candidates.push(ScoredId(entry_score, entry));
        let mut best = TopK::new(ef);
        best.push(entry, entry_score);

        while let Some(ScoredId(score, id)) = candidates.pop() {
            if score < best.threshold() {
                break;
            }
            if layer >= self.nodes[id as usize].neighbours.len() {
                continue;
            }
            for &nb in &self.nodes[id as usize].neighbours[layer] {
                if visited.insert(nb) {
                    *visited_count += 1;
                    let s = self.score(q, nb);
                    if s > best.threshold() {
                        best.push(nb, s);
                        candidates.push(ScoredId(s, nb));
                    }
                }
            }
        }
        best.into_sorted()
    }

    fn insert(&mut self, id: u32, level: usize) {
        let node = HnswNode { neighbours: vec![Vec::new(); level + 1] };
        if self.nodes.is_empty() {
            self.nodes.push(node);
            self.entry = id;
            self.max_layer = level;
            return;
        }
        self.nodes.push(node);
        let q: Vec<f32> = self.store.decode_row(id as usize).into_owned();

        // descend from the top to level+1 greedily
        let mut ep = self.entry;
        let mut layer = self.max_layer;
        while layer > level {
            let found = self.search_layer(&q, ep, 1, layer, &mut 0);
            if let Some(h) = found.first() {
                ep = h.id;
            }
            layer -= 1;
        }

        // connect on layers min(level, max_layer)..=0
        let top = level.min(self.max_layer);
        for l in (0..=top).rev() {
            let found = self.search_layer(&q, ep, self.cfg.ef_construction, l, &mut 0);
            let m_max = if l == 0 { 2 * self.cfg.m } else { self.cfg.m };
            let selected: Vec<u32> =
                found.iter().take(m_max).map(|h| h.id).filter(|&n| n != id).collect();
            for &nb in &selected {
                self.nodes[id as usize].neighbours[l].push(nb);
                let nb_list = &mut self.nodes[nb as usize].neighbours[l];
                nb_list.push(id);
                if nb_list.len() > m_max {
                    // prune the neighbour's list back to its best m_max
                    let origin: Vec<f32> = self.store.decode_row(nb as usize).into_owned();
                    let mut list = std::mem::take(&mut self.nodes[nb as usize].neighbours[l]);
                    list.sort_by(|&a, &b| {
                        let sa = self.store.score_row(&origin, a as usize);
                        let sb = self.store.score_row(&origin, b as usize);
                        sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal)
                    });
                    list.truncate(m_max);
                    self.nodes[nb as usize].neighbours[l] = list;
                }
            }
            if let Some(h) = found.first() {
                ep = h.id;
            }
        }

        if level > self.max_layer {
            self.max_layer = level;
            self.entry = id;
        }
    }
}

#[derive(PartialEq)]
struct ScoredId(f32, u32);

impl Eq for ScoredId {}

impl Ord for ScoredId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(self.1.cmp(&other.1))
    }
}

impl PartialOrd for ScoredId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Retriever for HnswIndex {
    fn len(&self) -> usize {
        self.nodes.len()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn backend(&self) -> &'static str {
        "hnsw"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim(), "query dim mismatch");
        let _search_span = obs::span_us("unimatch_ann_search_us", "index=\"hnsw\"");
        let mut visited = 0usize;
        let mut ep = self.entry;
        for layer in (1..=self.max_layer).rev() {
            if let Some(h) = self.search_layer(query, ep, 1, layer, &mut visited).first() {
                ep = h.id;
            }
        }
        let ef = self.cfg.ef_search.max(k);
        let mut hits = self.search_layer(query, ep, ef, 0, &mut visited);
        hits.truncate(k);
        if obs::enabled() {
            obs::registry::counter_labeled("unimatch_ann_searches_total", "index=\"hnsw\"").inc();
            obs::registry::histogram("unimatch_ann_visited_nodes", "index=\"hnsw\"", obs::COUNT_BOUNDS)
                .observe(visited as u64);
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use rand::SeedableRng;

    fn unit_cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
            data.extend(v.into_iter().map(|x| x / norm));
        }
        data
    }

    #[test]
    fn single_vector() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let ix = HnswIndex::build(vec![1.0, 0.0], 2, HnswConfig::default(), &mut rng);
        let hits = ix.search(&[1.0, 0.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 0);
    }

    #[test]
    fn exact_on_small_sets() {
        // With ef >= n the beam covers everything reachable; on a small
        // connected graph that is exact.
        let data = unit_cloud(50, 8, 1);
        let bf = BruteForceIndex::new(data.clone(), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let cfg = HnswConfig { m: 8, ef_construction: 64, ef_search: 64 };
        let hnsw = HnswIndex::build(data, 8, cfg, &mut rng);
        let q = unit_cloud(1, 8, 3);
        let exact: Vec<u32> = bf.search(&q, 5).iter().map(|h| h.id).collect();
        let approx: Vec<u32> = hnsw.search(&q, 5).iter().map(|h| h.id).collect();
        assert_eq!(exact, approx);
    }

    #[test]
    fn good_recall_on_larger_set() {
        let data = unit_cloud(2000, 16, 4);
        let bf = BruteForceIndex::new(data.clone(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let hnsw = HnswIndex::build(data, 16, HnswConfig::default(), &mut rng);
        let queries = unit_cloud(20, 16, 6);
        let mut hit_count = 0;
        for q in queries.chunks(16) {
            let exact: std::collections::HashSet<u32> =
                bf.search(q, 10).iter().map(|h| h.id).collect();
            hit_count += hnsw.search(q, 10).iter().filter(|h| exact.contains(&h.id)).count();
        }
        let recall = hit_count as f64 / 200.0;
        assert!(recall > 0.85, "recall@10 = {recall}");
    }

    #[test]
    fn results_sorted_descending() {
        let data = unit_cloud(300, 8, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        let ix = HnswIndex::build(data, 8, HnswConfig::default(), &mut rng);
        let q = unit_cloud(1, 8, 9);
        let hits = ix.search(&q, 10);
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score));
    }
}
