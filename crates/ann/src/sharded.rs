//! Row-range sharding over any [`Retriever`] backend.
//!
//! [`ShardedRetriever`] partitions one [`EmbeddingStore`] into N
//! contiguous row ranges, builds an independent backend index over a
//! zero-copy [`EmbeddingStore::view_rows`] view of each range, fans every
//! search across the shards through `unimatch-parallel`, and k-way merges
//! the per-shard top-k lists under the canonical ordering contract
//! (score descending, lowest id on ties).
//!
//! ## Exactness
//!
//! For an exact backend the merged result is **bitwise identical** to the
//! unsharded search:
//!
//! * scores — [`crate::kernel::dot`] is a fixed sequential reduction over
//!   `dim`, and sharding splits *rows*, never a row, so every candidate's
//!   score is computed from exactly the same bytes in exactly the same
//!   order;
//! * membership — if a row is dropped inside its shard, the k rows that
//!   beat it there (under score-then-lowest-id order) also precede it
//!   globally, so it cannot belong to the global top-k either;
//! * order — shard row ranges are contiguous and ascending, so each
//!   shard's list is sorted by `(score desc, global id asc)`, and the
//!   merge resolves cross-shard ties by global id exactly as one big
//!   stable scan would.
//!
//! For approximate backends (HNSW, IVF) each shard builds its *own*
//! graph/lists over its row range, so sharded recall differs from the
//! single-index build in general — but configured to be effectively
//! exact (`ef ≥ rows`, `nprobe = nlist`) they inherit the same bitwise
//! guarantee, which the sharded differential suite pins.
//!
//! ## Observability
//!
//! With the global `unimatch-obs` flag on, every search records one
//! `unimatch_shard_search_us{shard="s"}` span per shard and one
//! `unimatch_shard_merge_us` span for the merge, alongside the backend's
//! own series — the data `/metrics` consumers use to spot a straggler
//! shard or a merge that grew past its budget.

use std::sync::Arc;

use crate::index::{batch_entry_hooks, Hit, Retriever};
use crate::store::EmbeddingStore;
use unimatch_obs as obs;
use unimatch_parallel::par_map_indexed;

/// Interned per-shard label bodies (the obs registry keys series by
/// `'static` string identity, so labels must come from a fixed table).
const SHARD_LABELS: [&str; 16] = [
    "shard=\"0\"",
    "shard=\"1\"",
    "shard=\"2\"",
    "shard=\"3\"",
    "shard=\"4\"",
    "shard=\"5\"",
    "shard=\"6\"",
    "shard=\"7\"",
    "shard=\"8\"",
    "shard=\"9\"",
    "shard=\"10\"",
    "shard=\"11\"",
    "shard=\"12\"",
    "shard=\"13\"",
    "shard=\"14\"",
    "shard=\"15\"",
];

/// Label for shard indices past the interned table.
const SHARD_OVERFLOW_LABEL: &str = "shard=\"16+\"";

/// The `shard="…"` label body for shard `s`.
fn shard_label(s: usize) -> &'static str {
    SHARD_LABELS.get(s).copied().unwrap_or(SHARD_OVERFLOW_LABEL)
}

/// N backend indexes over contiguous row ranges of one shared arena,
/// searched in parallel and merged under the canonical top-k order.
///
/// Build one with [`ShardedRetriever::build`], supplying the closure that
/// turns each shard's store view into a backend index (the same closure
/// shape `RetrieverKind` uses for whole-store builds):
///
/// ```
/// use std::sync::Arc;
/// use unimatch_ann::{BruteForceIndex, EmbeddingStore, Retriever, ShardedRetriever};
///
/// let store = Arc::new(EmbeddingStore::from_vec(
///     vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, -1.0, 0.0],
///     2,
/// ));
/// let sharded = ShardedRetriever::build(&store, 2, |view| {
///     Box::new(BruteForceIndex::over(view))
/// });
/// assert_eq!(sharded.shards(), 2);
/// let hits = sharded.search(&[1.0, 0.1], 2);
/// assert_eq!(hits[0].id, 0); // global row ids, same as unsharded
/// ```
pub struct ShardedRetriever {
    shards: Vec<Box<dyn Retriever>>,
    /// Global row id of each shard's local row 0 (ascending).
    offsets: Vec<u32>,
    len: usize,
    dim: usize,
    backend: &'static str,
}

impl ShardedRetriever {
    /// Partitions `store` into `shards` contiguous row ranges (sizes
    /// differing by at most one row) and builds one backend index per
    /// range via `build_shard`, each over a zero-copy view of the shared
    /// arena.
    ///
    /// `shards` is clamped to the row count (an empty store builds one
    /// empty shard). Shards are built in ascending row order, so a
    /// build closure threading an `&mut` RNG stays deterministic.
    ///
    /// # Panics
    /// Panics if `shards == 0`, or if `build_shard` returns an index
    /// whose `len`/`dim` disagree with the view it was given.
    pub fn build<F>(store: &Arc<EmbeddingStore>, shards: usize, mut build_shard: F) -> Self
    where
        F: FnMut(Arc<EmbeddingStore>) -> Box<dyn Retriever>,
    {
        assert!(shards > 0, "shards must be positive");
        let rows = store.rows();
        let n = shards.min(rows).max(1);
        let mut built: Vec<Box<dyn Retriever>> = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        for s in 0..n {
            let start = s * rows / n;
            let end = (s + 1) * rows / n;
            let view = Arc::new(store.view_rows(start, end));
            let index = build_shard(view);
            assert_eq!(index.len(), end - start, "shard {s}: index len != view rows");
            assert_eq!(index.dim(), store.dim(), "shard {s}: index dim != store dim");
            built.push(index);
            offsets.push(start as u32);
        }
        let backend = built[0].backend();
        ShardedRetriever { shards: built, offsets, len: rows, dim: store.dim(), backend }
    }

    /// Searches every shard (in parallel when the fan-out clears the
    /// global work threshold) and returns the per-shard lists with local
    /// row ids already translated to global ids.
    fn search_shards(&self, query: &[f32], k: usize) -> Vec<Vec<Hit>> {
        let work = self.len * self.dim * 2;
        par_map_indexed(self.shards.len(), work, |s| {
            let _span = obs::span_us("unimatch_shard_search_us", shard_label(s));
            let offset = self.offsets[s];
            let mut hits = self.shards[s].search(query, k);
            for h in &mut hits {
                h.id += offset;
            }
            hits
        })
    }
}

/// K-way merges per-shard top-k lists (each sorted by `(score desc, id
/// asc)` with globally unique ids) into the global top-k under the same
/// order. NaN scores compare equal, matching the kernel's comparator.
fn merge_topk(lists: &[&[Hit]], k: usize) -> Vec<Hit> {
    use std::cmp::Ordering;
    if lists.len() == 1 {
        let mut out = lists[0].to_vec();
        out.truncate(k);
        return out;
    }
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(k.min(total));
    let mut cursors = vec![0usize; lists.len()];
    while out.len() < k {
        let mut best: Option<(usize, Hit)> = None;
        for (li, list) in lists.iter().enumerate() {
            if let Some(&h) = list.get(cursors[li]) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => match h.score.partial_cmp(&b.score).unwrap_or(Ordering::Equal)
                    {
                        Ordering::Greater => true,
                        Ordering::Less => false,
                        Ordering::Equal => h.id < b.id,
                    },
                };
                if better {
                    best = Some((li, h));
                }
            }
        }
        let Some((li, h)) = best else { break };
        cursors[li] += 1;
        out.push(h);
    }
    out
}

impl Retriever for ShardedRetriever {
    fn len(&self) -> usize {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    /// The *inner* backend's name — a sharded index serves the same
    /// metric label as its unsharded counterpart; the fan-out is
    /// reported separately through [`Retriever::shards`].
    fn backend(&self) -> &'static str {
        self.backend
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let per_shard = self.search_shards(query, k);
        let _merge_span = obs::span_us("unimatch_shard_merge_us", "");
        let refs: Vec<&[Hit]> = per_shard.iter().map(|l| l.as_slice()).collect();
        merge_topk(&refs, k)
    }

    /// Fans the whole batch across shards (each shard answers every
    /// query over its row range; nested per-query parallelism inside a
    /// shard runs inline), then merges per query. Identical results to
    /// per-query [`ShardedRetriever::search`].
    fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        let _span = batch_entry_hooks(self.obs_label());
        let d = self.dim;
        assert!(d > 0, "search_batch on an index with zero dimension");
        assert_eq!(
            queries.len() % d,
            0,
            "query batch length {} is not a multiple of dim {}",
            queries.len(),
            d
        );
        let nq = queries.len() / d;
        let work = nq * self.len * d * 2;
        let per_shard: Vec<Vec<Vec<Hit>>> = par_map_indexed(self.shards.len(), work, |s| {
            let _span = obs::span_us("unimatch_shard_search_us", shard_label(s));
            let offset = self.offsets[s];
            let mut lists = self.shards[s].search_batch(queries, k);
            for hits in &mut lists {
                for h in hits {
                    h.id += offset;
                }
            }
            lists
        });
        let _merge_span = obs::span_us("unimatch_shard_merge_us", "");
        let mut scratch: Vec<&[Hit]> = Vec::with_capacity(self.shards.len());
        (0..nq)
            .map(|q| {
                scratch.clear();
                scratch.extend(per_shard.iter().map(|lists| lists[q].as_slice()));
                merge_topk(&scratch, k)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;

    fn store(rows: usize, dim: usize, seed: u64) -> Arc<EmbeddingStore> {
        let mut state = seed;
        let data: Vec<f32> = (0..rows * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Arc::new(EmbeddingStore::from_vec(data, dim))
    }

    fn sharded_exact(store: &Arc<EmbeddingStore>, n: usize) -> ShardedRetriever {
        ShardedRetriever::build(store, n, |view| Box::new(BruteForceIndex::over(view)))
    }

    #[test]
    fn matches_unsharded_bitwise() {
        let s = store(61, 8, 0x5eed);
        let whole = BruteForceIndex::over(s.clone());
        for n in [1, 2, 3, 7] {
            let sharded = sharded_exact(&s, n);
            assert_eq!(sharded.len(), 61);
            assert_eq!(sharded.shards(), n);
            for k in [0, 1, 5, 61, 100] {
                let a = whole.search(s.row(3), k);
                let b = sharded.search(s.row(3), k);
                assert_eq!(a.len(), b.len(), "n={n} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id, y.id, "n={n} k={k}");
                    assert_eq!(x.score.to_bits(), y.score.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn batch_matches_per_query() {
        let s = store(40, 4, 0xf00d);
        let sharded = sharded_exact(&s, 3);
        let queries: Vec<f32> = (0..6).flat_map(|q| s.row(q * 5).to_vec()).collect();
        let batched = sharded.search_batch(&queries, 7);
        for (q, hits) in batched.iter().enumerate() {
            let single = sharded.search(&queries[q * 4..(q + 1) * 4], 7);
            assert_eq!(hits, &single, "query {q}");
        }
    }

    #[test]
    fn ties_across_shard_boundaries_keep_lowest_global_ids() {
        // Rows 0..6 all identical: every score ties, so the global top-3
        // must be ids 0,1,2 regardless of where the shard cuts fall.
        let data = [1.0f32, 0.0].repeat(6);
        let s = Arc::new(EmbeddingStore::from_vec(data, 2));
        for n in [1, 2, 3, 4] {
            let sharded = sharded_exact(&s, n);
            let ids: Vec<u32> = sharded.search(&[1.0, 0.0], 3).iter().map(|h| h.id).collect();
            assert_eq!(ids, vec![0, 1, 2], "n={n}");
        }
    }

    #[test]
    fn more_shards_than_rows_clamps() {
        let s = store(3, 2, 9);
        let sharded = sharded_exact(&s, 8);
        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.search(s.row(0), 10).len(), 3);
    }

    #[test]
    fn empty_store_builds_one_empty_shard() {
        let s = Arc::new(EmbeddingStore::zeroed(0, 4));
        let sharded = sharded_exact(&s, 4);
        assert_eq!(sharded.shards(), 1);
        assert!(sharded.is_empty());
        assert!(sharded.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn shard_views_share_the_parent_arena() {
        let s = store(10, 2, 1);
        let mut seen = 0;
        ShardedRetriever::build(&s, 2, |view| {
            assert!(view.shares_arena(&s));
            seen += 1;
            Box::new(BruteForceIndex::over(view))
        });
        assert_eq!(seen, 2);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        sharded_exact(&store(4, 2, 2), 0);
    }

    #[test]
    fn merge_is_exhaustive_when_k_exceeds_total() {
        let lists: Vec<Vec<Hit>> = vec![
            vec![Hit { id: 0, score: 0.9 }, Hit { id: 1, score: 0.1 }],
            vec![Hit { id: 2, score: 0.5 }],
        ];
        let refs: Vec<&[Hit]> = lists.iter().map(|l| l.as_slice()).collect();
        let merged = merge_topk(&refs, 10);
        let ids: Vec<u32> = merged.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 2, 1]);
    }
}
