//! Row-range sharding over any [`Retriever`] backend.
//!
//! [`ShardedRetriever`] partitions one [`EmbeddingStore`] into N
//! contiguous row ranges, builds an independent backend index over a
//! zero-copy [`EmbeddingStore::view_rows`] view of each range, fans every
//! search across the shards through `unimatch-parallel`, and k-way merges
//! the per-shard top-k lists under the canonical ordering contract
//! (score descending, lowest id on ties).
//!
//! ## Exactness
//!
//! For an exact backend the merged result is **bitwise identical** to the
//! unsharded search:
//!
//! * scores — [`crate::kernel::dot`] is a fixed sequential reduction over
//!   `dim`, and sharding splits *rows*, never a row, so every candidate's
//!   score is computed from exactly the same bytes in exactly the same
//!   order;
//! * membership — if a row is dropped inside its shard, the k rows that
//!   beat it there (under score-then-lowest-id order) also precede it
//!   globally, so it cannot belong to the global top-k either;
//! * order — shard row ranges are contiguous and ascending, so each
//!   shard's list is sorted by `(score desc, global id asc)`, and the
//!   merge resolves cross-shard ties by global id exactly as one big
//!   stable scan would.
//!
//! For approximate backends (HNSW, IVF) each shard builds its *own*
//! graph/lists over its row range, so sharded recall differs from the
//! single-index build in general — but configured to be effectively
//! exact (`ef ≥ rows`, `nprobe = nlist`) they inherit the same bitwise
//! guarantee, which the sharded differential suite pins.
//!
//! ## Failure isolation
//!
//! The fan-out is *fallible*: each shard's search runs inside a panic
//! capture, behind the `ann.shard.search` chaos seams, and (when a
//! [`ShardPolicy`] configures one) under a per-shard wall-clock deadline.
//! A shard that errors, panics, or blows its deadline is dropped from the
//! k-way merge instead of wedging the whole query. The policy's
//! `min_shards` quorum decides what a partial fan-out means:
//!
//! * **strict** (the default, `min_shards = None`): any shard failure
//!   fails the query — exactly the pre-policy contract;
//! * **quorum `m`**: as long as ≥ `m` shards answered, the merge returns
//!   the partial top-k and the [`ShardHealth`] report flags it degraded,
//!   naming each dropped shard and why.
//!
//! With no faults armed and no deadline configured the isolated path is
//! byte-identical to the original fan-out (same scores, same order), and
//! its only extra cost is one relaxed atomic load per shard plus the
//! unwind guard.
//!
//! ## Observability
//!
//! With the global `unimatch-obs` flag on, every search records one
//! `unimatch_shard_search_us{shard="s"}` span per shard and one
//! `unimatch_shard_merge_us` span for the merge, alongside the backend's
//! own series — the data `/metrics` consumers use to spot a straggler
//! shard or a merge that grew past its budget.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::index::{
    batch_entry_hooks, Hit, QuorumError, Retriever, SearchOptions, ShardFailureKind, ShardHealth,
};
use crate::store::EmbeddingStore;
use unimatch_faults::{FaultKind, FaultPoint};
use unimatch_obs as obs;
use unimatch_parallel::par_map_indexed;

/// Interned per-shard label bodies (the obs registry keys series by
/// `'static` string identity, so labels must come from a fixed table).
const SHARD_LABELS: [&str; 16] = [
    "shard=\"0\"",
    "shard=\"1\"",
    "shard=\"2\"",
    "shard=\"3\"",
    "shard=\"4\"",
    "shard=\"5\"",
    "shard=\"6\"",
    "shard=\"7\"",
    "shard=\"8\"",
    "shard=\"9\"",
    "shard=\"10\"",
    "shard=\"11\"",
    "shard=\"12\"",
    "shard=\"13\"",
    "shard=\"14\"",
    "shard=\"15\"",
];

/// Label for shard indices past the interned table.
const SHARD_OVERFLOW_LABEL: &str = "shard=\"16+\"";

/// The `shard="…"` label body for shard `s`.
fn shard_label(s: usize) -> &'static str {
    SHARD_LABELS.get(s).copied().unwrap_or(SHARD_OVERFLOW_LABEL)
}

/// Chaos seam fired once per shard per fan-out: a plan targeting
/// `ann.shard.search` hits *every* shard (a correlated storm), while the
/// indexed variants below wedge exactly one shard.
const SHARD_FAULT: FaultPoint = FaultPoint::new("ann.shard.search");

/// Per-shard chaos seams (`ann.shard.search.N`): arming one wedges only
/// shard N, which is how the degraded-serving suite proves the other
/// shards keep answering. Shards past the table only honor the
/// un-indexed `ann.shard.search` point.
const SHARD_FAULT_NAMES: [&str; 16] = [
    "ann.shard.search.0",
    "ann.shard.search.1",
    "ann.shard.search.2",
    "ann.shard.search.3",
    "ann.shard.search.4",
    "ann.shard.search.5",
    "ann.shard.search.6",
    "ann.shard.search.7",
    "ann.shard.search.8",
    "ann.shard.search.9",
    "ann.shard.search.10",
    "ann.shard.search.11",
    "ann.shard.search.12",
    "ann.shard.search.13",
    "ann.shard.search.14",
    "ann.shard.search.15",
];

/// Consults both the blanket and the per-shard chaos seam for shard `s`.
/// Disarmed cost: one relaxed atomic load.
fn shard_fault(s: usize) -> Option<FaultKind> {
    if !unimatch_faults::armed() {
        return None;
    }
    SHARD_FAULT
        .fire()
        .or_else(|| SHARD_FAULT_NAMES.get(s).and_then(|name| FaultPoint::should_fire(name)))
}

/// Failure-isolation policy for a sharded fan-out.
///
/// The default (`deadline: None`, `min_shards: None`) reproduces the
/// strict pre-policy contract: no per-shard budget, and any shard failure
/// fails the whole query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardPolicy {
    /// Per-shard wall-clock budget, measured around the shard's search
    /// (injected latency included). A shard that answers past the budget
    /// is counted failed and its hits are dropped from the merge. `None`
    /// means unbounded — and the clock is never read.
    pub deadline: Option<Duration>,
    /// Minimum healthy shards required to answer at all. `None` means
    /// every shard must answer (strict); `Some(m)` tolerates up to
    /// `shards - m` failures, returning a degraded partial top-k.
    pub min_shards: Option<usize>,
}

/// What one shard contributed to a fan-out.
enum ShardOutcome<T> {
    Hits(T),
    Failed(ShardFailureKind),
}

/// N backend indexes over contiguous row ranges of one shared arena,
/// searched in parallel and merged under the canonical top-k order.
///
/// Build one with [`ShardedRetriever::build`], supplying the closure that
/// turns each shard's store view into a backend index (the same closure
/// shape `RetrieverKind` uses for whole-store builds):
///
/// ```
/// use std::sync::Arc;
/// use unimatch_ann::{BruteForceIndex, EmbeddingStore, Retriever, ShardedRetriever};
///
/// let store = Arc::new(EmbeddingStore::from_vec(
///     vec![1.0, 0.0, 0.0, 1.0, 0.7, 0.7, -1.0, 0.0],
///     2,
/// ));
/// let sharded = ShardedRetriever::build(&store, 2, |view| {
///     Box::new(BruteForceIndex::over(view))
/// });
/// assert_eq!(sharded.shards(), 2);
/// let hits = sharded.search(&[1.0, 0.1], 2);
/// assert_eq!(hits[0].id, 0); // global row ids, same as unsharded
/// ```
pub struct ShardedRetriever {
    shards: Vec<Box<dyn Retriever>>,
    /// Global row id of each shard's local row 0 (ascending).
    offsets: Vec<u32>,
    len: usize,
    dim: usize,
    backend: &'static str,
    policy: ShardPolicy,
}

impl ShardedRetriever {
    /// Partitions `store` into `shards` contiguous row ranges (sizes
    /// differing by at most one row) and builds one backend index per
    /// range via `build_shard`, each over a zero-copy view of the shared
    /// arena. Uses the strict default [`ShardPolicy`]; see
    /// [`ShardedRetriever::build_with_policy`].
    ///
    /// `shards` is clamped to the row count (an empty store builds one
    /// empty shard). Shards are built in ascending row order, so a
    /// build closure threading an `&mut` RNG stays deterministic.
    ///
    /// # Panics
    /// Panics if `shards == 0`, or if `build_shard` returns an index
    /// whose `len`/`dim` disagree with the view it was given.
    pub fn build<F>(store: &Arc<EmbeddingStore>, shards: usize, build_shard: F) -> Self
    where
        F: FnMut(Arc<EmbeddingStore>) -> Box<dyn Retriever>,
    {
        Self::build_with_policy(store, shards, ShardPolicy::default(), build_shard)
    }

    /// [`ShardedRetriever::build`] with an explicit failure-isolation
    /// policy. A `min_shards` larger than the (clamped) shard count is
    /// itself clamped at search time, so a quorum of "1" is always
    /// satisfiable on a healthy fan-out.
    pub fn build_with_policy<F>(
        store: &Arc<EmbeddingStore>,
        shards: usize,
        policy: ShardPolicy,
        mut build_shard: F,
    ) -> Self
    where
        F: FnMut(Arc<EmbeddingStore>) -> Box<dyn Retriever>,
    {
        assert!(shards > 0, "shards must be positive");
        let rows = store.rows();
        let n = shards.min(rows).max(1);
        let mut built: Vec<Box<dyn Retriever>> = Vec::with_capacity(n);
        let mut offsets = Vec::with_capacity(n);
        for s in 0..n {
            let start = s * rows / n;
            let end = (s + 1) * rows / n;
            let view = Arc::new(store.view_rows(start, end));
            let index = build_shard(view);
            assert_eq!(index.len(), end - start, "shard {s}: index len != view rows");
            assert_eq!(index.dim(), store.dim(), "shard {s}: index dim != store dim");
            built.push(index);
            offsets.push(start as u32);
        }
        let backend = built[0].backend();
        ShardedRetriever { shards: built, offsets, len: rows, dim: store.dim(), backend, policy }
    }

    /// The failure-isolation policy this fan-out runs under.
    pub fn policy(&self) -> ShardPolicy {
        self.policy
    }

    /// Runs one shard's search under the isolation envelope: chaos seams
    /// first (latency sleeps in place and counts toward the deadline, an
    /// I/O fault fails the shard, a crash fault panics inside the capture
    /// below), then the search itself inside `catch_unwind`, then the
    /// deadline check. `AssertUnwindSafe` is sound here because `op` only
    /// reads through `&self` — a captured panic cannot leave observable
    /// index state half-written.
    fn run_shard<T>(&self, s: usize, op: impl FnOnce() -> T) -> ShardOutcome<T> {
        let start = self.policy.deadline.map(|_| Instant::now());
        let fault = shard_fault(s);
        match fault {
            Some(FaultKind::IoError) => return ShardOutcome::Failed(ShardFailureKind::Io),
            Some(FaultKind::LatencyUs(us)) => {
                std::thread::sleep(Duration::from_micros(us));
            }
            _ => {}
        }
        let crash = matches!(fault, Some(FaultKind::Crash));
        let result = catch_unwind(AssertUnwindSafe(|| {
            if crash {
                panic!("injected crash at fault point {}", SHARD_FAULT.name());
            }
            op()
        }));
        match result {
            Err(_) => ShardOutcome::Failed(ShardFailureKind::Panic),
            Ok(v) => match (start, self.policy.deadline) {
                (Some(t0), Some(budget)) if t0.elapsed() > budget => {
                    ShardOutcome::Failed(ShardFailureKind::Deadline)
                }
                _ => ShardOutcome::Hits(v),
            },
        }
    }

    /// Effective quorum for this call: the configured `min_shards`
    /// (strict = all shards) clamped to the real fan-out width, or 1 when
    /// the caller relaxed it.
    fn required_shards(&self, opts: SearchOptions) -> usize {
        let n = self.shards.len();
        if opts.relax_quorum {
            1
        } else {
            self.policy.min_shards.unwrap_or(n).clamp(1, n)
        }
    }

    /// Folds per-shard outcomes into `(per-shard payloads, health)`,
    /// failing the whole call when fewer shards than the quorum answered.
    /// Failed shards yield `None` payloads so merge callers skip them by
    /// position (keeping shard index = offset index).
    fn assemble<T>(
        &self,
        outcomes: Vec<ShardOutcome<T>>,
        opts: SearchOptions,
    ) -> Result<(Vec<Option<T>>, ShardHealth), QuorumError> {
        let total = outcomes.len();
        let mut payloads = Vec::with_capacity(total);
        let mut health = ShardHealth::healthy(total);
        for (s, outcome) in outcomes.into_iter().enumerate() {
            match outcome {
                ShardOutcome::Hits(v) => payloads.push(Some(v)),
                ShardOutcome::Failed(kind) => {
                    health.failures.push((s as u32, kind));
                    payloads.push(None);
                }
            }
        }
        let required = self.required_shards(opts);
        if health.healthy_shards() < required {
            return Err(QuorumError { healthy: health.healthy_shards(), required, total });
        }
        Ok((payloads, health))
    }

    /// Searches every shard (in parallel when the fan-out clears the
    /// global work threshold) under the isolation envelope, returning the
    /// per-shard outcomes with local row ids already translated to global
    /// ids.
    fn search_shards(&self, query: &[f32], k: usize) -> Vec<ShardOutcome<Vec<Hit>>> {
        let work = self.len * self.dim * 2;
        par_map_indexed(self.shards.len(), work, |s| {
            let _span = obs::span_us("unimatch_shard_search_us", shard_label(s));
            self.run_shard(s, || {
                let offset = self.offsets[s];
                let mut hits = self.shards[s].search(query, k);
                for h in &mut hits {
                    h.id += offset;
                }
                hits
            })
        })
    }

    /// Fallible single-query search; see
    /// [`Retriever::search_batch_checked`] for the batch form.
    pub fn search_checked(
        &self,
        query: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<Hit>, ShardHealth), QuorumError> {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let (per_shard, health) = self.assemble(self.search_shards(query, k), opts)?;
        let _merge_span = obs::span_us("unimatch_shard_merge_us", "");
        let refs: Vec<&[Hit]> =
            per_shard.iter().filter_map(|l| l.as_deref()).collect();
        Ok((merge_topk(&refs, k), health))
    }
}

/// K-way merges per-shard top-k lists (each sorted by `(score desc, id
/// asc)` with globally unique ids) into the global top-k under the same
/// order. Candidates compare under [`crate::order::canonical`]
/// (`f32::total_cmp`), so a NaN that slips out of a backend orders
/// deterministically (above +inf) instead of comparing "equal to
/// everything" and destabilizing the merge.
fn merge_topk(lists: &[&[Hit]], k: usize) -> Vec<Hit> {
    use std::cmp::Ordering;
    if lists.len() == 1 {
        let mut out = lists[0].to_vec();
        out.truncate(k);
        return out;
    }
    let total: usize = lists.iter().map(|l| l.len()).sum();
    let mut out = Vec::with_capacity(k.min(total));
    let mut cursors = vec![0usize; lists.len()];
    while out.len() < k {
        let mut best: Option<(usize, Hit)> = None;
        for (li, list) in lists.iter().enumerate() {
            if let Some(&h) = list.get(cursors[li]) {
                let better = match &best {
                    None => true,
                    Some((_, b)) => crate::order::canonical(&h, b) == Ordering::Less,
                };
                if better {
                    best = Some((li, h));
                }
            }
        }
        let Some((li, h)) = best else { break };
        cursors[li] += 1;
        out.push(h);
    }
    out
}

impl Retriever for ShardedRetriever {
    fn len(&self) -> usize {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    /// The *inner* backend's name — a sharded index serves the same
    /// metric label as its unsharded counterpart; the fan-out is
    /// reported separately through [`Retriever::shards`].
    fn backend(&self) -> &'static str {
        self.backend
    }

    fn shards(&self) -> usize {
        self.shards.len()
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        match self.search_checked(query, k, SearchOptions::default()) {
            Ok((hits, _)) => hits,
            Err(e) => panic!("sharded search failed: {e}"),
        }
    }

    /// Fans the whole batch across shards (each shard answers every
    /// query over its row range; nested per-query parallelism inside a
    /// shard runs inline), then merges per query. Identical results to
    /// per-query [`ShardedRetriever::search`]; a strict-quorum failure
    /// panics, matching the single-query path.
    fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        match self.search_batch_checked(queries, k, SearchOptions::default()) {
            Ok((lists, _)) => lists,
            Err(e) => panic!("sharded search failed: {e}"),
        }
    }

    /// The fallible fan-out: failed shards (I/O fault, captured panic,
    /// blown per-shard deadline) are dropped from every query's merge,
    /// and the health report names them; fewer healthy shards than the
    /// effective quorum fails the whole batch instead.
    fn search_batch_checked(
        &self,
        queries: &[f32],
        k: usize,
        opts: SearchOptions,
    ) -> Result<(Vec<Vec<Hit>>, ShardHealth), QuorumError> {
        let _span = batch_entry_hooks(self.obs_label());
        let d = self.dim;
        assert!(d > 0, "search_batch on an index with zero dimension");
        assert_eq!(
            queries.len() % d,
            0,
            "query batch length {} is not a multiple of dim {}",
            queries.len(),
            d
        );
        let nq = queries.len() / d;
        let work = nq * self.len * d * 2;
        let outcomes: Vec<ShardOutcome<Vec<Vec<Hit>>>> =
            par_map_indexed(self.shards.len(), work, |s| {
                let _span = obs::span_us("unimatch_shard_search_us", shard_label(s));
                self.run_shard(s, || {
                    let offset = self.offsets[s];
                    let mut lists = self.shards[s].search_batch(queries, k);
                    for hits in &mut lists {
                        for h in hits {
                            h.id += offset;
                        }
                    }
                    lists
                })
            });
        let (per_shard, health) = self.assemble(outcomes, opts)?;
        let _merge_span = obs::span_us("unimatch_shard_merge_us", "");
        let mut scratch: Vec<&[Hit]> = Vec::with_capacity(self.shards.len());
        let merged = (0..nq)
            .map(|q| {
                scratch.clear();
                scratch.extend(per_shard.iter().filter_map(|lists| {
                    lists.as_ref().map(|l| l[q].as_slice())
                }));
                merge_topk(&scratch, k)
            })
            .collect();
        Ok((merged, health))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use unimatch_faults::{self as faults, FaultPlan, FaultRule};

    /// Serializes tests that arm the process-global fault plan.
    fn fault_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn store(rows: usize, dim: usize, seed: u64) -> Arc<EmbeddingStore> {
        let mut state = seed;
        let data: Vec<f32> = (0..rows * dim)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        Arc::new(EmbeddingStore::from_vec(data, dim))
    }

    fn sharded_exact(store: &Arc<EmbeddingStore>, n: usize) -> ShardedRetriever {
        ShardedRetriever::build(store, n, |view| Box::new(BruteForceIndex::over(view)))
    }

    fn sharded_quorum(store: &Arc<EmbeddingStore>, n: usize, min: usize) -> ShardedRetriever {
        let policy = ShardPolicy { deadline: None, min_shards: Some(min) };
        ShardedRetriever::build_with_policy(store, n, policy, |view| {
            Box::new(BruteForceIndex::over(view))
        })
    }

    #[test]
    fn matches_unsharded_bitwise() {
        let s = store(61, 8, 0x5eed);
        let whole = BruteForceIndex::over(s.clone());
        for n in [1, 2, 3, 7] {
            let sharded = sharded_exact(&s, n);
            assert_eq!(sharded.len(), 61);
            assert_eq!(sharded.shards(), n);
            for k in [0, 1, 5, 61, 100] {
                let a = whole.search(s.row(3), k);
                let b = sharded.search(s.row(3), k);
                assert_eq!(a.len(), b.len(), "n={n} k={k}");
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.id, y.id, "n={n} k={k}");
                    assert_eq!(x.score.to_bits(), y.score.to_bits(), "n={n} k={k}");
                }
            }
        }
    }

    #[test]
    fn batch_matches_per_query() {
        let s = store(40, 4, 0xf00d);
        let sharded = sharded_exact(&s, 3);
        let queries: Vec<f32> = (0..6).flat_map(|q| s.row(q * 5).to_vec()).collect();
        let batched = sharded.search_batch(&queries, 7);
        for (q, hits) in batched.iter().enumerate() {
            let single = sharded.search(&queries[q * 4..(q + 1) * 4], 7);
            assert_eq!(hits, &single, "query {q}");
        }
    }

    #[test]
    fn ties_across_shard_boundaries_keep_lowest_global_ids() {
        // Rows 0..6 all identical: every score ties, so the global top-3
        // must be ids 0,1,2 regardless of where the shard cuts fall.
        let data = [1.0f32, 0.0].repeat(6);
        let s = Arc::new(EmbeddingStore::from_vec(data, 2));
        for n in [1, 2, 3, 4] {
            let sharded = sharded_exact(&s, n);
            let ids: Vec<u32> = sharded.search(&[1.0, 0.0], 3).iter().map(|h| h.id).collect();
            assert_eq!(ids, vec![0, 1, 2], "n={n}");
        }
    }

    #[test]
    fn more_shards_than_rows_clamps() {
        let s = store(3, 2, 9);
        let sharded = sharded_exact(&s, 8);
        assert_eq!(sharded.shards(), 3);
        assert_eq!(sharded.search(s.row(0), 10).len(), 3);
    }

    #[test]
    fn empty_store_builds_one_empty_shard() {
        let s = Arc::new(EmbeddingStore::zeroed(0, 4));
        let sharded = sharded_exact(&s, 4);
        assert_eq!(sharded.shards(), 1);
        assert!(sharded.is_empty());
        assert!(sharded.search(&[0.0; 4], 5).is_empty());
    }

    #[test]
    fn shard_views_share_the_parent_arena() {
        let s = store(10, 2, 1);
        let mut seen = 0;
        ShardedRetriever::build(&s, 2, |view| {
            assert!(view.shares_arena(&s));
            seen += 1;
            Box::new(BruteForceIndex::over(view))
        });
        assert_eq!(seen, 2);
    }

    #[test]
    #[should_panic(expected = "shards must be positive")]
    fn zero_shards_rejected() {
        sharded_exact(&store(4, 2, 2), 0);
    }

    #[test]
    fn merge_is_exhaustive_when_k_exceeds_total() {
        let lists: Vec<Vec<Hit>> = vec![
            vec![Hit { id: 0, score: 0.9 }, Hit { id: 1, score: 0.1 }],
            vec![Hit { id: 2, score: 0.5 }],
        ];
        let refs: Vec<&[Hit]> = lists.iter().map(|l| l.as_slice()).collect();
        let merged = merge_topk(&refs, 10);
        let ids: Vec<u32> = merged.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 2, 1]);
    }

    #[test]
    fn merge_orders_nan_scores_deterministically() {
        // total_cmp puts +NaN above +inf; under the old partial_cmp
        // comparator ("NaN == everything") the outcome depended on list
        // arrival order. Either way the merge must terminate and keep
        // every element exactly once.
        let lists: Vec<Vec<Hit>> = vec![
            vec![Hit { id: 0, score: f32::NAN }, Hit { id: 3, score: 0.2 }],
            vec![Hit { id: 1, score: 0.9 }, Hit { id: 2, score: 0.5 }],
        ];
        let refs: Vec<&[Hit]> = lists.iter().map(|l| l.as_slice()).collect();
        let merged = merge_topk(&refs, 10);
        let ids: Vec<u32> = merged.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![0, 1, 2, 3], "NaN sorts first under total_cmp");
        // Swapping the lists must not change the merged order.
        let swapped: Vec<&[Hit]> = vec![refs[1], refs[0]];
        let ids2: Vec<u32> = merge_topk(&swapped, 10).iter().map(|h| h.id).collect();
        assert_eq!(ids, ids2, "merge order must not depend on shard order");
    }

    #[test]
    fn io_fault_on_one_shard_degrades_under_quorum() {
        let _guard = fault_lock();
        let s = store(30, 4, 0xabc);
        let whole = BruteForceIndex::over(s.clone());
        let sharded = sharded_quorum(&s, 3, 1);
        faults::set_plan(FaultPlan {
            seed: 1,
            rules: vec![FaultRule::new("ann.shard.search.0", FaultKind::IoError)
                .with_probability(1.0)],
        });
        let (hits, health) = sharded
            .search_checked(s.row(2), 5, SearchOptions::default())
            .expect("quorum of 1 met");
        faults::clear();
        assert!(health.degraded());
        assert_eq!(health.total, 3);
        assert_eq!(health.failures, vec![(0, ShardFailureKind::Io)]);
        // The partial answer is exactly the full answer minus shard 0's rows.
        let expected: Vec<Hit> = whole
            .search(s.row(2), 30)
            .into_iter()
            .filter(|h| h.id >= 10)
            .take(5)
            .collect();
        assert_eq!(hits, expected);
    }

    #[test]
    fn strict_policy_fails_the_query_on_any_shard_failure() {
        let _guard = fault_lock();
        let s = store(20, 4, 0x11);
        let sharded = sharded_exact(&s, 2);
        faults::set_plan(FaultPlan {
            seed: 2,
            rules: vec![FaultRule::new("ann.shard.search.1", FaultKind::IoError)
                .with_probability(1.0)],
        });
        let err = sharded
            .search_checked(s.row(0), 3, SearchOptions::default())
            .expect_err("strict policy");
        faults::clear();
        assert_eq!(err, QuorumError { healthy: 1, required: 2, total: 2 });
    }

    #[test]
    fn relax_quorum_overrides_a_strict_policy() {
        let _guard = fault_lock();
        let s = store(20, 4, 0x12);
        let sharded = sharded_exact(&s, 2);
        faults::set_plan(FaultPlan {
            seed: 3,
            rules: vec![FaultRule::new("ann.shard.search.1", FaultKind::IoError)
                .with_probability(1.0)],
        });
        let (hits, health) = sharded
            .search_checked(s.row(0), 3, SearchOptions { relax_quorum: true })
            .expect("relaxed quorum of 1");
        faults::clear();
        assert!(health.degraded());
        assert!(hits.iter().all(|h| h.id < 10), "only shard 0 rows remain");
    }

    #[test]
    fn shard_panic_is_captured_as_a_failure() {
        let _guard = fault_lock();
        let s = store(24, 4, 0x13);
        let sharded = sharded_quorum(&s, 2, 1);
        faults::set_plan(FaultPlan {
            seed: 4,
            rules: vec![
                FaultRule::new("ann.shard.search.0", FaultKind::Crash).with_probability(1.0)
            ],
        });
        let (_, health) = sharded
            .search_batch_checked(s.row(1), 4, SearchOptions::default())
            .expect("one healthy shard");
        faults::clear();
        assert_eq!(health.failures, vec![(0, ShardFailureKind::Panic)]);
    }

    #[test]
    fn blown_per_shard_deadline_drops_the_shard() {
        let _guard = fault_lock();
        let s = store(24, 4, 0x14);
        let policy = ShardPolicy {
            deadline: Some(Duration::from_millis(5)),
            min_shards: Some(1),
        };
        let sharded = ShardedRetriever::build_with_policy(&s, 2, policy, |view| {
            Box::new(BruteForceIndex::over(view))
        });
        faults::set_plan(FaultPlan {
            seed: 5,
            rules: vec![FaultRule::new("ann.shard.search.1", FaultKind::LatencyUs(20_000))
                .with_probability(1.0)],
        });
        let (hits, health) = sharded
            .search_checked(s.row(0), 4, SearchOptions::default())
            .expect("shard 0 within budget");
        faults::clear();
        assert_eq!(health.failures, vec![(1, ShardFailureKind::Deadline)]);
        assert!(hits.iter().all(|h| h.id < 12), "only shard 0 rows remain");
    }

    #[test]
    fn blanket_shard_fault_misses_quorum_everywhere() {
        let _guard = fault_lock();
        let s = store(24, 4, 0x15);
        let sharded = sharded_quorum(&s, 3, 1);
        faults::set_plan(FaultPlan {
            seed: 6,
            rules: vec![
                FaultRule::new("ann.shard.search", FaultKind::IoError).with_probability(1.0)
            ],
        });
        let err = sharded
            .search_checked(s.row(0), 4, SearchOptions::default())
            .expect_err("all shards down");
        faults::clear();
        assert_eq!(err.healthy, 0);
        assert_eq!(err.total, 3);
    }

    #[test]
    fn healthy_checked_path_is_bitwise_identical_and_reports_healthy() {
        let s = store(50, 8, 0x16);
        let sharded = sharded_quorum(&s, 4, 2);
        let plain = sharded.search_batch(s.row(7), 9);
        let (checked, health) = sharded
            .search_batch_checked(s.row(7), 9, SearchOptions::default())
            .expect("healthy");
        assert!(!health.degraded());
        assert_eq!(health.total, 4);
        assert_eq!(plain, checked);
    }
}
