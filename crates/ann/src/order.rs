//! The canonical candidate order of the retrieval engine, in one place.
//!
//! Every surface that emits or merges ranked hits — the blocked exact
//! kernel, each backend's result drain, the sharded k-way merge, and the
//! re-ranking chain's re-sorts — must agree on a single total order, or
//! the workspace's bitwise differential suites cannot compare them.
//! That order is:
//!
//! * **score descending**, compared with [`f32::total_cmp`] so every bit
//!   pattern (NaN, ±inf, ±0.0) has a deterministic place — a NaN that
//!   slips out of a backend sorts *above* `+inf` instead of comparing
//!   "equal to everything" and destabilizing the sort;
//! * **lowest id first** on score ties.
//!
//! [`canonical`] is the comparator (best candidate orders `Less`, so an
//! ascending sort yields best-first) and [`sort_canonical`] the sort
//! built on it.

use crate::index::Hit;
use std::cmp::Ordering;

/// Compares two hits under the canonical `(score desc, id asc)` order.
///
/// Returns [`Ordering::Less`] when `a` is the *better* candidate (higher
/// score, or equal score with the lower id), so sorting ascending by
/// this comparator produces a best-first list. This is a total order:
/// `Equal` only for bit-identical scores on the same id.
#[inline]
pub fn canonical(a: &Hit, b: &Hit) -> Ordering {
    b.score.total_cmp(&a.score).then(a.id.cmp(&b.id))
}

/// Sorts hits best-first under [`canonical`].
#[inline]
pub fn sort_canonical(hits: &mut [Hit]) {
    hits.sort_by(canonical);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arbitrary_hit() -> impl Strategy<Value = Hit> {
        // drive the score through raw bit patterns so NaNs (both signs),
        // infinities, zeros and subnormals all appear in the corpus
        (proptest::num::u32::ANY, proptest::num::u32::ANY)
            .prop_map(|(id, bits)| Hit { id: id % 64, score: f32::from_bits(bits) })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn comparator_is_a_total_order(
            a in arbitrary_hit(),
            b in arbitrary_hit(),
            c in arbitrary_hit(),
        ) {
            // antisymmetry
            prop_assert_eq!(canonical(&a, &b), canonical(&b, &a).reverse());
            // Equal only for identical (bit-level) hits
            if canonical(&a, &b) == Ordering::Equal {
                prop_assert_eq!(a.id, b.id);
                prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
            }
            // transitivity of `<=`
            if canonical(&a, &b) != Ordering::Greater
                && canonical(&b, &c) != Ordering::Greater
            {
                prop_assert_ne!(canonical(&a, &c), Ordering::Greater);
            }
        }

        #[test]
        fn sort_is_deterministic_and_permutation_preserving(
            mut hits in proptest::collection::vec(arbitrary_hit(), 0..48),
        ) {
            let mut shuffled: Vec<Hit> = hits.iter().rev().copied().collect();
            sort_canonical(&mut hits);
            sort_canonical(&mut shuffled);
            // same multiset in, same bytes out, independent of input order
            prop_assert_eq!(hits.len(), shuffled.len());
            for (h, s) in hits.iter().zip(&shuffled) {
                prop_assert_eq!(h.id, s.id);
                prop_assert_eq!(h.score.to_bits(), s.score.to_bits());
            }
            // pairwise order holds: never a strictly-better hit after a worse one
            for w in hits.windows(2) {
                prop_assert_ne!(canonical(&w[0], &w[1]), Ordering::Greater);
            }
        }

        #[test]
        fn ties_break_by_lowest_id(score in proptest::num::u32::ANY, x in 0u32..1000, y in 0u32..1000) {
            prop_assume!(x != y);
            let score = f32::from_bits(score);
            let (lo, hi) = (x.min(y), x.max(y));
            let mut hits = vec![Hit { id: hi, score }, Hit { id: lo, score }];
            sort_canonical(&mut hits);
            prop_assert_eq!(hits[0].id, lo);
            prop_assert_eq!(hits[1].id, hi);
        }
    }

    #[test]
    fn nan_orders_above_infinity() {
        // total_cmp: positive NaN > +inf > finite > -inf > negative NaN
        let mut hits = vec![
            Hit { id: 0, score: f32::INFINITY },
            Hit { id: 1, score: f32::NAN },
            Hit { id: 2, score: 1.0 },
            Hit { id: 3, score: f32::NEG_INFINITY },
            Hit { id: 4, score: -f32::NAN },
        ];
        sort_canonical(&mut hits);
        let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![1, 0, 2, 3, 4]);
    }
}
