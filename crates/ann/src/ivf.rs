//! IVF (inverted file) index: spherical k-means coarse quantizer +
//! per-centroid inverted lists. Queries probe the `nprobe` closest
//! centroids and scan only their lists.

use std::sync::Arc;

use crate::index::{Hit, Retriever};
use crate::kernel::{dot, TopK};
use crate::store::EmbeddingStore;
use rand::Rng;
use unimatch_obs as obs;

/// IVF build parameters.
#[derive(Clone, Copy, Debug)]
pub struct IvfConfig {
    /// Number of coarse centroids.
    pub nlist: usize,
    /// Centroids probed per query.
    pub nprobe: usize,
    /// Lloyd iterations for k-means.
    pub kmeans_iters: usize,
}

impl Default for IvfConfig {
    fn default() -> Self {
        IvfConfig { nlist: 32, nprobe: 4, kmeans_iters: 10 }
    }
}

/// An IVF index over unit vectors, scoring against a shared
/// [`EmbeddingStore`].
#[derive(Clone, Debug)]
pub struct IvfIndex {
    store: Arc<EmbeddingStore>,
    centroids: Vec<f32>,
    lists: Vec<Vec<u32>>,
    nprobe: usize,
}

impl IvfIndex {
    /// Builds the index (k-means over the rows, then list assignment)
    /// from an owned buffer.
    pub fn build(data: Vec<f32>, dim: usize, cfg: IvfConfig, rng: &mut impl Rng) -> Self {
        IvfIndex::build_over(Arc::new(EmbeddingStore::from_vec(data, dim)), cfg, rng)
    }

    /// Builds the index over an existing shared store (no vector copy; the
    /// centroids and lists are the only per-index allocations).
    pub fn build_over(store: Arc<EmbeddingStore>, cfg: IvfConfig, rng: &mut impl Rng) -> Self {
        let _build_span = obs::span_us("unimatch_ann_build_us", "index=\"ivf\"");
        let dim = store.dim();
        let n = store.rows();
        assert!(n > 0, "cannot build IVF over an empty set");
        let nlist = cfg.nlist.min(n).max(1);
        // One scratch row: quantized stores decode into it (for f32 it is
        // a plain copy, so the arithmetic is unchanged bit for bit).
        let mut scratch = vec![0.0f32; dim];

        // k-means++ -lite seeding: random distinct rows
        let mut chosen = std::collections::HashSet::new();
        while chosen.len() < nlist {
            chosen.insert(rng.gen_range(0..n));
        }
        let mut centroids: Vec<f32> = Vec::with_capacity(nlist * dim);
        for &c in &chosen {
            store.decode_row_into(c, &mut scratch);
            centroids.extend_from_slice(&scratch);
        }

        let mut assign = vec![0usize; n];
        for _ in 0..cfg.kmeans_iters {
            // assignment by max inner product (spherical k-means)
            for (r, slot) in assign.iter_mut().enumerate() {
                store.decode_row_into(r, &mut scratch);
                let mut best = f32::NEG_INFINITY;
                for c in 0..nlist {
                    let s = dot(&scratch, &centroids[c * dim..(c + 1) * dim]);
                    if s > best {
                        best = s;
                        *slot = c;
                    }
                }
            }
            // update: mean then renormalize
            let mut sums = vec![0.0f32; nlist * dim];
            let mut counts = vec![0usize; nlist];
            for (r, &c) in assign.iter().enumerate() {
                counts[c] += 1;
                store.decode_row_into(r, &mut scratch);
                for (s, &x) in sums[c * dim..(c + 1) * dim].iter_mut().zip(&scratch) {
                    *s += x;
                }
            }
            for c in 0..nlist {
                if counts[c] == 0 {
                    // re-seed empty centroid on a random row
                    let r = rng.gen_range(0..n);
                    store.decode_row_into(r, &mut sums[c * dim..(c + 1) * dim]);
                    counts[c] = 1;
                }
                let slice = &mut sums[c * dim..(c + 1) * dim];
                let norm = slice.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                for s in slice.iter_mut() {
                    *s /= norm;
                }
            }
            centroids = sums;
        }

        // final assignment into inverted lists
        let mut lists = vec![Vec::new(); nlist];
        for r in 0..n {
            store.decode_row_into(r, &mut scratch);
            let mut best = f32::NEG_INFINITY;
            let mut best_c = 0;
            for c in 0..nlist {
                let s = dot(&scratch, &centroids[c * dim..(c + 1) * dim]);
                if s > best {
                    best = s;
                    best_c = c;
                }
            }
            lists[best_c].push(r as u32);
        }

        IvfIndex { store, centroids, lists, nprobe: cfg.nprobe.min(nlist).max(1) }
    }

    /// Number of inverted lists.
    pub fn nlist(&self) -> usize {
        self.lists.len()
    }

    /// The embedding arena this index scores against.
    pub fn store(&self) -> &Arc<EmbeddingStore> {
        &self.store
    }
}

impl Retriever for IvfIndex {
    fn len(&self) -> usize {
        self.store.rows()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn backend(&self) -> &'static str {
        "ivf"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let dim = self.dim();
        assert_eq!(query.len(), dim, "query dim mismatch");
        let _search_span = obs::span_us("unimatch_ann_search_us", "index=\"ivf\"");
        // rank centroids
        let nlist = self.lists.len();
        let mut order: Vec<usize> = (0..nlist).collect();
        let scores: Vec<f32> = (0..nlist)
            .map(|c| dot(query, &self.centroids[c * dim..(c + 1) * dim]))
            .collect();
        order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));

        let mut top = TopK::new(k);
        let mut scanned = nlist; // every centroid is scored during ranking
        for &c in order.iter().take(self.nprobe) {
            scanned += self.lists[c].len();
            for &r in &self.lists[c] {
                top.push(r, self.store.score_row(query, r as usize));
            }
        }
        if obs::enabled() {
            obs::registry::counter_labeled("unimatch_ann_searches_total", "index=\"ivf\"").inc();
            obs::registry::histogram("unimatch_ann_visited_nodes", "index=\"ivf\"", obs::COUNT_BOUNDS)
                .observe(scanned as u64);
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::BruteForceIndex;
    use rand::SeedableRng;

    fn unit_cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
            data.extend(v.into_iter().map(|x| x / norm));
        }
        data
    }

    #[test]
    fn partitions_all_rows() {
        let data = unit_cloud(200, 8, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let ix = IvfIndex::build(data, 8, IvfConfig::default(), &mut rng);
        let total: usize = (0..ix.nlist()).map(|c| ix.lists[c].len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn high_nprobe_matches_bruteforce() {
        let data = unit_cloud(300, 8, 3);
        let bf = BruteForceIndex::new(data.clone(), 8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let cfg = IvfConfig { nlist: 16, nprobe: 16, kmeans_iters: 5 };
        let ivf = IvfIndex::build(data, 8, cfg, &mut rng);
        let q = unit_cloud(1, 8, 5);
        let exact: Vec<u32> = bf.search(&q, 10).iter().map(|h| h.id).collect();
        let approx: Vec<u32> = ivf.search(&q, 10).iter().map(|h| h.id).collect();
        assert_eq!(exact, approx, "full probe must be exact");
    }

    #[test]
    fn partial_probe_has_decent_recall() {
        let data = unit_cloud(1000, 16, 6);
        let bf = BruteForceIndex::new(data.clone(), 16);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let cfg = IvfConfig { nlist: 32, nprobe: 8, kmeans_iters: 8 };
        let ivf = IvfIndex::build(data, 16, cfg, &mut rng);
        let queries = unit_cloud(20, 16, 8);
        let mut hits = 0;
        let mut total = 0;
        for q in queries.chunks(16) {
            let exact: std::collections::HashSet<u32> =
                bf.search(q, 10).iter().map(|h| h.id).collect();
            for h in ivf.search(q, 10) {
                if exact.contains(&h.id) {
                    hits += 1;
                }
            }
            total += 10;
        }
        let recall = hits as f64 / total as f64;
        assert!(recall > 0.55, "recall@10 = {recall}");
    }
}
