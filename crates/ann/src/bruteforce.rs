//! Exact brute-force search: the correctness baseline the approximate
//! indexes are measured against.

use crate::index::{dot, AnnIndex, Hit, TopK};
use unimatch_obs as obs;

/// A flat, exact inner-product index.
#[derive(Clone, Debug)]
pub struct BruteForceIndex {
    data: Vec<f32>,
    dim: usize,
}

impl BruteForceIndex {
    /// Builds from a row-major buffer of `n * dim` floats.
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        assert!(dim > 0, "dim must be positive");
        assert_eq!(data.len() % dim, 0, "buffer not a multiple of dim");
        BruteForceIndex { data, dim }
    }

    fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.dim..(r + 1) * self.dim]
    }
}

impl AnnIndex for BruteForceIndex {
    fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim, "query dim mismatch");
        let _search_span = obs::span_us("unimatch_ann_search_us", "index=\"bruteforce\"");
        let mut top = TopK::new(k);
        for r in 0..self.len() {
            top.push(r as u32, dot(query, self.row(r)));
        }
        if obs::enabled() {
            obs::registry::counter_labeled("unimatch_ann_searches_total", "index=\"bruteforce\"")
                .inc();
            obs::registry::histogram(
                "unimatch_ann_visited_nodes",
                "index=\"bruteforce\"",
                obs::COUNT_BOUNDS,
            )
            .observe(self.len() as u64);
        }
        top.into_sorted()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_top_k() {
        let data = vec![
            1.0, 0.0, // id 0
            0.0, 1.0, // id 1
            0.7, 0.7, // id 2
            -1.0, 0.0, // id 3
        ];
        let ix = BruteForceIndex::new(data, 2);
        let hits = ix.search(&[1.0, 0.1], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_larger_than_n() {
        let ix = BruteForceIndex::new(vec![1.0, 0.0], 2);
        let hits = ix.search(&[1.0, 0.0], 10);
        assert_eq!(hits.len(), 1);
    }
}
