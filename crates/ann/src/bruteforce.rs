//! Exact brute-force search: the correctness baseline the approximate
//! indexes are measured against, and the required exact reference
//! implementation of [`Retriever`].

use std::sync::Arc;

use crate::index::{batch_entry_hooks, Hit, Retriever};
use crate::kernel::{top_k_exact_store, TopK};
use crate::store::EmbeddingStore;
use unimatch_obs as obs;

/// A flat, exact inner-product index over a shared [`EmbeddingStore`].
#[derive(Clone, Debug)]
pub struct BruteForceIndex {
    store: Arc<EmbeddingStore>,
}

impl BruteForceIndex {
    /// Builds from a row-major buffer of `n * dim` floats.
    pub fn new(data: Vec<f32>, dim: usize) -> Self {
        BruteForceIndex::over(Arc::new(EmbeddingStore::from_vec(data, dim)))
    }

    /// Builds over an existing shared store (no copy).
    pub fn over(store: Arc<EmbeddingStore>) -> Self {
        BruteForceIndex { store }
    }

    /// The embedding arena this index scores against.
    pub fn store(&self) -> &Arc<EmbeddingStore> {
        &self.store
    }
}

impl Retriever for BruteForceIndex {
    fn len(&self) -> usize {
        self.store.rows()
    }

    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn backend(&self) -> &'static str {
        "bruteforce"
    }

    fn search(&self, query: &[f32], k: usize) -> Vec<Hit> {
        assert_eq!(query.len(), self.dim(), "query dim mismatch");
        let _search_span = obs::span_us("unimatch_ann_search_us", "index=\"bruteforce\"");
        let mut top = TopK::new(k);
        for r in 0..self.len() {
            top.push(r as u32, self.store.score_row(query, r));
        }
        if obs::enabled() {
            obs::registry::counter_labeled("unimatch_ann_searches_total", "index=\"bruteforce\"")
                .inc();
            obs::registry::histogram(
                "unimatch_ann_visited_nodes",
                "index=\"bruteforce\"",
                obs::COUNT_BOUNDS,
            )
            .observe(self.len() as u64);
        }
        top.into_sorted()
    }

    /// Exact batch search through the blocked kernel
    /// ([`crate::kernel::top_k_exact_store`]): same scores and ordering
    /// as the per-query path, but targets are streamed tile-by-tile
    /// across each query block instead of re-read per query. Works over
    /// every row format and backing — quantized stores score through the
    /// fused dequant-dot inner loop.
    fn search_batch(&self, queries: &[f32], k: usize) -> Vec<Vec<Hit>> {
        let _span = batch_entry_hooks(self.obs_label());
        let d = self.dim();
        assert!(d > 0, "search_batch on an index with zero dimension");
        assert_eq!(
            queries.len() % d,
            0,
            "query batch length {} is not a multiple of dim {}",
            queries.len(),
            d
        );
        let nq = queries.len() / d;
        let hits = top_k_exact_store(queries, &self.store, k);
        if obs::enabled() {
            obs::registry::counter_labeled("unimatch_ann_searches_total", "index=\"bruteforce\"")
                .add(nq as u64);
            let visited = obs::registry::histogram(
                "unimatch_ann_visited_nodes",
                "index=\"bruteforce\"",
                obs::COUNT_BOUNDS,
            );
            for _ in 0..nq {
                visited.observe(self.len() as u64);
            }
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_top_k() {
        let data = vec![
            1.0, 0.0, // id 0
            0.0, 1.0, // id 1
            0.7, 0.7, // id 2
            -1.0, 0.0, // id 3
        ];
        let ix = BruteForceIndex::new(data, 2);
        let hits = ix.search(&[1.0, 0.1], 2);
        assert_eq!(hits[0].id, 0);
        assert_eq!(hits[1].id, 2);
        assert!(hits[0].score >= hits[1].score);
    }

    #[test]
    fn k_larger_than_n() {
        let ix = BruteForceIndex::new(vec![1.0, 0.0], 2);
        let hits = ix.search(&[1.0, 0.0], 10);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn batch_override_matches_per_query_search() {
        let data: Vec<f32> = (0..64).map(|i| ((i * 37 % 19) as f32) / 19.0 - 0.5).collect();
        let ix = BruteForceIndex::new(data, 4);
        let queries: Vec<f32> = (0..12).map(|i| ((i * 13 % 7) as f32) / 7.0 - 0.5).collect();
        let batched = ix.search_batch(&queries, 5);
        for (i, q) in queries.chunks(4).enumerate() {
            let single = ix.search(q, 5);
            assert_eq!(batched[i].len(), single.len());
            for (b, s) in batched[i].iter().zip(&single) {
                assert_eq!(b.id, s.id);
                assert_eq!(b.score.to_bits(), s.score.to_bits());
            }
        }
    }

    #[test]
    fn shares_a_store_without_copying() {
        let store = Arc::new(EmbeddingStore::from_vec(vec![1.0, 0.0, 0.0, 1.0], 2));
        let ix = BruteForceIndex::over(store.clone());
        assert!(Arc::ptr_eq(ix.store(), &store));
        assert_eq!(ix.len(), 2);
    }
}
