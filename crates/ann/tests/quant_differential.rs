//! Differential suite for quantized stores: every backend (exact, HNSW,
//! IVF), sharded 1-way and 3-way, single-query and batched, searched
//! over f16 and i8 stores and gated on recall@10 against the exact-f32
//! oracle — ≥ 0.99 for f16, ≥ 0.95 for i8. The backends are configured
//! effectively exact (`ef_search ≥ rows`, `nprobe = nlist`) so the gate
//! measures quantization loss alone, not index approximation.
//!
//! Two bitwise contracts ride along: quantized scores are deterministic
//! across independent retriever builds and runs, and an mmap'd table
//! backing returns results bit-identical to the owned-arena backing for
//! every backend.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_ann::{
    open_table, write_table, BruteForceIndex, EmbeddingStore, Hit, HnswConfig, HnswIndex,
    IvfConfig, IvfIndex, Retriever, RowFormat, ShardedRetriever, StoreBacking,
};

const DIM: usize = 16;
/// Deliberately not divisible by 3, so shard boundaries land unevenly.
const ROWS: usize = 250;
const K: usize = 10;
const N_QUERIES: usize = 40;
const SHARD_COUNTS: [usize; 2] = [1, 3];

fn unit_cloud(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * DIM);
    for _ in 0..n {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

/// One backend's retrievers, keyed by the shard count they were built with.
type ShardedBackends = Vec<(usize, Box<dyn Retriever>)>;

/// Effectively-exact retrievers of every backend over one store, plus a
/// sharded arrangement per tested shard count.
fn build_backends(store: &Arc<EmbeddingStore>) -> Vec<(&'static str, ShardedBackends)> {
    let hnsw_cfg = HnswConfig { m: 16, ef_construction: 128, ef_search: ROWS };
    let ivf_cfg = IvfConfig { nlist: 8, nprobe: 8, kmeans_iters: 4 };
    let mut out: Vec<(&'static str, ShardedBackends)> = Vec::new();
    for backend in ["exact", "hnsw", "ivf"] {
        let mut arrangements: ShardedBackends = Vec::new();
        for n in SHARD_COUNTS {
            let retriever: Box<dyn Retriever> = match backend {
                "exact" => Box::new(ShardedRetriever::build(store, n, |view| {
                    Box::new(BruteForceIndex::over(view))
                })),
                "hnsw" => {
                    let mut rng = StdRng::seed_from_u64(11);
                    Box::new(ShardedRetriever::build(store, n, |view| {
                        Box::new(HnswIndex::build_over(view, hnsw_cfg, &mut rng))
                    }))
                }
                _ => {
                    let mut rng = StdRng::seed_from_u64(12);
                    Box::new(ShardedRetriever::build(store, n, |view| {
                        Box::new(IvfIndex::build_over(view, ivf_cfg, &mut rng))
                    }))
                }
            };
            arrangements.push((n, retriever));
        }
        out.push((backend, arrangements));
    }
    out
}

fn recall_against(oracle: &[Vec<Hit>], lists: &[Vec<Hit>]) -> f64 {
    let mut hit = 0usize;
    let mut total = 0usize;
    for (o, l) in oracle.iter().zip(lists) {
        let truth: std::collections::HashSet<u32> = o.iter().map(|h| h.id).collect();
        total += truth.len();
        hit += l.iter().filter(|h| truth.contains(&h.id)).count();
    }
    hit as f64 / total.max(1) as f64
}

fn assert_bitwise(a: &[Hit], b: &[Hit], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: hit counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.id, y.id, "{context}: id diverges at rank {i}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{context}: score bits diverge at rank {i} (id {})",
            x.id
        );
    }
}

/// The recall gate each format must clear against the exact-f32 oracle.
fn gate(format: RowFormat) -> f64 {
    match format {
        RowFormat::F32 => 1.0,
        RowFormat::F16 => 0.99,
        RowFormat::I8 => 0.95,
    }
}

#[test]
fn every_backend_meets_the_recall_gate_over_quantized_stores() {
    let data = unit_cloud(ROWS, 0x9a27);
    let queries = unit_cloud(N_QUERIES, 0x9a28);
    let f32_store = Arc::new(EmbeddingStore::from_vec(data, DIM));

    // the oracle: exact top-k over the unquantized store
    let oracle_index = BruteForceIndex::over(f32_store.clone());
    let oracle: Vec<Vec<Hit>> =
        queries.chunks(DIM).map(|q| oracle_index.search(q, K)).collect();

    for format in RowFormat::ALL {
        let store = if format == RowFormat::F32 {
            f32_store.clone()
        } else {
            Arc::new(f32_store.quantize(format))
        };
        for (backend, arrangements) in build_backends(&store) {
            for (shards, retriever) in arrangements {
                let single: Vec<Vec<Hit>> =
                    queries.chunks(DIM).map(|q| retriever.search(q, K)).collect();
                let batched = retriever.search_batch(&queries, K);
                for (mode, lists) in [("single", &single), ("batch", &batched)] {
                    let recall = recall_against(&oracle, lists);
                    assert!(
                        recall >= gate(format),
                        "{} {backend} shards={shards} {mode}: recall@{K} {recall:.4} \
                         below gate {:.2}",
                        format.name(),
                        gate(format)
                    );
                }
                // single and batched answers agree bitwise: the batch path
                // is a fan-out over the same kernel, not a different one
                for (qi, (a, b)) in single.iter().zip(&batched).enumerate() {
                    assert_bitwise(
                        a,
                        b,
                        &format!("{} {backend} shards={shards} q={qi}", format.name()),
                    );
                }
            }
        }
    }
}

#[test]
fn quantized_search_is_bitwise_deterministic_across_builds() {
    let data = unit_cloud(ROWS, 0xde7);
    let queries = unit_cloud(N_QUERIES, 0xde8);
    let f32_store = Arc::new(EmbeddingStore::from_vec(data, DIM));
    for format in [RowFormat::F16, RowFormat::I8] {
        // two fully independent quantize → build → search pipelines
        let run = || -> Vec<Vec<Vec<Hit>>> {
            let store = Arc::new(f32_store.quantize(format));
            build_backends(&store)
                .iter()
                .flat_map(|(_, arrangements)| {
                    arrangements
                        .iter()
                        .map(|(_, r)| r.search_batch(&queries, K))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.len(), b.len());
        for (ai, bi) in a.iter().zip(&b) {
            for (qi, (x, y)) in ai.iter().zip(bi).enumerate() {
                assert_bitwise(x, y, &format!("{} rerun q={qi}", format.name()));
            }
        }
    }
}

#[test]
fn mmap_backing_is_bitwise_identical_to_owned_for_every_backend() {
    let data = unit_cloud(ROWS, 0x3a9);
    let queries = unit_cloud(N_QUERIES, 0x3aa);
    let f32_store = EmbeddingStore::from_vec(data, DIM);
    let dir = std::env::temp_dir()
        .join(format!("unimatch_quant_diff_mmap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");

    for format in RowFormat::ALL {
        let source = if format == RowFormat::F32 {
            f32_store.clone()
        } else {
            f32_store.quantize(format)
        };
        let path = dir.join(format!("store.{}.table", format.name()));
        write_table(&source, 0xfeed, &path).expect("write table");
        let (owned, _) = open_table(&path, false).expect("open owned");
        let (mapped, _) = open_table(&path, true).expect("open mmap");
        assert_eq!(owned.backing(), StoreBacking::Owned);
        assert_eq!(mapped.backing(), StoreBacking::Mmap);

        let owned = Arc::new(owned);
        let mapped = Arc::new(mapped);
        // scores agree bit-for-bit row by row...
        for (qi, q) in queries.chunks(DIM).enumerate() {
            for r in 0..ROWS {
                assert_eq!(
                    owned.score_row(q, r).to_bits(),
                    mapped.score_row(q, r).to_bits(),
                    "{} q={qi} row={r}: backings disagree",
                    format.name()
                );
            }
        }
        // ...and so does every backend built over each backing (same
        // build seeds: identical decoded values force identical indexes)
        let a = build_backends(&owned);
        let b = build_backends(&mapped);
        for ((backend, arr_a), (_, arr_b)) in a.iter().zip(&b) {
            for ((shards, ra), (_, rb)) in arr_a.iter().zip(arr_b) {
                let la = ra.search_batch(&queries, K);
                let lb = rb.search_batch(&queries, K);
                for (qi, (x, y)) in la.iter().zip(&lb).enumerate() {
                    assert_bitwise(
                        x,
                        y,
                        &format!("{} {backend} shards={shards} q={qi}", format.name()),
                    );
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
