//! Property suite for the quantized row codecs: encode→decode error
//! bounds for the f16 and per-row-affine i8 encodings, scale/zero-point
//! edge cases, and a dequant-dot-vs-f32-dot tolerance oracle under
//! seeded random rows. These are the *analytic* guarantees the
//! differential suite's recall gates rest on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_ann::{
    f16_to_f32, f32_to_f16, i8_decode, i8_encode, i8_row_params, EmbeddingStore, RowFormat,
};

const DIM: usize = 16;

fn unit_rows(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * DIM);
    for _ in 0..n {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

// ---------------------------------------------------------------------------
// f16
// ---------------------------------------------------------------------------

#[test]
fn f16_round_trip_is_exact_on_representable_values() {
    // every binary16 value is exactly representable in f32, so a decode →
    // encode cycle over ALL 2^16 bit patterns must be the identity
    for bits in 0u16..=u16::MAX {
        let x = f16_to_f32(bits);
        if x.is_nan() {
            assert!(f16_to_f32(f32_to_f16(x)).is_nan(), "NaN-ness lost for {bits:#06x}");
            continue;
        }
        assert_eq!(
            f32_to_f16(x),
            bits,
            "decode({bits:#06x}) = {x} did not encode back to itself"
        );
    }
}

#[test]
fn f16_round_trip_error_is_half_ulp_bounded() {
    // normal range: round-to-nearest gives relative error <= 2^-11
    let mut rng = StdRng::seed_from_u64(0xf16);
    for _ in 0..20_000 {
        let x: f32 = rng.gen_range(-2.0f32..2.0);
        let back = f16_to_f32(f32_to_f16(x));
        if x.abs() >= f16_to_f32(0x0400) {
            assert!(
                (back - x).abs() <= x.abs() * (1.0 / 2048.0),
                "{x} -> {back}: relative error beyond 2^-11"
            );
        } else {
            // subnormal range: absolute error bounded by half the smallest
            // subnormal step, 2^-24 / 2
            assert!((back - x).abs() <= 2.0f32.powi(-25), "{x} -> {back}");
        }
    }
}

#[test]
fn f16_edge_cases() {
    // signed zeros survive with their sign bit
    assert_eq!(f32_to_f16(0.0), 0x0000);
    assert_eq!(f32_to_f16(-0.0), 0x8000);
    // largest finite half
    assert_eq!(f16_to_f32(0x7bff), 65504.0);
    assert_eq!(f32_to_f16(65504.0), 0x7bff);
    // beyond the largest finite half: overflow to infinity
    assert_eq!(f32_to_f16(65520.0), 0x7c00);
    assert_eq!(f32_to_f16(f32::MAX), 0x7c00);
    assert_eq!(f32_to_f16(f32::MIN), 0xfc00);
    // underflow to (signed) zero
    assert_eq!(f32_to_f16(1e-10), 0x0000);
    assert_eq!(f32_to_f16(-1e-10), 0x8000);
    // ties round to even: 1 + 2^-11 is halfway between 1.0 and the next
    // representable half (1 + 2^-10) — the even mantissa (1.0) wins
    assert_eq!(f32_to_f16(1.0 + 2.0f32.powi(-11)), f32_to_f16(1.0));
    // just above the tie rounds up
    assert_eq!(
        f16_to_f32(f32_to_f16(1.0 + 1.5 * 2.0f32.powi(-11))),
        1.0 + 2.0f32.powi(-10)
    );
}

// ---------------------------------------------------------------------------
// i8
// ---------------------------------------------------------------------------

#[test]
fn i8_round_trip_error_is_half_step_bounded() {
    let mut rng = StdRng::seed_from_u64(0x18);
    for _ in 0..500 {
        let row: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-3.0f32..3.0)).collect();
        let params = i8_row_params(&row);
        let [scale, zero] = params;
        assert!(scale >= 0.0 && scale.is_finite());
        assert!(zero.is_finite());
        for &x in &row {
            let back = i8_decode(i8_encode(x, params), params);
            // nearest-code rounding: at most half a quantization step,
            // with a little slack for the decode's own fp rounding
            let bound = scale * 0.5 + scale * 1e-5 + 1e-12;
            assert!((back - x).abs() <= bound, "{x} -> {back} (scale {scale})");
        }
        // the row extremes pin the code range: min sits exactly at code 0
        let min = row.iter().copied().fold(f32::INFINITY, f32::min);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        assert_eq!(i8_encode(min, params), 0);
        assert_eq!(i8_decode(0, params), min, "zero-point must decode exactly");
        assert_eq!(i8_encode(max, params), 255);
    }
}

#[test]
fn i8_edge_case_rows() {
    // all-zero row: scale collapses, every value decodes to exactly 0
    let zeroes = [0.0f32; DIM];
    let p = i8_row_params(&zeroes);
    assert_eq!(p, [0.0, 0.0]);
    assert_eq!(i8_decode(i8_encode(0.0, p), p), 0.0);

    // constant row: exact round trip through the zero-point
    let constant = [0.37f32; DIM];
    let p = i8_row_params(&constant);
    assert_eq!(p[0], 0.0, "constant row has zero scale");
    assert_eq!(p[1], 0.37);
    for &x in &constant {
        assert_eq!(i8_decode(i8_encode(x, p), p), x);
    }

    // single-value difference: the two poles land exactly on codes 0/255
    let mut two = [1.5f32; DIM];
    two[3] = -2.5;
    let p = i8_row_params(&two);
    assert_eq!(i8_encode(-2.5, p), 0);
    assert_eq!(i8_encode(1.5, p), 255);
    assert_eq!(i8_decode(0, p), -2.5);

    // ±extreme magnitudes: the overflow-safe `max/255 - min/255` form
    // keeps the *params* finite even when `max - min` itself overflows
    // (the naive scale would be inf and poison every decode)
    let extremes = [f32::MAX, f32::MIN, 0.0, 1.0]
        .into_iter()
        .cycle()
        .take(DIM)
        .collect::<Vec<_>>();
    let p = i8_row_params(&extremes);
    assert!(p[0].is_finite() && p[0] > 0.0);
    assert_eq!(p[1], f32::MIN);
    assert_eq!(i8_encode(f32::MIN, p), 0);
    assert_eq!(i8_encode(f32::MAX, p), 255);
    assert_eq!(i8_decode(0, p), f32::MIN, "the zero-point decode stays exact");

    // large-but-representable spread: every decode stays finite and the
    // poles land exactly on the code range ends
    let wide = [1e30f32, -1e30, 0.0, 1.0]
        .into_iter()
        .cycle()
        .take(DIM)
        .collect::<Vec<_>>();
    let p = i8_row_params(&wide);
    for &x in &wide {
        assert!(i8_decode(i8_encode(x, p), p).is_finite());
    }
    assert_eq!(i8_encode(-1e30, p), 0);
    assert_eq!(i8_encode(1e30, p), 255);
}

#[test]
#[should_panic(expected = "non-finite")]
fn i8_rejects_nan_rows() {
    let mut row = [0.5f32; DIM];
    row[7] = f32::NAN;
    let _ = i8_row_params(&row);
}

#[test]
#[should_panic(expected = "non-finite")]
fn i8_rejects_infinite_rows() {
    let mut row = [0.5f32; DIM];
    row[0] = f32::INFINITY;
    let _ = i8_row_params(&row);
}

#[test]
#[should_panic(expected = "non-finite")]
fn quantize_rejects_non_finite_stores() {
    let mut data = vec![0.25f32; 4 * DIM];
    data[9] = f32::NEG_INFINITY;
    let store = EmbeddingStore::from_vec(data, DIM);
    let _ = store.quantize(RowFormat::I8);
}

// ---------------------------------------------------------------------------
// store-level decode + fused dequant-dot
// ---------------------------------------------------------------------------

#[test]
fn store_decode_matches_the_scalar_codecs() {
    let data = unit_rows(60, 0xdec0);
    let store = EmbeddingStore::from_vec(data.clone(), DIM);

    let f16 = store.quantize(RowFormat::F16);
    for r in 0..60 {
        let row = &data[r * DIM..(r + 1) * DIM];
        for (i, (&want_src, got)) in row.iter().zip(f16.decode_row(r).iter()).enumerate() {
            assert_eq!(
                got.to_bits(),
                f16_to_f32(f32_to_f16(want_src)).to_bits(),
                "f16 row {r} col {i}"
            );
        }
    }

    let i8s = store.quantize(RowFormat::I8);
    for r in 0..60 {
        let row = &data[r * DIM..(r + 1) * DIM];
        let params = i8_row_params(row);
        assert_eq!(i8s.row_params(r), params, "row {r} params drift");
        for (i, (&want_src, got)) in row.iter().zip(i8s.decode_row(r).iter()).enumerate() {
            assert_eq!(
                got.to_bits(),
                i8_decode(i8_encode(want_src, params), params).to_bits(),
                "i8 row {r} col {i}"
            );
        }
    }
}

#[test]
fn dequant_dot_tracks_the_f32_oracle() {
    let rows = 200;
    let data = unit_rows(rows, 0x5c03e);
    let queries = unit_rows(32, 0x9e4);
    let store = EmbeddingStore::from_vec(data, DIM);

    // analytic worst cases over unit rows/queries (dim 16):
    //   f16: per-value relative error 2^-11 on |v| <= 1, summed through
    //        |q|_1 <= sqrt(16) = 4        -> ~2e-3; gate at 1e-2
    //   i8 : per-value error <= scale/2 <= (2/255)/2, same |q|_1 bound
    //        -> ~1.6e-2; gate at 5e-2
    for (format, tol) in [(RowFormat::F16, 1e-2f32), (RowFormat::I8, 5e-2f32)] {
        let q = store.quantize(format);
        for query in queries.chunks(DIM) {
            for r in 0..rows {
                let exact = store.score_row(query, r);
                let approx = q.score_row(query, r);
                assert!(
                    (exact - approx).abs() <= tol,
                    "{}: row {r}: |{exact} - {approx}| > {tol}",
                    format.name()
                );
                // the fused kernel must agree with scoring the decoded row
                // through the f32 path — same values, same add order
                let decoded = q.decode_row(r);
                let reference: f32 =
                    query.iter().zip(decoded.iter()).map(|(a, b)| a * b).fold(0.0, |s, x| s + x);
                let via_decode = match format {
                    // the i8 kernel fuses the affine decode into the
                    // multiply-add, so equality is numerical, not bitwise
                    RowFormat::I8 => (approx - reference).abs() <= 1e-5,
                    _ => approx.to_bits() == reference.to_bits(),
                };
                assert!(via_decode, "{}: row {r}: fused {approx} vs decoded {reference}", format.name());
            }
        }
    }
}

#[test]
fn quantized_scores_are_deterministic_across_runs() {
    let data = unit_rows(100, 0xd8);
    let queries = unit_rows(8, 0xd9);
    let store = EmbeddingStore::from_vec(data, DIM);
    for format in [RowFormat::F16, RowFormat::I8] {
        let a = store.quantize(format);
        let b = store.quantize(format);
        for query in queries.chunks(DIM) {
            for r in 0..100 {
                assert_eq!(
                    a.score_row(query, r).to_bits(),
                    b.score_row(query, r).to_bits(),
                    "{}: row {r}: independent quantizations must score bit-identically",
                    format.name()
                );
            }
        }
    }
}
