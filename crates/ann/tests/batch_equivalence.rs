//! `search_batch` must return exactly what per-query `search` returns, for
//! every index type, whether the batch runs inline or fans out over
//! threads.
//!
//! The parallel configuration is process-global, so everything lives in a
//! single `#[test]` — cargo runs test functions of one binary concurrently
//! and two functions installing different configurations would race.

use rand::{Rng, SeedableRng};
use unimatch_ann::{
    AnnIndex, BruteForceIndex, Hit, HnswConfig, HnswIndex, IvfConfig, IvfIndex,
};
use unimatch_parallel::Parallelism;

fn unit_vectors(n: usize, dim: usize, rng: &mut impl Rng) -> Vec<f32> {
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
        data.extend(v.iter().map(|x| x / norm));
    }
    data
}

fn assert_hits_equal(a: &[Vec<Hit>], b: &[Vec<Hit>], index_name: &str) {
    assert_eq!(a.len(), b.len(), "{index_name}: result count mismatch");
    for (q, (ha, hb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ha.len(), hb.len(), "{index_name}: query {q} hit count");
        for (x, y) in ha.iter().zip(hb) {
            assert_eq!(x.id, y.id, "{index_name}: query {q} id mismatch");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "{index_name}: query {q} score mismatch"
            );
        }
    }
}

#[test]
fn search_batch_matches_per_query_search() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xba7c4);
    let (n, dim, nq, k) = (400, 12, 37, 8);
    let data = unit_vectors(n, dim, &mut rng);
    let queries = unit_vectors(nq, dim, &mut rng);

    let bf = BruteForceIndex::new(data.clone(), dim);
    let ivf = IvfIndex::build(data.clone(), dim, IvfConfig::default(), &mut rng);
    let hnsw = HnswIndex::build(data, dim, HnswConfig::default(), &mut rng);

    for (name, index) in
        [("bruteforce", &bf as &dyn AnnIndex), ("ivf", &ivf), ("hnsw", &hnsw)]
    {
        let per_query: Vec<Vec<Hit>> = (0..nq)
            .map(|i| index.search(&queries[i * dim..(i + 1) * dim], k))
            .collect();

        // inline path: the whole batch is under the default work threshold
        // only for tiny inputs, so force both decisions explicitly
        Parallelism::sequential().install_global();
        let sequential = index.search_batch(&queries, k);
        assert_hits_equal(&per_query, &sequential, name);

        // forced fan-out: 4 workers, threshold 1 → every batch splits
        Parallelism::threads(4).with_min_work(1).install_global();
        let parallel = index.search_batch(&queries, k);
        assert_hits_equal(&per_query, &parallel, name);

        Parallelism::auto().install_global();
    }

    // ragged batches are rejected
    let bad = std::panic::catch_unwind(|| bf.search_batch(&queries[..dim + 1], k));
    assert!(bad.is_err(), "ragged query batch must panic");

    // empty batch is a no-op
    assert!(bf.search_batch(&[], k).is_empty());
}
