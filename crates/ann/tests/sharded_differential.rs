//! Differential suite: a [`ShardedRetriever`] must return **bitwise**
//! identical results to the unsharded search it partitions.
//!
//! For the exact backend that guarantee is unconditional (see the
//! exactness argument in `unimatch_ann::sharded`). For HNSW and IVF it
//! holds once the backend is configured to be effectively exact —
//! `ef_search ≥ rows` walks the whole (connected) graph, `nprobe =
//! nlist` scans every inverted list — because then both arrangements
//! reduce to the same canonical top-k over the same scores. The matrix
//! here pins that contract across shard counts, k regimes (0, below /
//! above shard size, above corpus size), tie layouts straddling shard
//! boundaries, and id-mapped stores.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_ann::{
    BruteForceIndex, EmbeddingStore, Hit, HnswConfig, HnswIndex, IvfConfig, IvfIndex, Retriever,
    ShardedRetriever,
};

const DIM: usize = 8;
/// Deliberately not divisible by any tested shard count, so row-range
/// boundaries land unevenly.
const ROWS: usize = 61;
const SHARD_COUNTS: [usize; 3] = [1, 2, 7];
/// 0, tiny, bigger than a 7-way shard (~9 rows), exactly the corpus,
/// past the corpus.
const KS: [usize; 5] = [0, 3, 20, ROWS, ROWS + 40];

fn unit_cloud(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * DIM);
    for _ in 0..n {
        let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

fn assert_bitwise(a: &[Hit], b: &[Hit], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: hit counts differ");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.id, y.id, "{context}: id diverges at rank {i}");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{context}: score bits diverge at rank {i} (id {})",
            x.id
        );
    }
}

/// Runs the full (shard count × k) matrix for one backend pair: the
/// unsharded index and a factory for the sharded one. Both `search` and
/// `search_batch` are compared, so the shard-fan-out batch path is
/// exercised too.
fn run_matrix(
    store: &Arc<EmbeddingStore>,
    whole: &dyn Retriever,
    mut sharded_for: impl FnMut(usize) -> ShardedRetriever,
    backend: &str,
) {
    let queries: Vec<f32> = (0..5).flat_map(|q| store.row(q * 11).to_vec()).collect();
    for n in SHARD_COUNTS {
        let sharded = sharded_for(n);
        assert_eq!(sharded.shards(), n, "{backend}: wrong fan-out");
        assert_eq!(sharded.backend(), whole.backend(), "{backend}: label drift");
        for k in KS {
            for (qi, q) in queries.chunks(DIM).enumerate() {
                let context = format!("{backend} n={n} k={k} q={qi}");
                assert_bitwise(&whole.search(q, k), &sharded.search(q, k), &context);
            }
            let a = whole.search_batch(&queries, k);
            let b = sharded.search_batch(&queries, k);
            for (qi, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_bitwise(x, y, &format!("{backend} batch n={n} k={k} q={qi}"));
            }
        }
    }
}

#[test]
fn exact_backend_is_bitwise_identical_sharded() {
    let store = Arc::new(EmbeddingStore::from_vec(unit_cloud(ROWS, 0xacc), DIM));
    let whole = BruteForceIndex::over(store.clone());
    run_matrix(
        &store,
        &whole,
        |n| ShardedRetriever::build(&store, n, |view| Box::new(BruteForceIndex::over(view))),
        "bruteforce",
    );
}

#[test]
fn hnsw_effectively_exact_is_bitwise_identical_sharded() {
    let store = Arc::new(EmbeddingStore::from_vec(unit_cloud(ROWS, 0xbee), DIM));
    // ef ≥ rows: the layer-0 beam admits every reachable node, so a
    // connected graph returns the true canonical top-k regardless of its
    // (rng-dependent) structure — which is what makes the unsharded and
    // per-shard graphs comparable at all.
    let cfg = HnswConfig { m: 16, ef_construction: 128, ef_search: ROWS };
    let whole = HnswIndex::build_over(store.clone(), cfg, &mut StdRng::seed_from_u64(1));
    run_matrix(
        &store,
        &whole,
        |n| {
            let mut rng = StdRng::seed_from_u64(2);
            ShardedRetriever::build(&store, n, |view| {
                Box::new(HnswIndex::build_over(view, cfg, &mut rng))
            })
        },
        "hnsw",
    );
}

#[test]
fn ivf_effectively_exact_is_bitwise_identical_sharded() {
    let store = Arc::new(EmbeddingStore::from_vec(unit_cloud(ROWS, 0xcafe), DIM));
    // nprobe = nlist scans every list, i.e. every row exactly once
    // (the lists partition the corpus), collapsing IVF to an exact scan.
    let cfg = IvfConfig { nlist: 8, nprobe: 8, kmeans_iters: 4 };
    let whole = IvfIndex::build_over(store.clone(), cfg, &mut StdRng::seed_from_u64(3));
    run_matrix(
        &store,
        &whole,
        |n| {
            let mut rng = StdRng::seed_from_u64(4);
            ShardedRetriever::build(&store, n, |view| {
                Box::new(IvfIndex::build_over(view, cfg, &mut rng))
            })
        },
        "ivf",
    );
}

/// Blocks of identical rows placed so every tested shard count cuts
/// through at least one block: the canonical order then demands the
/// lowest global ids win, which only survives sharding if per-shard
/// lists translate ids correctly *and* the merge breaks ties by id.
#[test]
fn ties_straddling_shard_boundaries_resolve_to_lowest_ids() {
    let mut data = Vec::with_capacity(ROWS * DIM);
    let mut rng = StdRng::seed_from_u64(0xdead);
    for r in 0..ROWS {
        // Rows 5..15 and 28..40 are constant blocks (they straddle the
        // 2-way cut at 30 and the 7-way cuts at 8 and 34); the rest are
        // distinct filler with lower scores against the probe query.
        if (5..15).contains(&r) {
            data.extend_from_slice(&[1.0; DIM].map(|x: f32| x / (DIM as f32).sqrt()));
        } else if (28..40).contains(&r) {
            let mut v = [1.0; DIM];
            v[0] = -1.0;
            let norm = (DIM as f32).sqrt();
            data.extend(v.iter().map(|x| x / norm));
        } else {
            let v: Vec<f32> = (0..DIM).map(|_| rng.gen_range(-0.1f32..0.1)).collect();
            let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
            data.extend(v.into_iter().map(|x| x / norm));
        }
    }
    let store = Arc::new(EmbeddingStore::from_vec(data, DIM));
    let whole = BruteForceIndex::over(store.clone());
    let probe: Vec<f32> = [1.0; DIM].iter().map(|x| x / (DIM as f32).sqrt()).collect();
    for n in SHARD_COUNTS {
        let sharded =
            ShardedRetriever::build(&store, n, |view| Box::new(BruteForceIndex::over(view)));
        for k in [4, 10, 25] {
            let a = whole.search(&probe, k);
            let b = sharded.search(&probe, k);
            assert_bitwise(&a, &b, &format!("ties n={n} k={k}"));
        }
        // the first block ties at the top: ranks 0..4 must be ids 5..9
        let ids: Vec<u32> = sharded.search(&probe, 5).iter().map(|h| h.id).collect();
        assert_eq!(ids, vec![5, 6, 7, 8, 9], "n={n}: tied block must yield lowest ids");
    }
}

/// Retriever hits carry *row* ids; external-id translation happens in
/// the serving layer against the parent store's id map. Sharding must
/// keep row ids global (so that translation still lands on the right
/// external id) even though shard views drop the map.
#[test]
fn id_mapped_stores_translate_identically_sharded() {
    let data = unit_cloud(ROWS, 0x1d);
    let ids: Vec<u32> = (0..ROWS as u32).map(|r| 1_000 + 7 * r).collect();
    let store = Arc::new(EmbeddingStore::with_ids(&data, DIM, ids));
    let whole = BruteForceIndex::over(store.clone());
    for n in SHARD_COUNTS {
        let sharded =
            ShardedRetriever::build(&store, n, |view| Box::new(BruteForceIndex::over(view)));
        for (qi, q) in data.chunks(DIM).take(4).enumerate() {
            let a = whole.search(q, 9);
            let b = sharded.search(q, 9);
            assert_bitwise(&a, &b, &format!("idmap n={n} q={qi}"));
            let translate = |hits: &[Hit]| -> Vec<u32> {
                hits.iter().map(|h| store.id_of_row(h.id as usize)).collect()
            };
            assert_eq!(translate(&a), translate(&b), "idmap n={n} q={qi}: external ids diverge");
            // sanity: the probe row itself ranks first and translates to
            // its own external id
            assert_eq!(translate(&b)[0], 1_000 + 7 * qi as u32, "idmap n={n} q={qi}");
        }
    }
}
