//! Differential tests: the approximate indexes (HNSW, IVF) against the
//! brute-force oracle on seeded corpora.
//!
//! Two contracts:
//! 1. **Recall** — at serving-grade parameters, recall@10 ≥ 0.95 against
//!    exact search.
//! 2. **Score fidelity** — every score an index returns must be *bitwise*
//!    equal to the exact dot product of the query with that row. The
//!    approximate indexes prune which rows get scored, never how a row is
//!    scored; any drift (reordered accumulation, fused ops) would break
//!    the serving layer's byte-identity guarantees.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_ann::{AnnIndex, BruteForceIndex, HnswConfig, HnswIndex, IvfConfig, IvfIndex};

/// Seeded row-major unit vectors.
fn unit_cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(n * dim);
    for _ in 0..n {
        let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
        data.extend(v.into_iter().map(|x| x / norm));
    }
    data
}

/// The exact score, computed with the same `iter().zip().sum()` loop the
/// indexes use — the bitwise reference.
fn exact_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Mean recall@k of `index` against `oracle` over all `queries`, while
/// asserting bitwise score fidelity and sorted output for every hit.
fn recall_and_fidelity(
    index: &dyn AnnIndex,
    oracle: &BruteForceIndex,
    data: &[f32],
    queries: &[f32],
    dim: usize,
    k: usize,
    name: &str,
) -> f64 {
    let mut recalled = 0usize;
    let mut total = 0usize;
    for (qi, q) in queries.chunks(dim).enumerate() {
        let exact: std::collections::HashSet<u32> =
            oracle.search(q, k).iter().map(|h| h.id).collect();
        let hits = index.search(q, k);
        assert!(hits.len() <= k, "{name} query {qi}: more than k hits");
        assert!(
            hits.windows(2).all(|w| w[0].score >= w[1].score),
            "{name} query {qi}: hits not sorted descending"
        );
        let mut seen = std::collections::HashSet::new();
        for h in &hits {
            assert!(seen.insert(h.id), "{name} query {qi}: duplicate id {}", h.id);
            let row = &data[h.id as usize * dim..(h.id as usize + 1) * dim];
            let reference = exact_dot(q, row);
            assert_eq!(
                h.score.to_bits(),
                reference.to_bits(),
                "{name} query {qi}: score for id {} is {} but the exact dot product is {} — \
                 returned scores must be bitwise-exact",
                h.id,
                h.score,
                reference
            );
        }
        recalled += hits.iter().filter(|h| exact.contains(&h.id)).count();
        total += k;
    }
    recalled as f64 / total as f64
}

#[test]
fn hnsw_matches_bruteforce_with_high_recall_and_exact_scores() {
    let (n, dim, k) = (3_000, 16, 10);
    let data = unit_cloud(n, dim, 11);
    let queries = unit_cloud(60, dim, 12);
    let oracle = BruteForceIndex::new(data.clone(), dim);
    let mut rng = StdRng::seed_from_u64(13);
    let hnsw = HnswIndex::build(
        data.clone(),
        dim,
        HnswConfig { m: 16, ef_construction: 128, ef_search: 100 },
        &mut rng,
    );
    let recall = recall_and_fidelity(&hnsw, &oracle, &data, &queries, dim, k, "hnsw");
    assert!(recall >= 0.95, "hnsw recall@{k} = {recall:.3}, needs >= 0.95");
}

#[test]
fn ivf_matches_bruteforce_with_high_recall_and_exact_scores() {
    let (n, dim, k) = (3_000, 16, 10);
    let data = unit_cloud(n, dim, 21);
    let queries = unit_cloud(60, dim, 22);
    let oracle = BruteForceIndex::new(data.clone(), dim);
    let mut rng = StdRng::seed_from_u64(23);
    let ivf = IvfIndex::build(
        data.clone(),
        dim,
        IvfConfig { nlist: 16, nprobe: 12, kmeans_iters: 10 },
        &mut rng,
    );
    let recall = recall_and_fidelity(&ivf, &oracle, &data, &queries, dim, k, "ivf");
    assert!(recall >= 0.95, "ivf recall@{k} = {recall:.3}, needs >= 0.95");
}

#[test]
fn bruteforce_scores_are_the_exact_dot_products() {
    // The oracle itself must satisfy the fidelity contract (recall is
    // trivially 1.0 against itself).
    let (n, dim, k) = (500, 8, 10);
    let data = unit_cloud(n, dim, 31);
    let queries = unit_cloud(25, dim, 32);
    let oracle = BruteForceIndex::new(data.clone(), dim);
    let recall = recall_and_fidelity(&oracle, &oracle, &data, &queries, dim, k, "bruteforce");
    assert_eq!(recall, 1.0);
}

#[test]
fn search_batch_is_identical_to_sequential_search() {
    // The parallel batched path must return exactly what per-query calls
    // return, for every index type.
    let (n, dim, k) = (800, 16, 10);
    let data = unit_cloud(n, dim, 41);
    let queries = unit_cloud(32, dim, 42);
    let mut rng = StdRng::seed_from_u64(43);
    let bf = BruteForceIndex::new(data.clone(), dim);
    let hnsw = HnswIndex::build(data.clone(), dim, HnswConfig::default(), &mut rng);
    let ivf = IvfIndex::build(data, dim, IvfConfig::default(), &mut rng);
    let indexes: [(&str, &dyn AnnIndex); 3] = [("bruteforce", &bf), ("hnsw", &hnsw), ("ivf", &ivf)];
    for (name, ix) in indexes {
        let batched = ix.search_batch(&queries, k);
        for (qi, q) in queries.chunks(dim).enumerate() {
            let sequential = ix.search(q, k);
            assert_eq!(batched[qi].len(), sequential.len(), "{name} query {qi}");
            for (b, s) in batched[qi].iter().zip(&sequential) {
                assert_eq!((b.id, b.score.to_bits()), (s.id, s.score.to_bits()), "{name} query {qi}");
            }
        }
    }
}
