//! Differential suite for the retrieval engine: the blocked exact kernel
//! and every [`Retriever`] backend against a naive stable-sort oracle.
//!
//! The pre-refactor call sites (batch inference, eval ranking pools, the
//! serving handlers) each carried their own `dot` + sort/heap loop with
//! one shared contract: scores are the sequential `iter().zip().sum()`
//! dot product, ranking is score-descending with ties broken by lowest
//! id. This suite pins that contract onto the unified engine — any
//! accumulation reorder, tile-boundary bug, or tie-break drift fails a
//! bitwise assertion here.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use unimatch_ann::{
    dot, top_k_exact, BruteForceIndex, EmbeddingStore, HnswConfig, HnswIndex, IvfConfig,
    IvfIndex, Retriever, STORE_ALIGN,
};

/// Seeded row-major vectors (not normalized — exercises ties less, so
/// tie cases construct duplicates explicitly).
fn cloud(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// The oracle every pre-refactor call site reduced to: score all targets
/// with the sequential dot, stable-sort descending (stable sort + index
/// order ⇒ ties keep the lowest id), truncate to k.
fn oracle_top_k(query: &[f32], targets: &[f32], dim: usize, k: usize) -> Vec<(u32, f32)> {
    let mut scored: Vec<(u32, f32)> = targets
        .chunks(dim)
        .enumerate()
        .map(|(i, row)| (i as u32, query.iter().zip(row).map(|(x, y)| x * y).sum()))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    scored.truncate(k);
    scored
}

#[test]
fn kernel_matches_stable_sort_oracle_bit_for_bit() {
    // Sizes straddle the kernel's query-block (128) and target-tile (512)
    // boundaries so every tiling edge case is crossed.
    for (nq, nt, dim, k) in [(1, 7, 4, 3), (33, 600, 16, 10), (130, 520, 8, 25), (257, 1, 5, 4)] {
        let queries = cloud(nq, dim, nq as u64);
        let targets = cloud(nt, dim, nt as u64 + 1);
        let got = top_k_exact(&queries, &targets, dim, k);
        assert_eq!(got.len(), nq);
        for (qi, q) in queries.chunks(dim).enumerate() {
            let want = oracle_top_k(q, &targets, dim, k);
            assert_eq!(got[qi].len(), want.len(), "nq={nq} nt={nt} query {qi}");
            for (h, (id, score)) in got[qi].iter().zip(&want) {
                assert_eq!(
                    (h.id, h.score.to_bits()),
                    (*id, score.to_bits()),
                    "nq={nq} nt={nt} query {qi}: kernel diverged from the oracle"
                );
            }
        }
    }
}

#[test]
fn every_backend_scores_bitwise_like_the_single_dot() {
    let (n, dim, k) = (1_200, 12, 15);
    let data = cloud(n, dim, 7);
    let queries = cloud(20, dim, 8);
    let store = Arc::new(EmbeddingStore::from_rows(&data, dim));
    let mut rng = StdRng::seed_from_u64(9);
    let bf = BruteForceIndex::over(store.clone());
    let hnsw = HnswIndex::build_over(store.clone(), HnswConfig::default(), &mut rng);
    let ivf = IvfIndex::build_over(store.clone(), IvfConfig::default(), &mut rng);
    let backends: [&dyn Retriever; 3] = [&bf, &hnsw, &ivf];
    for index in backends {
        let name = index.backend();
        for (qi, q) in queries.chunks(dim).enumerate() {
            for h in index.search(q, k) {
                let want = dot(q, store.row(h.id as usize));
                assert_eq!(
                    h.score.to_bits(),
                    want.to_bits(),
                    "{name} query {qi} id {}: score must be the canonical dot",
                    h.id
                );
            }
        }
    }
}

#[test]
fn exact_backend_equals_oracle_ids_and_scores() {
    let (n, dim, k) = (700, 16, 12);
    let data = cloud(n, dim, 17);
    let queries = cloud(40, dim, 18);
    let bf = BruteForceIndex::over(Arc::new(EmbeddingStore::from_rows(&data, dim)));
    let batched = bf.search_batch(&queries, k);
    for (qi, q) in queries.chunks(dim).enumerate() {
        let want = oracle_top_k(q, &data, dim, k);
        let per_query = bf.search(q, k);
        for (got, (id, score)) in batched[qi].iter().zip(&want) {
            assert_eq!((got.id, got.score.to_bits()), (*id, score.to_bits()), "batched {qi}");
        }
        for (got, (id, score)) in per_query.iter().zip(&want) {
            assert_eq!((got.id, got.score.to_bits()), (*id, score.to_bits()), "per-query {qi}");
        }
    }
}

#[test]
fn tied_scores_keep_the_lowest_ids_on_the_exact_path() {
    // Four copies of the same row: any k < 4 must keep the lowest ids, in
    // ascending order — the stable-sort contract the old call sites had.
    let dim = 6;
    let row = cloud(1, dim, 77);
    let mut data = Vec::new();
    for _ in 0..4 {
        data.extend_from_slice(&row);
    }
    data.extend_from_slice(&cloud(5, dim, 78)); // distinct tail
    let query = row.clone();
    let bf = BruteForceIndex::over(Arc::new(EmbeddingStore::from_rows(&data, dim)));
    let hits = bf.search(&query, 3);
    let ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
    assert_eq!(ids, vec![0, 1, 2], "ties must resolve to the lowest ids");
    let batched = bf.search_batch(&query, 3);
    let ids: Vec<u32> = batched[0].iter().map(|h| h.id).collect();
    assert_eq!(ids, vec![0, 1, 2], "batched path must tie-break identically");
}

#[test]
fn k_larger_than_corpus_and_k_zero_are_total() {
    let dim = 4;
    let data = cloud(3, dim, 5);
    let queries = cloud(2, dim, 6);
    let store = Arc::new(EmbeddingStore::from_rows(&data, dim));
    let mut rng = StdRng::seed_from_u64(4);
    let bf = BruteForceIndex::over(store.clone());
    let hnsw = HnswIndex::build_over(store.clone(), HnswConfig::default(), &mut rng);
    let ivf = IvfIndex::build_over(store, IvfConfig::default(), &mut rng);
    let backends: [&dyn Retriever; 3] = [&bf, &hnsw, &ivf];
    for index in backends {
        let name = index.backend();
        // k beyond the corpus returns the whole corpus, ranked
        let hits = index.search(&queries[..dim], 50);
        assert_eq!(hits.len(), 3, "{name}: k > corpus returns every row");
        assert!(hits.windows(2).all(|w| w[0].score >= w[1].score), "{name}: sorted");
        // k == 0 returns nothing, everywhere
        assert!(index.search(&queries[..dim], 0).is_empty(), "{name}: k=0");
        let batched = index.search_batch(&queries, 0);
        assert!(batched.iter().all(Vec::is_empty), "{name}: batched k=0");
    }
    // the kernel agrees on both edges
    let all = top_k_exact(&queries, &data, dim, 50);
    assert!(all.iter().all(|h| h.len() == 3));
    assert!(top_k_exact(&queries, &data, dim, 0).iter().all(Vec::is_empty));
}

#[test]
fn store_rows_are_aligned_and_id_mapped() {
    let dim = 5;
    let data = cloud(8, dim, 91);
    let ids = vec![40u32, 7, 19, 3, 88, 52, 61, 14];
    let store = EmbeddingStore::with_ids(&data, dim, ids.clone());
    assert_eq!(store.as_slice().as_ptr() as usize % STORE_ALIGN, 0, "arena must be 32B-aligned");
    for (row, &id) in ids.iter().enumerate() {
        assert_eq!(store.id_of_row(row), id);
        assert_eq!(store.row_of_id(id), Some(row));
        assert_eq!(store.row(row), &data[row * dim..(row + 1) * dim]);
    }
    assert_eq!(store.row_of_id(999), None);
    // without an id map, ids are the row indexes
    let plain = EmbeddingStore::from_rows(&data, dim);
    assert_eq!(plain.id_of_row(3), 3);
    assert_eq!(plain.row_of_id(7), Some(7));
    assert_eq!(plain.row_of_id(8), None);
}

#[test]
fn all_backends_share_one_arena() {
    let dim = 8;
    let store = Arc::new(EmbeddingStore::from_rows(&cloud(300, dim, 33), dim));
    let mut rng = StdRng::seed_from_u64(34);
    let bf = BruteForceIndex::over(store.clone());
    let hnsw = HnswIndex::build_over(store.clone(), HnswConfig::default(), &mut rng);
    let ivf = IvfIndex::build_over(store.clone(), IvfConfig::default(), &mut rng);
    assert!(Arc::ptr_eq(bf.store(), &store), "bruteforce must not copy the arena");
    assert!(Arc::ptr_eq(hnsw.store(), &store), "hnsw must not copy the arena");
    assert!(Arc::ptr_eq(ivf.store(), &store), "ivf must not copy the arena");
}
