//! Property tests for the hand-rolled `unimatch_data::json` codec, which
//! backs model persistence and the HTTP API.
//!
//! The properties are driven by a seeded RNG (not proptest — the
//! workspace builds offline with no external test frameworks): thousands
//! of arbitrary nested documents are generated, encoded, reparsed, and
//! compared structurally. Numeric values are generated as `Json::Num`
//! only — the `F32` variant is a writer-side optimization that reparses
//! as `Num` by design, so it round-trips *numerically* but not
//! *structurally* (covered separately below).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use unimatch_data::json::Json;

/// An arbitrary string exercising every escape class the writer knows:
/// plain ASCII, quotes/backslashes, named escapes, raw control chars,
/// multi-byte unicode, and astral-plane codepoints (surrogate pairs in
/// `\u` form).
fn arbitrary_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..12usize);
    let mut s = String::new();
    for _ in 0..len {
        match rng.gen_range(0..8u32) {
            0 => s.push(rng.gen_range(b'a'..=b'z') as char),
            1 => s.push('"'),
            2 => s.push('\\'),
            3 => s.push(['\n', '\r', '\t'][rng.gen_range(0..3usize)]),
            4 => s.push(char::from_u32(rng.gen_range(1..0x20u32)).unwrap()),
            5 => s.push(['é', 'ß', '中', 'Ω'][rng.gen_range(0..4usize)]),
            6 => s.push(['😀', '🦀', '𝕏'][rng.gen_range(0..3usize)]),
            _ => s.push(rng.gen_range(b' '..=b'~') as char),
        }
    }
    s
}

/// An arbitrary finite `f64`. Rust's shortest-round-trip `Display` means
/// *any* finite double survives write → parse exactly.
fn arbitrary_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..4u32) {
        0 => rng.gen_range(-1_000_000i64..1_000_000) as f64,
        1 => rng.gen_range(-1.0f64..1.0),
        2 => rng.gen_range(-1.0f64..1.0) * 1e300,
        _ => rng.gen_range(-1.0f64..1.0) * 1e-300,
    }
}

/// An arbitrary document with bounded depth and size.
fn arbitrary_json(rng: &mut StdRng, depth: usize) -> Json {
    let variants: u32 = if depth == 0 { 4 } else { 6 };
    match rng.gen_range(0..variants) {
        0 => Json::Null,
        1 => Json::Bool(rng.gen_bool(0.5)),
        2 => Json::Num(arbitrary_number(rng)),
        3 => Json::Str(arbitrary_string(rng)),
        4 => {
            let n = rng.gen_range(0..5usize);
            Json::Arr((0..n).map(|_| arbitrary_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            Json::Obj(
                (0..n).map(|i| (format!("{}_{i}", arbitrary_string(rng)), arbitrary_json(rng, depth - 1))).collect(),
            )
        }
    }
}

#[test]
fn arbitrary_documents_round_trip_structurally() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for case in 0..2_000 {
        let doc = arbitrary_json(&mut rng, 6);
        let text = doc.to_string();
        let back = Json::parse(text.as_bytes())
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\ndoc: {text}"));
        assert_eq!(back, doc, "case {case}: round trip changed the document\ntext: {text}");
        // and the canonical form is a fixed point
        assert_eq!(back.to_string(), text, "case {case}: second encode differs");
    }
}

#[test]
fn f32_variant_round_trips_numerically_as_num() {
    // The writer-side F32 variant reparses as Num with the same value —
    // the documented contract for checkpoint floats.
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..2_000 {
        let x: f32 = rng.gen_range(-1.0e30f32..1.0e30);
        let text = Json::F32(x).to_string();
        let back = Json::parse(text.as_bytes()).expect("f32 text parses");
        assert_eq!(back.as_f32(), Some(x), "f32 {x} changed through {text}");
        assert!(matches!(back, Json::Num(_)), "parser must not invent F32");
    }
}

#[test]
fn non_finite_numbers_are_written_as_null_and_rejected_as_input() {
    for x in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        assert_eq!(Json::Num(x).to_string(), "null", "non-finite f64 must serialize as null");
    }
    for x in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
        assert_eq!(Json::F32(x).to_string(), "null", "non-finite f32 must serialize as null");
    }
    // The grammar has no NaN/Infinity tokens; such inputs must be errors,
    // not silently coerced.
    for text in ["NaN", "Infinity", "-Infinity", "[1,NaN]", "{\"x\":Infinity}", "1e999x"] {
        assert!(Json::parse(text.as_bytes()).is_err(), "{text:?} must be rejected");
    }
}

#[test]
fn escape_classes_round_trip() {
    let cases = [
        "".to_string(),
        "\"\\\u{8}\u{c}\n\r\t".to_string(),
        (0x01u32..0x20).map(|c| char::from_u32(c).unwrap()).collect::<String>(),
        "mixed \"quotes\" and \\ backslashes\nand 中文 and 😀🦀".to_string(),
        "\u{7f}\u{80}\u{7ff}\u{800}\u{ffff}\u{10000}\u{10ffff}".to_string(),
    ];
    for s in cases {
        let doc = Json::Str(s.clone());
        let back = Json::parse(doc.to_string().as_bytes()).expect("escaped string parses");
        assert_eq!(back, doc, "string {s:?} did not survive");
    }
    // surrogate pairs in \u form decode to the astral codepoint…
    let parsed = Json::parse(b"\"\\ud83d\\ude00\"").expect("surrogate pair parses");
    assert_eq!(parsed, Json::Str("😀".to_string()));
    // …but unpaired or malformed surrogates are rejected
    for bad in [&b"\"\\ud83d\""[..], b"\"\\ud83dx\"", b"\"\\ud83d\\u0041\"", b"\"\\ude00\""] {
        assert!(Json::parse(bad).is_err(), "{:?} must be rejected", String::from_utf8_lossy(bad));
    }
}

#[test]
fn deep_nesting_is_bounded_not_crashing() {
    // Well inside the limit: parses and round-trips.
    let deep = |n: usize| format!("{}1{}", "[".repeat(n), "]".repeat(n));
    let ok = deep(60);
    let doc = Json::parse(ok.as_bytes()).expect("60-deep array parses");
    assert_eq!(doc.to_string(), ok);

    // Beyond the limit: a clean error (offset + message), not a stack
    // overflow — the parser's defense against adversarial HTTP bodies.
    let err = Json::parse(deep(200).as_bytes()).expect_err("200-deep array must be rejected");
    assert_eq!(err.message, "nesting too deep");

    // Same bound applies through objects.
    let nested_obj =
        format!("{}1{}", "{\"k\":".repeat(200), "}".repeat(200));
    assert!(Json::parse(nested_obj.as_bytes()).is_err(), "deep objects must be rejected too");
}

#[test]
fn parser_rejects_structural_garbage() {
    let cases: [&[u8]; 12] = [
        b"",
        b"  ",
        b"[1,]",
        b"{\"a\":}",
        b"{\"a\" 1}",
        b"{a:1}",
        b"[1 2]",
        b"tru",
        b"nul",
        b"1 2",
        b"\"unterminated",
        b"[1]extra",
    ];
    for bytes in cases {
        assert!(
            Json::parse(bytes).is_err(),
            "{:?} must be rejected",
            String::from_utf8_lossy(bytes)
        );
    }
}
