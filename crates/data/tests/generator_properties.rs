//! Property tests for the synthetic generator under arbitrary (valid)
//! configurations: universe bounds, temporal bounds, volume sanity,
//! determinism, and the repurchase invariant.

use proptest::prelude::*;
use unimatch_data::calendar::month_of;
use unimatch_data::synthetic::{generate, SyntheticConfig};

fn arbitrary_config() -> impl Strategy<Value = (SyntheticConfig, u64)> {
    (
        20usize..200,   // users
        8usize..60,     // items
        200usize..2000, // interactions
        4u32..10,       // months
        2usize..6,      // clusters
        0.3f64..1.2,    // zipf
        0.0f64..1.2,    // activity sigma
        0.0f64..0.95,   // preference focus
        0.0f64..0.8,    // sequence coherence
        0.0f64..1.0,    // trend
        proptest::bool::ANY,
        proptest::num::u64::ANY,
    )
        .prop_map(
            |(users, items, inter, months, clusters, zipf, sigma, focus, coh, trend, repeat, seed)| {
                (
                    SyntheticConfig {
                        name: "prop".into(),
                        num_users: users,
                        num_items: items.max(clusters),
                        target_interactions: inter,
                        months,
                        num_clusters: clusters,
                        zipf_exponent: zipf,
                        activity_sigma: sigma,
                        preference_focus: focus,
                        sequence_coherence: coh,
                        trend_strength: trend,
                        max_user_events: 50,
                        repeat_purchases: repeat,
                    },
                    seed,
                )
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_logs_respect_bounds((cfg, seed) in arbitrary_config()) {
        let log = generate(&cfg, seed);
        prop_assert!(!log.is_empty());
        prop_assert!((log.num_users() as usize) <= cfg.num_users);
        prop_assert!((log.num_items() as usize) <= cfg.num_items);
        for r in log.records() {
            prop_assert!(month_of(r.day) < cfg.months);
        }
        // every user has at least 1 and at most max_user_events records
        for (_, timeline) in log.timelines() {
            prop_assert!(!timeline.is_empty());
            prop_assert!(timeline.len() <= cfg.max_user_events);
        }
    }

    #[test]
    fn generation_is_deterministic((cfg, seed) in arbitrary_config()) {
        let a = generate(&cfg, seed);
        let b = generate(&cfg, seed);
        prop_assert_eq!(a.records(), b.records());
    }

    #[test]
    fn volume_lands_near_target((cfg, seed) in arbitrary_config()) {
        let log = generate(&cfg, seed);
        let got = log.len() as f64;
        let want = cfg.target_interactions as f64;
        // lognormal clamping skews volume; stay within a loose band
        prop_assert!(got > want * 0.2 && got < want * 4.0, "{got} vs {want}");
    }

    #[test]
    fn repurchase_free_mode_rarely_repeats((mut cfg, seed) in arbitrary_config()) {
        cfg.repeat_purchases = false;
        // make collisions avoidable: enough items per cluster, and keep
        // timelines far below catalog size (else repeats are pigeonholed)
        cfg.num_items = cfg.num_items.max(cfg.num_clusters * 10);
        cfg.max_user_events = (cfg.num_items / cfg.num_clusters / 2).max(2);
        let log = generate(&cfg, seed);
        let mut repeats = 0usize;
        let mut total = 0usize;
        for (_, timeline) in log.timelines() {
            let mut seen = std::collections::HashSet::new();
            for r in timeline {
                total += 1;
                if !seen.insert(r.item) {
                    repeats += 1;
                }
            }
        }
        // bounded resampling can still collide on tiny popular clusters;
        // demand repeats be rare rather than impossible
        prop_assert!(
            (repeats as f64) < 0.05 * total as f64 + 2.0,
            "{repeats} repeats of {total}"
        );
    }
}
