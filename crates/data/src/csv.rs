//! CSV import/export of interaction logs.
//!
//! The interchange format is deliberately minimal — a `user,item,day`
//! header and one record per line, with arbitrary string ids (interned via
//! [`crate::vocab`]). No external CSV dependency: the format has no
//! quoting or escaping, and ids containing commas are rejected loudly.

use crate::vocab::{intern_log, RawRecord, Vocab};
use crate::InteractionLog;

/// The required header line.
pub const HEADER: &str = "user,item,day";

/// Errors from CSV parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum CsvError {
    /// The first line was not the expected header.
    BadHeader(String),
    /// A data line did not have exactly three fields.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// The day field failed to parse.
    BadDay {
        /// 1-based line number.
        line: usize,
        /// The offending value.
        value: String,
    },
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "expected header '{HEADER}', got '{h}'"),
            CsvError::BadLine { line, content } => {
                write!(f, "line {line}: expected 'user,item,day', got '{content}'")
            }
            CsvError::BadDay { line, value } => write!(f, "line {line}: bad day '{value}'"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parses a CSV document into a dense log plus the user/item vocabularies.
pub fn log_from_csv(text: &str) -> Result<(InteractionLog, Vocab, Vocab), CsvError> {
    let mut lines = text.lines();
    let header = lines.next().unwrap_or("");
    if header.trim() != HEADER {
        return Err(CsvError::BadHeader(header.to_string()));
    }
    let mut records = Vec::new();
    for (ix, line) in lines.enumerate() {
        let line_no = ix + 2;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 3 {
            return Err(CsvError::BadLine { line: line_no, content: line.to_string() });
        }
        let day: u32 = fields[2]
            .trim()
            .parse()
            .map_err(|_| CsvError::BadDay { line: line_no, value: fields[2].to_string() })?;
        records.push(RawRecord { user: fields[0].trim(), item: fields[1].trim(), day });
    }
    Ok(intern_log(&records))
}

/// Serializes a log to CSV using the given vocabularies (ids without a
/// vocabulary entry are written as `u<id>` / `i<id>`).
pub fn log_to_csv(log: &InteractionLog, users: Option<&Vocab>, items: Option<&Vocab>) -> String {
    let mut out = String::with_capacity(16 + log.len() * 16);
    out.push_str(HEADER);
    out.push('\n');
    for r in log.records() {
        let user = users
            .and_then(|v| v.external(r.user).map(str::to_string))
            .unwrap_or_else(|| format!("u{}", r.user));
        let item = items
            .and_then(|v| v.external(r.item).map(str::to_string))
            .unwrap_or_else(|| format!("i{}", r.item));
        out.push_str(&format!("{user},{item},{}\n", r.day));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_records() {
        let csv = "user,item,day\nalice,book-1,3\nbob,book-2,5\nalice,book-2,9\n";
        let (log, users, items) = log_from_csv(csv).expect("parse");
        assert_eq!(log.len(), 3);
        let back = log_to_csv(&log, Some(&users), Some(&items));
        let (log2, ..) = log_from_csv(&back).expect("reparse");
        assert_eq!(log.records(), log2.records());
    }

    #[test]
    fn blank_lines_skipped() {
        let csv = "user,item,day\n\na,b,1\n\n";
        let (log, ..) = log_from_csv(csv).expect("parse");
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn header_enforced() {
        let err = log_from_csv("uid,item,day\n").expect_err("bad header");
        assert_eq!(err, CsvError::BadHeader("uid,item,day".into()));
        assert!(matches!(log_from_csv(""), Err(CsvError::BadHeader(_))));
    }

    #[test]
    fn field_count_enforced() {
        let err = log_from_csv("user,item,day\na,b\n").expect_err("too few fields");
        assert!(matches!(err, CsvError::BadLine { line: 2, .. }));
        let err = log_from_csv("user,item,day\na,b,1,extra\n").expect_err("too many fields");
        assert!(matches!(err, CsvError::BadLine { line: 2, .. }));
    }

    #[test]
    fn bad_day_reported_with_line() {
        let err = log_from_csv("user,item,day\na,b,notaday\n").expect_err("bad day");
        assert_eq!(err, CsvError::BadDay { line: 2, value: "notaday".into() });
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn export_without_vocab_uses_synthetic_names() {
        let log = InteractionLog::new(vec![crate::Interaction { user: 3, item: 7, day: 1 }]);
        let csv = log_to_csv(&log, None, None);
        assert!(csv.contains("u3,i7,1"));
    }
}
