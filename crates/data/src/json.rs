//! A minimal, dependency-free JSON value with a parser and writer.
//!
//! The workspace's external `serde_json` is unavailable in the offline
//! verification environment, yet two production paths genuinely need JSON:
//! model checkpoints (`unimatch-core::persist`, human-inspectable and
//! diff-able) and the HTTP bodies of the online serving layer
//! (`unimatch-serve`). This module is the single JSON implementation both
//! build on: a plain value tree, a recursive-descent parser over bytes, and
//! a writer whose float formatting round-trips exactly.
//!
//! Compatibility contract: the writer emits the same *shape* serde_json
//! would for the workspace's structs (struct → object in field order,
//! newtype → inner value, unit enum variant → string, struct variant →
//! single-key object), so checkpoints written by either implementation
//! parse under the other.
//!
//! Float exactness: `f32` values are written through Rust's shortest
//! round-trip `Display` (a finite `f32` always reparses to the same bits;
//! non-finite values are written as `null`, mirroring serde_json). Numbers
//! are parsed as `f64`; casting a parsed `f64` to `f32` is exact for any
//! string produced from an `f32`, because the shortest representation
//! uniquely identifies the original value.
//!
//! ```
//! use unimatch_data::json::Json;
//!
//! let v = Json::parse(br#"{"k": 3, "history": [1, 2, 5]}"#).unwrap();
//! assert_eq!(v.get("k").and_then(Json::as_u64), Some(3));
//! let ids: Vec<u64> = v.get("history").unwrap().as_array().unwrap()
//!     .iter().filter_map(Json::as_u64).collect();
//! assert_eq!(ids, vec![1, 2, 5]);
//! ```

use std::fmt::Write as _;

/// Maximum nesting depth the parser accepts; beyond this the input is
/// rejected rather than risking a stack overflow on adversarial bodies.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers are exact up to 2^53).
    Num(f64),
    /// An `f32` written with `f32` shortest round-trip formatting. The
    /// parser never produces this variant; builders use it so tensor data
    /// and scores serialize compactly and reparse bit-exactly.
    F32(f32),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

/// A JSON syntax error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document; trailing non-whitespace is an error.
    pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Serializes to a JSON string.
    // Deliberately an inherent method, not `Display`: serialization is an
    // explicit operation here, and a `Display` impl would let callers
    // format checkpoints by accident.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes to JSON bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_string().into_bytes()
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(x) => write_f64(*x, out),
            Json::F32(x) => write_f32(*x, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Object field lookup (first match; objects are small here).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            Json::F32(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// The numeric value as `f32` (exact for checkpoint data written by
    /// [`Json::F32`]; see the module docs).
    pub fn as_f32(&self) -> Option<f32> {
        match self {
            Json::Num(x) => Some(*x as f32),
            Json::F32(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        if x >= 0.0 && x <= (1u64 << 53) as f64 && x.fract() == 0.0 {
            Some(x as u64)
        } else {
            None
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds an integer number (exact up to 2^53).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

/// serde_json writes non-finite floats as `null`; match it so either
/// implementation can read the other's output.
fn write_f32(x: f32, out: &mut String) {
    if x.is_finite() {
        write!(out, "{x}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        write!(out, "{x}").expect("write to String");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).expect("write to String");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, lit: &'static [u8], value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal(b"null", Json::Null),
            Some(b't') => self.literal(b"true", Json::Bool(true)),
            Some(b'f') => self.literal(b"false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[', "expected [")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ] in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{', "expected {")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected : after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or } in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected string")?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&cp) {
                                // high surrogate: a \uXXXX low surrogate must follow
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined =
                                    0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x20 => return Err(self.err("control character in string")),
                _ => {
                    // re-decode UTF-8 starting at the byte we just consumed
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err(self.err("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let Some(b) = self.peek() else {
                return Err(self.err("truncated \\u escape"));
            };
            let d = (b as char).to_digit(16).ok_or_else(|| self.err("invalid hex digit"))?;
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        let x: f64 = text.parse().map_err(|_| JsonError {
            offset: start,
            message: "number out of range",
        })?;
        Ok(Json::Num(x))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7f => Some(1),
        0xc0..=0xdf => Some(2),
        0xe0..=0xef => Some(3),
        0xf0..=0xf7 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = Json::obj(vec![
            ("a", Json::int(3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null, Json::str("x\"y\n")])),
            ("c", Json::obj(vec![("nested", Json::Num(-1.5))])),
        ]);
        let text = v.to_string();
        let back = Json::parse(text.as_bytes()).expect("reparse");
        assert_eq!(v, back);
    }

    #[test]
    fn f32_round_trip_is_exact() {
        let values = [
            0.1f32,
            -3.25,
            1.0,
            f32::MIN_POSITIVE,
            f32::MAX,
            1e-40, // subnormal
            0.15,
            std::f32::consts::PI,
        ];
        for &x in &values {
            let text = Json::F32(x).to_string();
            let back = Json::parse(text.as_bytes()).expect("parse");
            assert_eq!(back.as_f32(), Some(x), "{text}");
        }
        // non-finite writes null, like serde_json
        assert_eq!(Json::F32(f32::NAN).to_string(), "null");
        assert_eq!(Json::F32(f32::INFINITY).to_string(), "null");
    }

    #[test]
    fn parses_scientific_notation() {
        // serde_json (ryu) writes small floats with exponents
        let v = Json::parse(b"[1e-40, 2.5E3, -1.25e+2]").expect("parse");
        let items = v.as_array().expect("array");
        assert_eq!(items[0].as_f32(), Some(1e-40));
        assert_eq!(items[1].as_f64(), Some(2500.0));
        assert_eq!(items[2].as_f64(), Some(-125.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\":}",
            b"nul",
            b"1 2",
            b"\"unterminated",
            b"{\"a\" 1}",
            b"[1 2]",
            b"--1",
            b"1.",
            b"1e",
            b"\x01",
        ] {
            assert!(Json::parse(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn depth_limit_holds() {
        let mut deep = String::new();
        for _ in 0..100 {
            deep.push('[');
        }
        for _ in 0..100 {
            deep.push(']');
        }
        assert!(Json::parse(deep.as_bytes()).is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let text = "\"caf\u{e9} \u{1f600} A\"";
        let v = Json::parse(text.as_bytes()).expect("parse");
        assert_eq!(v.as_str(), Some("caf\u{e9} \u{1f600} A"));
        let s = Json::str("tab\there\u{1}");
        let back = Json::parse(s.to_string().as_bytes()).expect("reparse");
        assert_eq!(back, s);
    }

    #[test]
    fn object_lookup_and_accessors() {
        let v = Json::parse(br#"{"k": 10, "name": "x", "flag": false}"#).expect("parse");
        assert_eq!(v.get("k").and_then(Json::as_u64), Some(10));
        assert_eq!(v.get("name").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(false));
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
