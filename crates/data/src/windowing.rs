//! Next-n-day sample construction (Sec. II-A of the paper).
//!
//! For every purchase `(u, i, t)` we emit a training sample whose
//! *pseudo-user* is `x_{u,t}` — the sequence of `u`'s purchases strictly
//! before day `t`, truncated to the most recent `max_seq_len` — and whose
//! target `y_{u,t}` is the purchased item `i`. Emitting one sample per
//! interaction enumerates exactly the positive `(x_{u,t}, y)` pairs of the
//! paper's dataset `D` (purchases within `[t, t+n)` are each some record's
//! target), while the strict `day < t` cut keeps same-day co-purchases out
//! of the history so no label leaks into its own input.

use crate::calendar::month_of;
use crate::log::InteractionLog;

/// Configuration for sample construction.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct WindowConfig {
    /// Maximum history length; the paper truncates at 20 (Books), 36
    /// (Electronics), 29 (e_comp), 18 (w_comp).
    pub max_seq_len: usize,
    /// Minimum history length for a sample to be emitted (cold-start rows
    /// carry no signal for a sequence encoder).
    pub min_history: usize,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig { max_seq_len: 20, min_history: 1 }
    }
}

/// One training/evaluation sample: a pseudo-user and its target item.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Sample {
    /// The underlying user id (for marginals and user-level bookkeeping).
    pub user: u32,
    /// Most-recent-last purchase history strictly before `day`.
    pub history: Vec<u32>,
    /// The target item.
    pub target: u32,
    /// Absolute day of the target purchase.
    pub day: u32,
}

impl Sample {
    /// Month of the target purchase.
    pub fn month(&self) -> u32 {
        month_of(self.day)
    }
}

/// Builds the full sample set `D` from a log under `cfg`, sorted by day so
/// downstream consumers can iterate in calendar order (incremental
/// training).
pub fn build_samples(log: &InteractionLog, cfg: &WindowConfig) -> Vec<Sample> {
    let mut samples = Vec::new();
    for (user, timeline) in log.timelines() {
        // timeline is sorted by day
        for (idx, rec) in timeline.iter().enumerate() {
            // history = strictly earlier days
            let mut cut = idx;
            while cut > 0 && timeline[cut - 1].day == rec.day {
                cut -= 1;
            }
            if cut < cfg.min_history {
                continue;
            }
            let start = cut.saturating_sub(cfg.max_seq_len);
            let history: Vec<u32> = timeline[start..cut].iter().map(|r| r.item).collect();
            samples.push(Sample { user, history, target: rec.item, day: rec.day });
        }
    }
    samples.sort_by_key(|s| (s.day, s.user, s.target));
    samples
}

/// Splits samples by target month: returns those with `month() == month`.
pub fn samples_in_month(samples: &[Sample], month: u32) -> Vec<Sample> {
    samples.iter().filter(|s| s.month() == month).cloned().collect()
}

/// Splits samples into those strictly before `month` (by target month).
pub fn samples_before_month(samples: &[Sample], month: u32) -> Vec<Sample> {
    samples.iter().filter(|s| s.month() < month).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Interaction;

    fn log() -> InteractionLog {
        InteractionLog::new(vec![
            Interaction { user: 0, item: 10, day: 1 },
            Interaction { user: 0, item: 11, day: 2 },
            Interaction { user: 0, item: 12, day: 2 }, // same-day pair
            Interaction { user: 0, item: 13, day: 40 },
            Interaction { user: 1, item: 10, day: 5 },
        ])
    }

    #[test]
    fn history_strictly_before_target_day() {
        let samples = build_samples(&log(), &WindowConfig { max_seq_len: 10, min_history: 1 });
        // user 0 day 2 samples must not contain items bought on day 2
        for s in samples.iter().filter(|s| s.user == 0 && s.day == 2) {
            assert_eq!(s.history, vec![10]);
        }
        // two same-day targets both emitted
        assert_eq!(samples.iter().filter(|s| s.user == 0 && s.day == 2).count(), 2);
    }

    #[test]
    fn min_history_drops_cold_start() {
        let samples = build_samples(&log(), &WindowConfig::default());
        // user 1 has no history before day 5; user 0 day 1 likewise
        assert!(samples.iter().all(|s| !s.history.is_empty()));
        assert!(!samples.iter().any(|s| s.user == 1));
        assert!(!samples.iter().any(|s| s.user == 0 && s.day == 1));
    }

    #[test]
    fn truncation_keeps_most_recent() {
        let recs: Vec<Interaction> = (0..10)
            .map(|k| Interaction { user: 0, item: k, day: k })
            .collect();
        let log = InteractionLog::new(recs);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 3, min_history: 1 });
        let last = samples.iter().find(|s| s.day == 9).expect("sample at day 9");
        assert_eq!(last.history, vec![6, 7, 8]);
    }

    #[test]
    fn sorted_by_day() {
        let samples = build_samples(&log(), &WindowConfig { max_seq_len: 10, min_history: 1 });
        assert!(samples.windows(2).all(|w| w[0].day <= w[1].day));
    }

    #[test]
    fn month_partition() {
        let samples = build_samples(&log(), &WindowConfig { max_seq_len: 10, min_history: 1 });
        let m0 = samples_in_month(&samples, 0);
        let m1 = samples_in_month(&samples, 1);
        assert_eq!(m0.len() + m1.len(), samples.len());
        assert!(m1.iter().all(|s| s.day >= 30));
        let before = samples_before_month(&samples, 1);
        assert_eq!(before.len(), m0.len());
    }
}
