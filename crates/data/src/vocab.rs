//! Vocabulary interning: production logs key users and items by arbitrary
//! external ids (strings, UUIDs, numeric SKUs); models need dense `u32`
//! universes. `Vocab` provides the bijection and survives serialization so
//! serving can translate back.

use std::collections::HashMap;

/// A bijection between external string ids and dense `u32` indices.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct Vocab {
    forward: HashMap<String, u32>,
    reverse: Vec<String>,
}

impl Vocab {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an external id, returning its dense index (stable across
    /// repeat calls).
    pub fn intern(&mut self, external: &str) -> u32 {
        if let Some(&ix) = self.forward.get(external) {
            return ix;
        }
        let ix = self.reverse.len() as u32;
        self.forward.insert(external.to_string(), ix);
        self.reverse.push(external.to_string());
        ix
    }

    /// Looks up an already-interned id.
    pub fn get(&self, external: &str) -> Option<u32> {
        self.forward.get(external).copied()
    }

    /// The external id of a dense index.
    pub fn external(&self, ix: u32) -> Option<&str> {
        self.reverse.get(ix as usize).map(String::as_str)
    }

    /// Number of interned ids.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True when nothing is interned.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }
}

/// A raw external-id record, pre-interning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawRecord<'a> {
    /// External user key.
    pub user: &'a str,
    /// External item key.
    pub item: &'a str,
    /// Absolute day.
    pub day: u32,
}

/// Interns a raw external-id log into a dense [`crate::InteractionLog`]
/// plus the two vocabularies needed to translate results back.
pub fn intern_log(records: &[RawRecord<'_>]) -> (crate::InteractionLog, Vocab, Vocab) {
    let mut users = Vocab::new();
    let mut items = Vocab::new();
    let interactions: Vec<crate::Interaction> = records
        .iter()
        .map(|r| crate::Interaction {
            user: users.intern(r.user),
            item: items.intern(r.item),
            day: r.day,
        })
        .collect();
    (crate::InteractionLog::new(interactions), users, items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut v = Vocab::new();
        let a = v.intern("sku-9");
        let b = v.intern("sku-42");
        assert_eq!(v.intern("sku-9"), a);
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn round_trip() {
        let mut v = Vocab::new();
        let ix = v.intern("user@example.com");
        assert_eq!(v.external(ix), Some("user@example.com"));
        assert_eq!(v.get("user@example.com"), Some(ix));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.external(99), None);
    }

    #[test]
    fn intern_log_builds_dense_universe() {
        let records = vec![
            RawRecord { user: "alice", item: "book-1", day: 3 },
            RawRecord { user: "bob", item: "book-1", day: 5 },
            RawRecord { user: "alice", item: "book-2", day: 9 },
        ];
        let (log, users, items) = intern_log(&records);
        assert_eq!(log.len(), 3);
        assert_eq!(log.num_users(), 2);
        assert_eq!(log.num_items(), 2);
        // alice's two purchases share a dense user id
        let alice = users.get("alice").expect("alice interned");
        assert_eq!(log.timeline_of(alice).len(), 2);
        assert_eq!(items.external(0), Some("book-1"));
    }
}
