//! The user-item interaction matrix `S_ui` of Fig. 1, densely materialized
//! for *small* universes. The convergence experiments behind Tab. I/II fit
//! models against the exact empirical joint `p̂(u, i)` computed here.

use crate::windowing::Sample;

/// Dense interaction counts `c_ui` with row (user) and column (item)
/// marginals.
#[derive(Clone, Debug)]
pub struct InteractionMatrix {
    num_users: usize,
    num_items: usize,
    counts: Vec<u64>,
    total: u64,
}

impl InteractionMatrix {
    /// Accumulates counts from positive samples.
    pub fn from_samples(samples: &[Sample], num_users: u32, num_items: u32) -> Self {
        let (m, k) = (num_users as usize, num_items as usize);
        let mut counts = vec![0u64; m * k];
        for s in samples {
            counts[s.user as usize * k + s.target as usize] += 1;
        }
        let total = samples.len() as u64;
        InteractionMatrix { num_users: m, num_items: k, counts, total }
    }

    /// Accumulates counts from raw `(u, i)` pairs.
    pub fn from_pairs(pairs: &[(u32, u32)], num_users: u32, num_items: u32) -> Self {
        let (m, k) = (num_users as usize, num_items as usize);
        let mut counts = vec![0u64; m * k];
        for &(u, i) in pairs {
            counts[u as usize * k + i as usize] += 1;
        }
        InteractionMatrix { num_users: m, num_items: k, counts, total: pairs.len() as u64 }
    }

    /// Number of users (rows).
    pub fn num_users(&self) -> usize {
        self.num_users
    }

    /// Number of items (columns).
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Total interaction count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count `c_ui`.
    pub fn count(&self, u: u32, i: u32) -> u64 {
        self.counts[u as usize * self.num_items + i as usize]
    }

    /// Empirical joint `p̂(u, i)`.
    pub fn joint(&self, u: u32, i: u32) -> f64 {
        self.count(u, i) as f64 / self.total.max(1) as f64
    }

    /// Empirical user marginal `p̂(u) = N_u / N`.
    pub fn user_marginal(&self, u: u32) -> f64 {
        let row = &self.counts[u as usize * self.num_items..(u as usize + 1) * self.num_items];
        row.iter().sum::<u64>() as f64 / self.total.max(1) as f64
    }

    /// Empirical item marginal `p̂(i) = N_i / N`.
    pub fn item_marginal(&self, i: u32) -> f64 {
        let mut c = 0u64;
        for u in 0..self.num_users {
            c += self.counts[u * self.num_items + i as usize];
        }
        c as f64 / self.total.max(1) as f64
    }

    /// Conditional `p̂(i | u)` (0 when the user has no interactions).
    pub fn item_given_user(&self, u: u32, i: u32) -> f64 {
        let nu = self.user_marginal(u) * self.total as f64;
        if nu == 0.0 {
            0.0
        } else {
            self.count(u, i) as f64 / nu
        }
    }

    /// Conditional `p̂(u | i)` (0 when the item has no interactions).
    pub fn user_given_item(&self, u: u32, i: u32) -> f64 {
        let ni = self.item_marginal(i) * self.total as f64;
        if ni == 0.0 {
            0.0
        } else {
            self.count(u, i) as f64 / ni
        }
    }

    /// Pointwise mutual information `log (p̂(u,i) / (p̂(u)·p̂(i)))`;
    /// `None` for never-observed cells.
    pub fn pmi(&self, u: u32, i: u32) -> Option<f64> {
        if self.count(u, i) == 0 {
            return None;
        }
        Some((self.joint(u, i) / (self.user_marginal(u) * self.item_marginal(i))).ln())
    }

    /// Fraction of cells that are non-zero (matrix density).
    pub fn density(&self) -> f64 {
        let nz = self.counts.iter().filter(|&&c| c > 0).count();
        nz as f64 / (self.num_users * self.num_items) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix() -> InteractionMatrix {
        InteractionMatrix::from_pairs(&[(0, 0), (0, 0), (0, 1), (1, 1)], 2, 2)
    }

    #[test]
    fn joints_and_marginals_consistent() {
        let m = matrix();
        assert_eq!(m.total(), 4);
        assert!((m.joint(0, 0) - 0.5).abs() < 1e-12);
        assert!((m.user_marginal(0) - 0.75).abs() < 1e-12);
        assert!((m.item_marginal(1) - 0.5).abs() < 1e-12);
        // Σ_i p(u,i) = p(u)
        let sum: f64 = (0..2).map(|i| m.joint(0, i)).sum();
        assert!((sum - m.user_marginal(0)).abs() < 1e-12);
    }

    #[test]
    fn conditionals() {
        let m = matrix();
        assert!((m.item_given_user(0, 0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.user_given_item(1, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pmi_zero_cell_is_none() {
        let m = matrix();
        assert!(m.pmi(1, 0).is_none());
        let pmi = m.pmi(0, 0).expect("seen cell");
        // p(0,0)=0.5, p(u=0)=0.75, p(i=0)=0.5 -> PMI = ln(0.5/0.375)
        assert!((pmi - (0.5f64 / 0.375).ln()).abs() < 1e-12);
    }

    #[test]
    fn density() {
        assert!((matrix().density() - 0.75).abs() < 1e-12);
    }
}
