//! Day/month arithmetic for the next-n-day prediction setting.
//!
//! The paper's merchants run campaigns monthly; all splits and the
//! incremental-training schedule operate at month granularity. We use a
//! fixed 30-day month: the raw logs carry absolute day indices starting at
//! day 0, and `month_of(day) = day / 30`.

/// Days per (synthetic) month.
pub const DAYS_PER_MONTH: u32 = 30;

/// The month index a given absolute day falls into.
pub fn month_of(day: u32) -> u32 {
    day / DAYS_PER_MONTH
}

/// First absolute day of a month.
pub fn month_start(month: u32) -> u32 {
    month * DAYS_PER_MONTH
}

/// One-past-the-last absolute day of a month.
pub fn month_end(month: u32) -> u32 {
    (month + 1) * DAYS_PER_MONTH
}

/// Inclusive day range `[start, end)` covered by months `[m0, m1)`.
pub fn month_range_days(m0: u32, m1: u32) -> std::ops::Range<u32> {
    month_start(m0)..month_start(m1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn month_of_boundaries() {
        assert_eq!(month_of(0), 0);
        assert_eq!(month_of(29), 0);
        assert_eq!(month_of(30), 1);
        assert_eq!(month_of(59), 1);
        assert_eq!(month_of(60), 2);
    }

    #[test]
    fn start_end_consistent() {
        for m in 0..24 {
            assert_eq!(month_of(month_start(m)), m);
            assert_eq!(month_of(month_end(m) - 1), m);
            assert_eq!(month_end(m), month_start(m + 1));
        }
    }

    #[test]
    fn range_days() {
        let r = month_range_days(2, 4);
        assert_eq!(r.start, 60);
        assert_eq!(r.end, 120);
    }
}
