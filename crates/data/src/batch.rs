//! Mini-batch construction.
//!
//! Two record formats, mirroring Tab. IV and Tab. V of the paper:
//!
//! * [`MultinomialBatch`] — positive pairs only, carrying the pre-computed
//!   `log p̂(u)` / `log p̂(i)` bias-correction terms; negatives come from
//!   the batch itself (in-batch sampling).
//! * [`BceBatch`] — positive and explicitly sampled negative pairs with a
//!   0/1 label (built by [`crate::negative`]).

use crate::marginals::Marginals;
use crate::windowing::Sample;
use rand::seq::SliceRandom;
use rand::Rng;

/// A padded batch of item-id sequences, the input format of every user
/// encoder: `indices` is row-major `[B, L]`, `mask` marks valid positions,
/// `lengths[b] ≥ 1` is the unpadded length.
#[derive(Clone, Debug, PartialEq)]
pub struct SeqBatch {
    /// Batch size.
    pub b: usize,
    /// Padded sequence length.
    pub l: usize,
    /// Item ids, `[B*L]`, padded with 0 (masked out).
    pub indices: Vec<u32>,
    /// 1.0 for valid positions, 0.0 for padding, `[B*L]`.
    pub mask: Vec<f32>,
    /// Valid prefix length per row.
    pub lengths: Vec<usize>,
}

impl SeqBatch {
    /// Packs variable-length histories into a fixed `[B, max_len]` layout.
    /// Histories longer than `max_len` keep their most recent suffix.
    pub fn from_histories(histories: &[&[u32]], max_len: usize) -> Self {
        assert!(max_len >= 1, "max_len must be >= 1");
        let b = histories.len();
        let mut indices = vec![0u32; b * max_len];
        let mut mask = vec![0.0f32; b * max_len];
        let mut lengths = Vec::with_capacity(b);
        for (row, h) in histories.iter().enumerate() {
            assert!(!h.is_empty(), "history row {row} is empty");
            let start = h.len().saturating_sub(max_len);
            let tail = &h[start..];
            for (j, &it) in tail.iter().enumerate() {
                indices[row * max_len + j] = it;
                mask[row * max_len + j] = 1.0;
            }
            lengths.push(tail.len());
        }
        SeqBatch { b, l: max_len, indices, mask, lengths }
    }
}

/// A batch in the multinomial (Tab. IV) format: positives only, with the
/// empirical-marginal bias terms attached per record.
#[derive(Clone, Debug)]
pub struct MultinomialBatch {
    /// The pseudo-user histories.
    pub histories: SeqBatch,
    /// Target item per row.
    pub items: Vec<u32>,
    /// Underlying user id per row (popularity audits, debugging).
    pub users: Vec<u32>,
    /// `log p̂(u)` per row.
    pub log_pu: Vec<f32>,
    /// `log p̂(i)` per row.
    pub log_pi: Vec<f32>,
}

/// Builds shuffled [`MultinomialBatch`]es of size `batch_size` from the
/// positive samples. The trailing ragged batch is dropped when smaller than
/// 2 rows (in-batch losses need at least one negative).
pub fn multinomial_batches(
    samples: &[Sample],
    marginals: &Marginals,
    batch_size: usize,
    max_seq_len: usize,
    rng: &mut impl Rng,
) -> Vec<MultinomialBatch> {
    assert!(batch_size >= 2, "in-batch losses need batch_size >= 2");
    let mut order: Vec<usize> = (0..samples.len()).collect();
    order.shuffle(rng);
    let mut out = Vec::with_capacity(samples.len() / batch_size + 1);
    for chunk in order.chunks(batch_size) {
        if chunk.len() < 2 {
            continue;
        }
        let rows: Vec<&Sample> = chunk.iter().map(|&i| &samples[i]).collect();
        let histories: Vec<&[u32]> = rows.iter().map(|s| s.history.as_slice()).collect();
        out.push(MultinomialBatch {
            histories: SeqBatch::from_histories(&histories, max_seq_len),
            items: rows.iter().map(|s| s.target).collect(),
            users: rows.iter().map(|s| s.user).collect(),
            log_pu: rows.iter().map(|s| marginals.log_pu(s.user)).collect(),
            log_pi: rows.iter().map(|s| marginals.log_pi(s.target)).collect(),
        });
    }
    out
}

/// A batch in the Bernoulli (Tab. V) format: labeled positive/negative
/// pairs.
#[derive(Clone, Debug)]
pub struct BceBatch {
    /// The pseudo-user histories (positives and negatives interleaved).
    pub histories: SeqBatch,
    /// Item per row.
    pub items: Vec<u32>,
    /// 1.0 for positives, 0.0 for sampled negatives.
    pub labels: Vec<f32>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples(n: usize) -> Vec<Sample> {
        (0..n)
            .map(|k| Sample {
                user: (k % 5) as u32,
                history: vec![(k % 7) as u32, ((k + 1) % 7) as u32],
                target: (k % 7) as u32,
                day: k as u32,
            })
            .collect()
    }

    #[test]
    fn seq_batch_pads_and_masks() {
        let h1 = vec![1u32, 2, 3];
        let h2 = vec![4u32];
        let sb = SeqBatch::from_histories(&[&h1, &h2], 4);
        assert_eq!(sb.indices, vec![1, 2, 3, 0, 4, 0, 0, 0]);
        assert_eq!(sb.mask, vec![1., 1., 1., 0., 1., 0., 0., 0.]);
        assert_eq!(sb.lengths, vec![3, 1]);
    }

    #[test]
    fn seq_batch_truncates_to_suffix() {
        let h = vec![1u32, 2, 3, 4, 5];
        let sb = SeqBatch::from_histories(&[&h], 3);
        assert_eq!(sb.indices, vec![3, 4, 5]);
        assert_eq!(sb.lengths, vec![3]);
    }

    #[test]
    fn multinomial_batches_cover_all_samples() {
        let s = samples(37);
        let m = Marginals::from_samples(&s, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let batches = multinomial_batches(&s, &m, 8, 4, &mut rng);
        let total: usize = batches.iter().map(|b| b.items.len()).sum();
        assert_eq!(total, 37); // 4 full batches of 8 + one of 5
        assert!(batches.iter().all(|b| b.items.len() >= 2));
    }

    #[test]
    fn bias_terms_match_marginals() {
        let s = samples(20);
        let m = Marginals::from_samples(&s, 5, 7);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let batches = multinomial_batches(&s, &m, 4, 4, &mut rng);
        for b in &batches {
            for (row, &item) in b.items.iter().enumerate() {
                assert_eq!(b.log_pi[row], m.log_pi(item));
                assert_eq!(b.log_pu[row], m.log_pu(b.users[row]));
            }
        }
    }

    #[test]
    fn shuffling_is_seed_deterministic() {
        let s = samples(30);
        let m = Marginals::from_samples(&s, 5, 7);
        let b1 = multinomial_batches(&s, &m, 8, 4, &mut rand::rngs::StdRng::seed_from_u64(9));
        let b2 = multinomial_batches(&s, &m, 8, 4, &mut rand::rngs::StdRng::seed_from_u64(9));
        assert_eq!(b1[0].items, b2[0].items);
    }
}
