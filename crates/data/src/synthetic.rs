//! Synthetic interaction-log generator.
//!
//! Substitutes for the paper's two Amazon and two QuickAudience datasets
//! (Tab. III), which are respectively too large to train here and
//! proprietary. The generator is a latent-cluster temporal model producing
//! the four statistical properties the paper's experiments depend on:
//!
//! 1. **Skewed item popularity** (Zipf) — so `p̂(i)` bias correction and
//!    the Tab. XI popularity audit are meaningful;
//! 2. **Skewed user activity** (lognormal) — so `p̂(u)` correction matters
//!    on dense datasets and not on sparse ones;
//! 3. **Learnable structure** — users hold cluster preferences and items
//!    belong to clusters, and consecutive purchases follow a cluster
//!    transition cycle, giving sequence encoders signal;
//! 4. **Temporal drift** — item popularity follows per-item lifecycle
//!    bumps whose strength is a profile knob, reproducing why incremental
//!    training helps a lot on Books / e_comp and little on Electronics /
//!    w_comp (Fig. 3).

use crate::alias::AliasTable;
use crate::calendar::DAYS_PER_MONTH;
use crate::log::{Interaction, InteractionLog};
use rand::Rng;
use rand::SeedableRng;

/// Knobs of the generative model.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SyntheticConfig {
    /// Profile name (for reports).
    pub name: String,
    /// Number of users.
    pub num_users: usize,
    /// Number of items.
    pub num_items: usize,
    /// Approximate total number of interactions to generate.
    pub target_interactions: usize,
    /// Months the log spans.
    pub months: u32,
    /// Latent clusters shared by users and items.
    pub num_clusters: usize,
    /// Zipf exponent of the item base-popularity distribution.
    pub zipf_exponent: f64,
    /// Lognormal σ of per-user activity (0 ⇒ everyone equally active).
    pub activity_sigma: f64,
    /// Weight of a user's primary cluster in their preference mixture
    /// (the remainder spreads uniformly; higher ⇒ more predictable users).
    pub preference_focus: f64,
    /// Probability that a purchase follows the cluster-transition cycle of
    /// the previous purchase instead of the static preference.
    pub sequence_coherence: f64,
    /// 0 ⇒ stationary popularity; 1 ⇒ popularity dominated by per-item
    /// monthly lifecycle bumps.
    pub trend_strength: f64,
    /// Maximum events for a single user (keeps timelines bounded).
    pub max_user_events: usize,
    /// Whether a user may purchase the same item twice. Amazon-style
    /// catalogs (books, electronics) are effectively repurchase-free,
    /// which is what makes their UT task genuinely different from IR;
    /// consumable catalogs (e_comp, w_comp) repurchase heavily.
    pub repeat_purchases: bool,
}

/// The four dataset profiles of Tab. III, scaled to laptop size (~1/100 of
/// the paper's row counts, 12 months instead of 24–47).
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum DatasetProfile {
    /// Amazon Books: moderate density, strongly trending items.
    Books,
    /// Amazon Electronics: very sparse users (~1.8 actions), stable items.
    Electronics,
    /// QuickAudience e_comp: small catalog, dense, trending.
    EComp,
    /// QuickAudience w_comp: tiny catalog, extremely popular items, stable.
    WComp,
    /// Serving-scale preset: e_comp's statistical shape scaled an order of
    /// magnitude toward its full Tab. III size. Not a paper column (it is
    /// excluded from [`DatasetProfile::ALL`]); exists to size the retrieval
    /// indexes for load testing and shard capacity planning
    /// (`docs/OPERATIONS.md`).
    Large,
}

impl DatasetProfile {
    /// All profiles in the paper's column order. [`DatasetProfile::Large`]
    /// is deliberately absent: the experiment tables iterate this list and
    /// the load-testing preset is not a paper dataset.
    pub const ALL: [DatasetProfile; 4] = [
        DatasetProfile::Books,
        DatasetProfile::Electronics,
        DatasetProfile::EComp,
        DatasetProfile::WComp,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetProfile::Books => "Books",
            DatasetProfile::Electronics => "Electronics",
            DatasetProfile::EComp => "QA e_comp",
            DatasetProfile::WComp => "QA w_comp",
            DatasetProfile::Large => "Large (serving)",
        }
    }

    /// The paper's Tab. III row for this dataset:
    /// `(users, items, interactions, months, actions/user, actions/item)`.
    pub fn paper_stats(self) -> (u64, u64, u64, u32, f64, f64) {
        match self {
            DatasetProfile::Books => (536_409, 338_739, 6_132_506, 31, 11.4, 18.1),
            DatasetProfile::Electronics => (3_142_438, 382_246, 5_566_859, 31, 1.8, 14.6),
            DatasetProfile::EComp => (237_052, 15_168, 1_350_566, 47, 5.7, 89.0),
            DatasetProfile::WComp => (867_107, 507, 2_762_870, 24, 3.2, 5449.4),
            // Large models e_comp at full size, so it shares that row.
            DatasetProfile::Large => (237_052, 15_168, 1_350_566, 47, 5.7, 89.0),
        }
    }

    /// The paper's per-dataset history truncation length (Sec. IV-A1).
    pub fn max_seq_len(self) -> usize {
        match self {
            DatasetProfile::Books => 20,
            DatasetProfile::Electronics => 36,
            DatasetProfile::EComp | DatasetProfile::Large => 29,
            DatasetProfile::WComp => 18,
        }
    }

    /// Evaluation cutoff `N` of Recall@N / NDCG@N (5 for w_comp, else 10).
    pub fn top_n(self) -> usize {
        match self {
            DatasetProfile::WComp => 5,
            _ => 10,
        }
    }

    /// Number of sampled negatives per test case (49 for w_comp, else 99).
    pub fn num_eval_negatives(self) -> usize {
        match self {
            DatasetProfile::WComp => 49,
            _ => 99,
        }
    }

    /// A generator config scaled by `scale` (1.0 ≈ 1/100 of the paper).
    pub fn config(self, scale: f64) -> SyntheticConfig {
        let s = |x: usize| ((x as f64 * scale).round() as usize).max(8);
        match self {
            DatasetProfile::Books => SyntheticConfig {
                name: self.name().to_string(),
                num_users: s(5400),
                num_items: s(3400),
                target_interactions: s(61_000),
                months: 12,
                num_clusters: 16,
                zipf_exponent: 0.9,
                activity_sigma: 0.9,
                preference_focus: 0.65,
                sequence_coherence: 0.35,
                trend_strength: 0.8,
                max_user_events: 200,
                repeat_purchases: false,
            },
            DatasetProfile::Electronics => SyntheticConfig {
                name: self.name().to_string(),
                num_users: s(18_000),
                num_items: s(3800),
                target_interactions: s(43_000),
                months: 12,
                num_clusters: 16,
                zipf_exponent: 1.05,
                activity_sigma: 0.5,
                preference_focus: 0.6,
                sequence_coherence: 0.25,
                trend_strength: 0.15,
                max_user_events: 60,
                repeat_purchases: false,
            },
            DatasetProfile::EComp => SyntheticConfig {
                name: self.name().to_string(),
                num_users: s(2400),
                num_items: s(160),
                target_interactions: s(13_600),
                months: 12,
                num_clusters: 8,
                zipf_exponent: 0.8,
                activity_sigma: 0.8,
                preference_focus: 0.7,
                sequence_coherence: 0.35,
                trend_strength: 0.75,
                max_user_events: 150,
                repeat_purchases: true,
            },
            DatasetProfile::WComp => SyntheticConfig {
                name: self.name().to_string(),
                num_users: s(8700),
                num_items: 56.max((507.0 * scale / 9.0).round() as usize),
                target_interactions: s(27_600),
                months: 12,
                num_clusters: 6,
                zipf_exponent: 0.7,
                activity_sigma: 0.6,
                preference_focus: 0.7,
                sequence_coherence: 0.3,
                trend_strength: 0.15,
                max_user_events: 80,
                repeat_purchases: true,
            },
            // e_comp's knobs, an order of magnitude more users/items: the
            // retrieval indexes this produces are what `--shards` and the
            // loadgen harness are sized against.
            DatasetProfile::Large => SyntheticConfig {
                name: self.name().to_string(),
                num_users: s(24_000),
                num_items: s(1_600),
                target_interactions: s(136_000),
                months: 12,
                num_clusters: 16,
                zipf_exponent: 0.8,
                activity_sigma: 0.8,
                preference_focus: 0.7,
                sequence_coherence: 0.35,
                trend_strength: 0.4,
                max_user_events: 150,
                repeat_purchases: true,
            },
        }
    }

    /// Generates the scaled synthetic log for this profile.
    pub fn generate(self, scale: f64, seed: u64) -> InteractionLog {
        generate(&self.config(scale), seed)
    }
}

/// Generates an interaction log from a config, deterministically per seed.
pub fn generate(cfg: &SyntheticConfig, seed: u64) -> InteractionLog {
    assert!(cfg.num_clusters >= 2, "need at least 2 clusters");
    assert!(cfg.num_items >= cfg.num_clusters, "need items >= clusters");
    assert!(cfg.months >= 4, "need >= 4 months for the temporal split");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x556e_694d_6174_6368); // "UniMatch"

    // ---- items: cluster, base popularity (zipf over a random rank), trend
    let item_cluster: Vec<usize> = (0..cfg.num_items).map(|i| i % cfg.num_clusters).collect();
    let mut ranks: Vec<usize> = (0..cfg.num_items).collect();
    for i in (1..ranks.len()).rev() {
        ranks.swap(i, rng.gen_range(0..=i));
    }
    let base_pop: Vec<f64> = ranks
        .iter()
        .map(|&r| 1.0 / ((r + 1) as f64).powf(cfg.zipf_exponent))
        .collect();
    // lifecycle bump per item
    let peak_month: Vec<f64> = (0..cfg.num_items)
        .map(|_| rng.gen_range(-2.0..cfg.months as f64 + 2.0))
        .collect();
    let peak_width: Vec<f64> = (0..cfg.num_items).map(|_| rng.gen_range(1.5..4.0)).collect();

    let pop_at = |i: usize, month: u32| -> f64 {
        let z = (month as f64 - peak_month[i]) / peak_width[i];
        let bump = (-0.5 * z * z).exp();
        base_pop[i] * ((1.0 - cfg.trend_strength) + cfg.trend_strength * (0.02 + bump))
    };

    // per (cluster, month) alias tables + item lists
    let mut cluster_items: Vec<Vec<u32>> = vec![Vec::new(); cfg.num_clusters];
    for (i, &c) in item_cluster.iter().enumerate() {
        cluster_items[c].push(i as u32);
    }
    let mut samplers: Vec<Vec<AliasTable>> = Vec::with_capacity(cfg.num_clusters);
    for (c, items) in cluster_items.iter().enumerate() {
        assert!(!items.is_empty(), "cluster {c} has no items");
        let mut per_month = Vec::with_capacity(cfg.months as usize);
        for m in 0..cfg.months {
            let w: Vec<f64> = items.iter().map(|&i| pop_at(i as usize, m)).collect();
            per_month.push(AliasTable::new(&w));
        }
        samplers.push(per_month);
    }

    // ---- users: activity, join month, primary cluster
    let mu = (cfg.target_interactions as f64 / cfg.num_users as f64).max(1.0);
    let lognormal = |rng: &mut rand::rngs::StdRng| -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (cfg.activity_sigma * z).exp()
    };

    let mut records = Vec::with_capacity(cfg.target_interactions + cfg.num_users);
    for u in 0..cfg.num_users {
        // activity count, lognormal around the mean with median correction
        let correction = (-0.5 * cfg.activity_sigma * cfg.activity_sigma).exp();
        let n = (mu * correction * lognormal(&mut rng)).round() as usize;
        let n = n.clamp(1, cfg.max_user_events);
        let join = rng.gen_range(0..cfg.months);
        let primary = rng.gen_range(0..cfg.num_clusters);

        // event days within the active window, sorted
        let mut days: Vec<u32> = (0..n)
            .map(|_| {
                let m = rng.gen_range(join..cfg.months);
                m * DAYS_PER_MONTH + rng.gen_range(0..DAYS_PER_MONTH)
            })
            .collect();
        days.sort_unstable();

        let mut prev_cluster: Option<usize> = None;
        let mut purchased: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for day in days {
            let month = day / DAYS_PER_MONTH;
            let cluster = match prev_cluster {
                Some(pc) if rng.gen::<f64>() < cfg.sequence_coherence => {
                    (pc + 1) % cfg.num_clusters // deterministic transition cycle
                }
                _ => {
                    if rng.gen::<f64>() < cfg.preference_focus {
                        primary
                    } else {
                        rng.gen_range(0..cfg.num_clusters)
                    }
                }
            };
            let mut item = {
                let within = samplers[cluster][month as usize].sample(&mut rng);
                cluster_items[cluster][within as usize]
            };
            if !cfg.repeat_purchases {
                // resample a bounded number of times to avoid repurchases
                for _ in 0..12 {
                    if !purchased.contains(&item) {
                        break;
                    }
                    let within = samplers[cluster][month as usize].sample(&mut rng);
                    item = cluster_items[cluster][within as usize];
                }
                purchased.insert(item);
            }
            records.push(Interaction { user: u as u32, item, day });
            prev_cluster = Some(cluster);
        }
    }
    InteractionLog::new(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calendar::month_of;

    #[test]
    fn deterministic_per_seed() {
        let cfg = DatasetProfile::EComp.config(0.2);
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.records(), b.records());
        let c = generate(&cfg, 8);
        assert_ne!(a.records(), c.records());
    }

    #[test]
    fn respects_universe_and_span() {
        let cfg = DatasetProfile::EComp.config(0.2);
        let log = generate(&cfg, 1);
        assert!(log.num_items() as usize <= cfg.num_items);
        assert!(log.num_users() as usize <= cfg.num_users);
        assert_eq!(log.span_months(), cfg.months);
        assert!(log.records().iter().all(|r| month_of(r.day) < cfg.months));
    }

    #[test]
    fn interaction_volume_near_target() {
        let cfg = DatasetProfile::EComp.config(0.5);
        let log = generate(&cfg, 2);
        let got = log.len() as f64;
        let want = cfg.target_interactions as f64;
        assert!(got > want * 0.5 && got < want * 2.0, "{got} vs target {want}");
    }

    #[test]
    fn item_popularity_is_skewed() {
        let log = DatasetProfile::Books.generate(0.2, 3);
        let mut counts = log.item_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u64 = counts[..counts.len() / 10].iter().sum();
        let total: u64 = counts.iter().sum();
        // top 10% of items should own well over 10% of the interactions
        assert!(top_decile as f64 > 0.35 * total as f64, "top decile {top_decile}/{total}");
    }

    #[test]
    fn trendy_profile_shifts_monthly_popularity() {
        let cfg = DatasetProfile::Books.config(0.3);
        let log = generate(&cfg, 4);
        let early = log.item_counts_in(0, 3 * DAYS_PER_MONTH);
        let late = log.item_counts_in(9 * DAYS_PER_MONTH, 12 * DAYS_PER_MONTH);
        // rank correlation between early and late popularity should be far
        // from perfect for a trendy profile: compare top-item overlap
        let top = |v: &[u64]| -> std::collections::HashSet<usize> {
            let mut ix: Vec<usize> = (0..v.len()).collect();
            ix.sort_unstable_by(|&a, &b| v[b].cmp(&v[a]));
            ix[..v.len() / 20].iter().copied().collect()
        };
        let overlap = top(&early).intersection(&top(&late)).count() as f64
            / (early.len() as f64 / 20.0);
        assert!(overlap < 0.8, "trendy top-items overlap {overlap}");
    }

    #[test]
    fn stable_profile_keeps_monthly_popularity() {
        let cfg = DatasetProfile::WComp.config(0.3);
        let log = generate(&cfg, 4);
        let early = log.item_counts_in(0, 3 * DAYS_PER_MONTH);
        let late = log.item_counts_in(9 * DAYS_PER_MONTH, 12 * DAYS_PER_MONTH);
        let top = |v: &[u64]| -> std::collections::HashSet<usize> {
            let mut ix: Vec<usize> = (0..v.len()).collect();
            ix.sort_unstable_by(|&a, &b| v[b].cmp(&v[a]));
            ix[..(v.len() / 5).max(1)].iter().copied().collect()
        };
        let denom = (early.len() as f64 / 5.0).max(1.0);
        let overlap = top(&early).intersection(&top(&late)).count() as f64 / denom;
        assert!(overlap > 0.5, "stable top-items overlap {overlap}");
    }

    #[test]
    fn timelines_are_chronological() {
        let log = DatasetProfile::EComp.generate(0.2, 5);
        for (_, t) in log.timelines() {
            assert!(t.windows(2).all(|w| w[0].day <= w[1].day));
        }
    }
}
