//! # unimatch-data
//!
//! The data pipeline of the UniMatch reproduction: raw `(u, i, t)`
//! interaction logs, the next-n-day pseudo-user windowing of Sec. II-A,
//! temporal train/validation/test splitting, empirical marginals for bias
//! correction, negative samplers realizing the noise distributions of
//! Tab. I, batchers producing the Tab. IV (multinomial) and Tab. V
//! (Bernoulli) record formats, and a synthetic generator standing in for
//! the paper's four datasets (see `DESIGN.md` for the substitution
//! rationale).
//!
//! ```
//! use unimatch_data::synthetic::DatasetProfile;
//! use unimatch_data::windowing::{build_samples, WindowConfig};
//! use unimatch_data::split::temporal_split;
//!
//! let log = DatasetProfile::EComp.generate(0.1, 42);
//! let log = log.filter_min_interactions(3);
//! let samples = build_samples(&log, &WindowConfig::default());
//! let split = temporal_split(&samples, log.span_months());
//! assert!(!split.train.is_empty());
//! assert!(!split.test.is_empty());
//! ```

#![warn(missing_docs)]

pub mod alias;
pub mod batch;
pub mod calendar;
pub mod csv;
pub mod json;
pub mod log;
pub mod marginals;
pub mod matrix;
pub mod negative;
pub mod split;
pub mod stats;
pub mod synthetic;
pub mod vocab;
pub mod windowing;

pub use crate::log::{Interaction, InteractionLog};
pub use batch::{BceBatch, MultinomialBatch, SeqBatch};
pub use marginals::Marginals;
pub use negative::{NegativeSampler, NegativeStrategy};
pub use split::{temporal_split, TemporalSplit};
pub use synthetic::{DatasetProfile, SyntheticConfig};
pub use vocab::{intern_log, RawRecord, Vocab};
pub use windowing::{build_samples, Sample, WindowConfig};
