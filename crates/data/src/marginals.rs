//! Empirical marginal distributions `p̂(u)` and `p̂(i)` over the training
//! samples — the bias-correction terms of the bbcNCE loss (Eq. 10, Tab. IV).

use crate::windowing::Sample;

/// Log empirical marginals computed from a set of (positive) samples.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct Marginals {
    log_pu: Vec<f32>,
    log_pi: Vec<f32>,
    /// log(0.5 / total): floor used for entities unseen in the window.
    floor_u: f32,
    floor_i: f32,
}

impl Marginals {
    /// Computes marginals from `samples`, with universes of `num_users` /
    /// `num_items`. Each sample contributes one count to its user and one
    /// to its target item, matching Tab. IV where every positive record
    /// carries `log p(u)` and `log p(i)` computed over the training data.
    pub fn from_samples(samples: &[Sample], num_users: u32, num_items: u32) -> Self {
        let mut cu = vec![0u64; num_users as usize];
        let mut ci = vec![0u64; num_items as usize];
        for s in samples {
            cu[s.user as usize] += 1;
            ci[s.target as usize] += 1;
        }
        let total = samples.len().max(1) as f64;
        let floor_u = ((0.5 / total) as f32).ln();
        let floor_i = floor_u;
        let log_pu = cu
            .iter()
            .map(|&c| if c == 0 { floor_u } else { ((c as f64 / total) as f32).ln() })
            .collect();
        let log_pi = ci
            .iter()
            .map(|&c| if c == 0 { floor_i } else { ((c as f64 / total) as f32).ln() })
            .collect();
        Marginals { log_pu, log_pi, floor_u, floor_i }
    }

    /// Reassembles marginals from their stored parts — the checkpoint
    /// decode path, where the tables were persisted by a trainer and
    /// must round-trip bit-for-bit.
    pub fn from_parts(log_pu: Vec<f32>, log_pi: Vec<f32>, floor_u: f32, floor_i: f32) -> Self {
        Marginals { log_pu, log_pi, floor_u, floor_i }
    }

    /// The floor applied to users unseen in the training window.
    pub fn floor_u(&self) -> f32 {
        self.floor_u
    }

    /// The floor applied to items unseen in the training window.
    pub fn floor_i(&self) -> f32 {
        self.floor_i
    }

    /// `log p̂(u)` for a user id.
    pub fn log_pu(&self, user: u32) -> f32 {
        self.log_pu.get(user as usize).copied().unwrap_or(self.floor_u)
    }

    /// `log p̂(i)` for an item id.
    pub fn log_pi(&self, item: u32) -> f32 {
        self.log_pi.get(item as usize).copied().unwrap_or(self.floor_i)
    }

    /// All item log-marginals (used by the SSM sampler's logQ correction).
    pub fn log_pi_all(&self) -> &[f32] {
        &self.log_pi
    }

    /// All user log-marginals.
    pub fn log_pu_all(&self) -> &[f32] {
        &self.log_pu
    }

    /// Item probabilities (exponentiated), for building samplers.
    pub fn item_probs(&self) -> Vec<f64> {
        self.log_pi.iter().map(|&lp| (lp as f64).exp()).collect()
    }

    /// User probabilities (exponentiated), for building samplers.
    pub fn user_probs(&self) -> Vec<f64> {
        self.log_pu.iter().map(|&lp| (lp as f64).exp()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Sample> {
        vec![
            Sample { user: 0, history: vec![], target: 1, day: 0 },
            Sample { user: 0, history: vec![], target: 1, day: 1 },
            Sample { user: 1, history: vec![], target: 2, day: 2 },
            Sample { user: 2, history: vec![], target: 1, day: 3 },
        ]
    }

    #[test]
    fn probabilities_match_counts() {
        let m = Marginals::from_samples(&samples(), 3, 3);
        assert!((m.log_pu(0) - (0.5f32).ln()).abs() < 1e-6);
        assert!((m.log_pu(1) - (0.25f32).ln()).abs() < 1e-6);
        assert!((m.log_pi(1) - (0.75f32).ln()).abs() < 1e-6);
        assert!((m.log_pi(2) - (0.25f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn unseen_entities_get_floor() {
        let m = Marginals::from_samples(&samples(), 4, 4);
        // user 3 and item 0/3 never appear
        let floor = (0.5f32 / 4.0).ln();
        assert!((m.log_pu(3) - floor).abs() < 1e-6);
        assert!((m.log_pi(0) - floor).abs() < 1e-6);
        // out-of-range ids also floored, not panicking
        assert!((m.log_pi(99) - floor).abs() < 1e-6);
    }

    #[test]
    fn seen_probs_sum_to_one() {
        let m = Marginals::from_samples(&samples(), 3, 3);
        let sum: f64 = m.user_probs().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6, "{sum}");
    }
}
