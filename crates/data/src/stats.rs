//! Dataset statistics reports (Tab. III) and split statistics (Tab. VI).

use crate::log::InteractionLog;
use crate::split::TemporalSplit;
use crate::windowing::Sample;

/// Tab. III-style statistics of an interaction log.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct DatasetStats {
    /// Distinct users with ≥ 1 interaction.
    pub users: usize,
    /// Distinct items with ≥ 1 interaction.
    pub items: usize,
    /// Total interaction records.
    pub interactions: usize,
    /// Span in months.
    pub months: u32,
    /// Average actions per (distinct) user.
    pub actions_per_user: f64,
    /// Average actions per (distinct) item.
    pub actions_per_item: f64,
}

impl DatasetStats {
    /// Computes statistics from a log.
    pub fn from_log(log: &InteractionLog) -> Self {
        let users = log.distinct_users();
        let items = log.distinct_items();
        let interactions = log.len();
        DatasetStats {
            users,
            items,
            interactions,
            months: log.span_months(),
            actions_per_user: interactions as f64 / users.max(1) as f64,
            actions_per_item: interactions as f64 / items.max(1) as f64,
        }
    }
}

/// Tab. VI-style statistics of a temporal split plus the evaluation
/// protocol parameters.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SplitStats {
    /// Number of training records (positive samples).
    pub train_records: usize,
    /// Distinct test pseudo-users (IR test cases).
    pub ir_test_users: usize,
    /// Size of the item pool IR negatives are drawn from.
    pub ir_item_pool: usize,
    /// Distinct test items (UT test cases).
    pub ut_test_items: usize,
    /// Size of the user pool UT negatives are drawn from.
    pub ut_user_pool: usize,
    /// Ranking cutoff N.
    pub top_n: usize,
    /// Sampled negatives per test case.
    pub negatives: usize,
}

fn distinct<T: Ord + Copy>(mut v: Vec<T>) -> usize {
    v.sort_unstable();
    v.dedup();
    v.len()
}

impl SplitStats {
    /// Computes Tab. VI statistics for a split under a given protocol
    /// (`top_n` ranked entities out of `negatives + 1` candidates).
    pub fn from_split(split: &TemporalSplit, top_n: usize, negatives: usize) -> Self {
        let all: Vec<&Sample> = split.train.iter().chain(split.test.iter()).collect();
        SplitStats {
            train_records: split.train.len(),
            ir_test_users: distinct(split.test.iter().map(|s| s.user).collect()),
            ir_item_pool: distinct(all.iter().map(|s| s.target).collect()),
            ut_test_items: distinct(split.test.iter().map(|s| s.target).collect()),
            ut_user_pool: distinct(all.iter().map(|s| s.user).collect()),
            top_n,
            negatives,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::Interaction;
    use crate::split::temporal_split;
    use crate::windowing::{build_samples, WindowConfig};

    fn make_split() -> TemporalSplit {
        let mut recs = Vec::new();
        for u in 0..10u32 {
            for k in 0..6u32 {
                recs.push(Interaction { user: u, item: (u + k) % 7, day: k * 20 });
            }
        }
        let log = InteractionLog::new(recs);
        let samples = build_samples(&log, &WindowConfig { max_seq_len: 5, min_history: 1 });
        temporal_split(&samples, 4)
    }

    #[test]
    fn dataset_stats_basic() {
        let log = InteractionLog::new(vec![
            Interaction { user: 0, item: 0, day: 0 },
            Interaction { user: 0, item: 1, day: 31 },
            Interaction { user: 1, item: 0, day: 2 },
        ]);
        let s = DatasetStats::from_log(&log);
        assert_eq!(s.users, 2);
        assert_eq!(s.items, 2);
        assert_eq!(s.interactions, 3);
        assert_eq!(s.months, 2);
        assert!((s.actions_per_user - 1.5).abs() < 1e-9);
    }

    #[test]
    fn split_stats_counts() {
        let split = make_split();
        let st = SplitStats::from_split(&split, 10, 99);
        assert_eq!(st.train_records, split.train.len());
        assert!(st.ir_test_users > 0);
        assert!(st.ir_item_pool >= st.ut_test_items);
        assert!(st.ut_user_pool >= st.ir_test_users);
        assert_eq!(st.top_n, 10);
        assert_eq!(st.negatives, 99);
    }
}
