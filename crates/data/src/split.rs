//! Temporal train/validation/test splitting.
//!
//! With the log spanning `T` months, the paper uses `(0, T-1]` for
//! training, `(T-2, T-1]` (the last training month) for validation and
//! `(T-1, T]` for test. In 0-indexed months: test month `T-1`, validation
//! month `T-2`, training targets in months `0..=T-2`.

use crate::windowing::Sample;

/// A temporal split of the sample set.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct TemporalSplit {
    /// Training samples: target months `0..=T-2`.
    pub train: Vec<Sample>,
    /// Validation samples: target month `T-2` (a subset of `train`, as in
    /// the paper).
    pub val: Vec<Sample>,
    /// Test samples: target month `T-1`.
    pub test: Vec<Sample>,
    /// The (0-indexed) validation month.
    pub val_month: u32,
    /// The (0-indexed) test month.
    pub test_month: u32,
}

/// Splits `samples` (any order) given the total span in months (`T ≥ 3`).
pub fn temporal_split(samples: &[Sample], span_months: u32) -> TemporalSplit {
    assert!(span_months >= 3, "need at least 3 months to split, got {span_months}");
    let test_month = span_months - 1;
    let val_month = span_months - 2;
    let mut split = TemporalSplit {
        val_month,
        test_month,
        ..TemporalSplit::default()
    };
    for s in samples {
        let m = s.month();
        if m >= span_months {
            continue; // ragged tail beyond the declared span
        }
        if m == test_month {
            split.test.push(s.clone());
        } else {
            if m == val_month {
                split.val.push(s.clone());
            }
            split.train.push(s.clone());
        }
    }
    split
}

impl TemporalSplit {
    /// Training samples whose target falls in `month`.
    pub fn train_month(&self, month: u32) -> Vec<Sample> {
        assert!(month < self.test_month, "month {month} is not a training month");
        self.train.iter().filter(|s| s.month() == month).cloned().collect()
    }

    /// The training months in calendar order (those that contain samples).
    pub fn train_months(&self) -> Vec<u32> {
        let mut months: Vec<u32> = self.train.iter().map(|s| s.month()).collect();
        months.sort_unstable();
        months.dedup();
        months
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(day: u32) -> Sample {
        Sample { user: 0, history: vec![1], target: 2, day }
    }

    #[test]
    fn partition_is_exact() {
        let samples: Vec<Sample> = (0..120).map(sample).collect(); // 4 months
        let split = temporal_split(&samples, 4);
        assert_eq!(split.test_month, 3);
        assert_eq!(split.val_month, 2);
        assert_eq!(split.test.len(), 30);
        assert_eq!(split.val.len(), 30);
        assert_eq!(split.train.len(), 90);
        assert!(split.test.iter().all(|s| s.month() == 3));
        assert!(split.val.iter().all(|s| s.month() == 2));
        assert!(split.train.iter().all(|s| s.month() < 3));
    }

    #[test]
    fn val_is_subset_of_train() {
        let samples: Vec<Sample> = (0..120).map(sample).collect();
        let split = temporal_split(&samples, 4);
        for v in &split.val {
            assert!(split.train.contains(v));
        }
    }

    #[test]
    fn train_month_selection() {
        let samples: Vec<Sample> = (0..120).map(sample).collect();
        let split = temporal_split(&samples, 4);
        assert_eq!(split.train_month(1).len(), 30);
        assert_eq!(split.train_months(), vec![0, 1, 2]);
    }

    #[test]
    fn ragged_tail_ignored() {
        let samples: Vec<Sample> = (0..150).map(sample).collect(); // 5 months of days
        let split = temporal_split(&samples, 4); // declared span 4
        assert_eq!(split.test.len() + split.train.len(), 120);
    }

    #[test]
    #[should_panic(expected = "at least 3 months")]
    fn too_short_rejected() {
        temporal_split(&[], 2);
    }
}
