//! Negative sampling strategies for the Bernoulli/BCE pathway (Tab. I).
//!
//! Each strategy realizes a noise distribution `p_n(u, i)` and therefore a
//! different optimum for `φ_θ(u, i)` (Tab. I of the paper):
//!
//! | strategy                   | `p_n(u,i) ∝`          | `φ_θ(u,i) ~`                  |
//! |----------------------------|------------------------|-------------------------------|
//! | [`NegativeStrategy::UserFreq`]     | `p̂(u)`        | `log p̂(i\|u)`                |
//! | [`NegativeStrategy::ItemFreq`]     | `p̂(i)`        | `log p̂(u\|i)`                |
//! | [`NegativeStrategy::UserItemFreq`] | `p̂(u)·p̂(i)`  | PMI                           |
//! | [`NegativeStrategy::Uniform`]      | `1/(MK)`      | `log p̂(u,i)`                 |
//!
//! Users are represented by their pseudo-user histories, so "sampling a
//! user" means sampling one of the positive samples' histories — from the
//! empirical sample distribution (`p̂(u)`) or uniformly over *distinct*
//! users (`1/M`).

use crate::alias::AliasTable;
use crate::batch::{BceBatch, SeqBatch};
use crate::windowing::Sample;
use rand::seq::SliceRandom;
use rand::Rng;

/// The four noise distributions of Tab. I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum NegativeStrategy {
    /// `p_n(u,i) ∝ p̂(u)` — keep the positive's user, draw the item
    /// uniformly.
    UserFreq,
    /// `p_n(u,i) ∝ p̂(i)` — keep the positive's item, draw a user
    /// uniformly over distinct users.
    ItemFreq,
    /// `p_n(u,i) ∝ p̂(u)·p̂(i)` — user from the empirical sample
    /// distribution, item from the empirical item distribution,
    /// independently.
    UserItemFreq,
    /// `p_n(u,i) = 1/(MK)` — user uniform over distinct users, item uniform
    /// over the catalog.
    Uniform,
}

impl NegativeStrategy {
    /// All strategies, in Tab. I / Tab. VIII order.
    pub const ALL: [NegativeStrategy; 4] = [
        NegativeStrategy::UserFreq,
        NegativeStrategy::ItemFreq,
        NegativeStrategy::UserItemFreq,
        NegativeStrategy::Uniform,
    ];

    /// Display label matching the paper's table rows.
    pub fn label(self) -> &'static str {
        match self {
            NegativeStrategy::UserFreq => "p(u)",
            NegativeStrategy::ItemFreq => "p(i)",
            NegativeStrategy::UserItemFreq => "p(u)p(i)",
            NegativeStrategy::Uniform => "1/MK",
        }
    }
}

/// Draws negatives under a chosen [`NegativeStrategy`] and assembles
/// Tab. V-style labeled batches at a 1:1 positive:negative ratio.
pub struct NegativeSampler<'a> {
    samples: &'a [Sample],
    /// `samples` indices grouped per distinct user, for uniform-user draws.
    per_user: Vec<Vec<u32>>,
    /// Alias table over items by empirical frequency.
    item_empirical: AliasTable,
    num_items: u32,
}

impl<'a> NegativeSampler<'a> {
    /// Builds a sampler over the positive training `samples`.
    pub fn new(samples: &'a [Sample], num_items: u32) -> Self {
        assert!(!samples.is_empty(), "no samples to build negatives from");
        let mut by_user: std::collections::HashMap<u32, Vec<u32>> = std::collections::HashMap::new();
        let mut item_counts = vec![0f64; num_items as usize];
        for (ix, s) in samples.iter().enumerate() {
            by_user.entry(s.user).or_default().push(ix as u32);
            item_counts[s.target as usize] += 1.0;
        }
        let per_user: Vec<Vec<u32>> = by_user.into_values().collect();
        NegativeSampler {
            samples,
            per_user,
            item_empirical: AliasTable::new(&item_counts),
            num_items,
        }
    }

    /// A pseudo-user drawn from the empirical sample distribution `p̂(u)`.
    fn user_empirical(&self, rng: &mut impl Rng) -> &'a Sample {
        &self.samples[rng.gen_range(0..self.samples.len())]
    }

    /// A pseudo-user drawn uniformly over distinct users (`1/M`): pick a
    /// user uniformly, then one of their pseudo-user rows.
    fn user_uniform(&self, rng: &mut impl Rng) -> &'a Sample {
        let rows = &self.per_user[rng.gen_range(0..self.per_user.len())];
        &self.samples[rows[rng.gen_range(0..rows.len())] as usize]
    }

    /// One negative `(pseudo-user, item)` pair for a given positive.
    fn negative(&self, positive: &'a Sample, strategy: NegativeStrategy, rng: &mut impl Rng) -> (&'a Sample, u32) {
        match strategy {
            NegativeStrategy::UserFreq => (positive, rng.gen_range(0..self.num_items)),
            NegativeStrategy::ItemFreq => (self.user_uniform(rng), positive.target),
            NegativeStrategy::UserItemFreq => {
                (self.user_empirical(rng), self.item_empirical.sample(rng))
            }
            NegativeStrategy::Uniform => (self.user_uniform(rng), rng.gen_range(0..self.num_items)),
        }
    }

    /// Builds shuffled labeled batches with one sampled negative per
    /// positive (the paper's 1:1 ratio). `batch_size` counts total rows, so
    /// each batch holds `batch_size/2` positives.
    pub fn bce_batches(
        &self,
        strategy: NegativeStrategy,
        batch_size: usize,
        max_seq_len: usize,
        rng: &mut impl Rng,
    ) -> Vec<BceBatch> {
        self.bce_batches_with_ratio(strategy, 1, batch_size, max_seq_len, rng)
    }

    /// Generalization of [`NegativeSampler::bce_batches`] with `ratio`
    /// negatives per positive (the paper fixes 1; the ablation experiments
    /// sweep it). `batch_size` counts total rows and must be divisible by
    /// `1 + ratio`.
    pub fn bce_batches_with_ratio(
        &self,
        strategy: NegativeStrategy,
        ratio: usize,
        batch_size: usize,
        max_seq_len: usize,
        rng: &mut impl Rng,
    ) -> Vec<BceBatch> {
        assert!(ratio >= 1, "need at least one negative per positive");
        let group = 1 + ratio;
        assert!(
            batch_size >= group && batch_size.is_multiple_of(group),
            "batch_size {batch_size} must be a positive multiple of 1+ratio ({group})"
        );
        let mut order: Vec<usize> = (0..self.samples.len()).collect();
        order.shuffle(rng);
        let per_batch = batch_size / group;
        let mut out = Vec::with_capacity(order.len() / per_batch + 1);
        for chunk in order.chunks(per_batch) {
            let mut rows: Vec<(&Sample, u32, f32)> = Vec::with_capacity(chunk.len() * group);
            for &ix in chunk {
                let pos = &self.samples[ix];
                rows.push((pos, pos.target, 1.0));
                for _ in 0..ratio {
                    let (nu, ni) = self.negative(pos, strategy, rng);
                    rows.push((nu, ni, 0.0));
                }
            }
            rows.shuffle(rng);
            let histories: Vec<&[u32]> = rows.iter().map(|(s, _, _)| s.history.as_slice()).collect();
            out.push(BceBatch {
                histories: SeqBatch::from_histories(&histories, max_seq_len),
                items: rows.iter().map(|&(_, i, _)| i).collect(),
                labels: rows.iter().map(|&(_, _, l)| l).collect(),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn samples() -> Vec<Sample> {
        // user 0 very active (8 samples), users 1..=3 one sample each;
        // item 0 very popular.
        let mut v = Vec::new();
        for k in 0..8 {
            v.push(Sample { user: 0, history: vec![1], target: 0, day: k });
        }
        for u in 1..4 {
            v.push(Sample { user: u, history: vec![2], target: u, day: 10 + u });
        }
        v
    }

    #[test]
    fn bce_batches_have_balanced_labels() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let batches = sampler.bce_batches(NegativeStrategy::Uniform, 8, 3, &mut rng);
        let total_rows: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total_rows, 2 * s.len());
        let pos: f32 = batches.iter().flat_map(|b| b.labels.iter()).sum();
        assert_eq!(pos as usize, s.len());
    }

    #[test]
    fn ratio_batches_have_expected_label_mix() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let batches = sampler.bce_batches_with_ratio(NegativeStrategy::Uniform, 3, 8, 3, &mut rng);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, 4 * s.len());
        let pos: f32 = batches.iter().flat_map(|b| b.labels.iter()).sum();
        assert_eq!(pos as usize, s.len());
    }

    #[test]
    #[should_panic(expected = "multiple of 1+ratio")]
    fn ratio_batch_size_validated() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(14);
        sampler.bce_batches_with_ratio(NegativeStrategy::Uniform, 2, 8, 3, &mut rng);
    }

    #[test]
    fn user_freq_keeps_positive_user_history() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let pos = &s[0];
            let (nu, _) = sampler.negative(pos, NegativeStrategy::UserFreq, &mut rng);
            assert_eq!(nu.user, pos.user);
        }
    }

    #[test]
    fn item_freq_keeps_positive_item() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let pos = &s[9];
            let (_, ni) = sampler.negative(pos, NegativeStrategy::ItemFreq, &mut rng);
            assert_eq!(ni, pos.target);
        }
    }

    #[test]
    fn uniform_users_are_uniform_over_distinct() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            let u = sampler.user_uniform(&mut rng).user;
            counts[u as usize] += 1;
        }
        // each distinct user ~25% despite user 0 owning 8/11 samples
        for &c in &counts {
            let frac = c as f64 / 40_000.0;
            assert!((frac - 0.25).abs() < 0.02, "{counts:?}");
        }
    }

    #[test]
    fn empirical_users_follow_sample_mass() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut user0 = 0u32;
        for _ in 0..20_000 {
            if sampler.user_empirical(&mut rng).user == 0 {
                user0 += 1;
            }
        }
        let frac = user0 as f64 / 20_000.0;
        assert!((frac - 8.0 / 11.0).abs() < 0.02, "{frac}");
    }

    #[test]
    fn empirical_items_follow_target_mass() {
        let s = samples();
        let sampler = NegativeSampler::new(&s, 5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut item0 = 0u32;
        for _ in 0..20_000 {
            if sampler.item_empirical.sample(&mut rng) == 0 {
                item0 += 1;
            }
        }
        let frac = item0 as f64 / 20_000.0;
        assert!((frac - 8.0 / 11.0).abs() < 0.02, "{frac}");
    }
}
