//! Walker's alias method: O(1) sampling from an arbitrary categorical
//! distribution, used for the empirical negative samplers of Tab. I and the
//! sampled-softmax negative pool.

use rand::Rng;

/// An alias table over `n` categories.
#[derive(Clone, Debug)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from unnormalized non-negative weights. At least one
    /// weight must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one category");
        assert!(weights.iter().all(|&w| w >= 0.0), "weights must be non-negative");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // leftover buckets are numerically ~1
        for &s in small.iter().chain(large.iter()) {
            prob[s as usize] = 1.0;
        }
        AliasTable { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when empty (never: construction requires ≥ 1 category).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one category index.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i as u32
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        let n = 200_000;
        for _ in 0..n {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expected).abs() < 0.01, "cat {i}: {got} vs {expected}");
        }
    }

    #[test]
    fn single_category() {
        let table = AliasTable::new(&[5.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(table.sample(&mut rng), 0);
    }

    #[test]
    fn zero_weight_never_sampled() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = table.sample(&mut rng);
            assert!(s == 1 || s == 3, "sampled zero-weight category {s}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_rejected() {
        AliasTable::new(&[0.0, 0.0]);
    }
}
