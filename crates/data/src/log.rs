//! Raw interaction logs: the `(u, i, t)` records of the paper.

use crate::calendar::month_of;
use std::collections::HashMap;

/// A single purchase record `(u, i, t)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Interaction {
    /// Dense user id.
    pub user: u32,
    /// Dense item id.
    pub item: u32,
    /// Absolute day index (day 0 = start of the log).
    pub day: u32,
}

/// An interaction log: the full purchase history of one merchant, sorted by
/// `(user, day)` for efficient per-user timeline iteration.
#[derive(Clone, Debug, Default, serde::Serialize, serde::Deserialize)]
pub struct InteractionLog {
    records: Vec<Interaction>,
    num_users: u32,
    num_items: u32,
}

impl InteractionLog {
    /// Builds a log from records; sorts by `(user, day, item)` and derives
    /// the user/item universe sizes from the maximum ids seen.
    pub fn new(mut records: Vec<Interaction>) -> Self {
        records.sort_by_key(|r| (r.user, r.day, r.item));
        let num_users = records.iter().map(|r| r.user + 1).max().unwrap_or(0);
        let num_items = records.iter().map(|r| r.item + 1).max().unwrap_or(0);
        InteractionLog { records, num_users, num_items }
    }

    /// All records, sorted by `(user, day, item)`.
    pub fn records(&self) -> &[Interaction] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the log has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Size of the user id universe (max id + 1).
    pub fn num_users(&self) -> u32 {
        self.num_users
    }

    /// Size of the item id universe (max id + 1).
    pub fn num_items(&self) -> u32 {
        self.num_items
    }

    /// Number of months the log spans (based on the latest day).
    pub fn span_months(&self) -> u32 {
        self.records.iter().map(|r| month_of(r.day) + 1).max().unwrap_or(0)
    }

    /// Iterates `(user, timeline)` slices, one per user with ≥1 record.
    pub fn timelines(&self) -> TimelineIter<'_> {
        TimelineIter { records: &self.records, pos: 0 }
    }

    /// The timeline (sorted by day) of a single user.
    pub fn timeline_of(&self, user: u32) -> &[Interaction] {
        let start = self.records.partition_point(|r| r.user < user);
        let end = self.records.partition_point(|r| r.user <= user);
        &self.records[start..end]
    }

    /// Per-item interaction counts over the whole log.
    pub fn item_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items as usize];
        for r in &self.records {
            counts[r.item as usize] += 1;
        }
        counts
    }

    /// Per-user interaction counts over the whole log.
    pub fn user_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_users as usize];
        for r in &self.records {
            counts[r.user as usize] += 1;
        }
        counts
    }

    /// Per-item interaction counts restricted to days in `[day_lo, day_hi)`.
    pub fn item_counts_in(&self, day_lo: u32, day_hi: u32) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_items as usize];
        for r in &self.records {
            if r.day >= day_lo && r.day < day_hi {
                counts[r.item as usize] += 1;
            }
        }
        counts
    }

    /// Per-user interaction counts restricted to days in `[day_lo, day_hi)`.
    pub fn user_counts_in(&self, day_lo: u32, day_hi: u32) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_users as usize];
        for r in &self.records {
            if r.day >= day_lo && r.day < day_hi {
                counts[r.user as usize] += 1;
            }
        }
        counts
    }

    /// Retains only records for which `keep` returns true, preserving order.
    pub fn filtered(&self, keep: impl Fn(&Interaction) -> bool) -> InteractionLog {
        InteractionLog::new(self.records.iter().copied().filter(keep).collect())
    }

    /// Drops users and items with fewer than `min` interactions (the paper
    /// filters entities interacting with fewer than 3 counterparts). A
    /// single pass per side, as in the paper's preprocessing.
    pub fn filter_min_interactions(&self, min: u64) -> InteractionLog {
        let ic = self.item_counts();
        let uc = self.user_counts();
        self.filtered(|r| uc[r.user as usize] >= min && ic[r.item as usize] >= min)
    }

    /// Number of distinct users with at least one record.
    pub fn distinct_users(&self) -> usize {
        self.timelines().count()
    }

    /// Number of distinct items with at least one record.
    pub fn distinct_items(&self) -> usize {
        self.item_counts().iter().filter(|&&c| c > 0).count()
    }

    /// Distinct `(user, item)` pair count (the `s_{ui} = 1` cells of Fig. 1).
    pub fn distinct_pairs(&self) -> usize {
        let mut set: HashMap<(u32, u32), ()> = HashMap::with_capacity(self.records.len());
        for r in &self.records {
            set.insert((r.user, r.item), ());
        }
        set.len()
    }
}

/// Iterator over per-user timelines of a sorted log.
pub struct TimelineIter<'a> {
    records: &'a [Interaction],
    pos: usize,
}

impl<'a> Iterator for TimelineIter<'a> {
    type Item = (u32, &'a [Interaction]);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.records.len() {
            return None;
        }
        let user = self.records[self.pos].user;
        let start = self.pos;
        while self.pos < self.records.len() && self.records[self.pos].user == user {
            self.pos += 1;
        }
        Some((user, &self.records[start..self.pos]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> InteractionLog {
        InteractionLog::new(vec![
            Interaction { user: 1, item: 0, day: 5 },
            Interaction { user: 0, item: 2, day: 40 },
            Interaction { user: 0, item: 1, day: 3 },
            Interaction { user: 1, item: 2, day: 70 },
            Interaction { user: 0, item: 1, day: 10 },
        ])
    }

    #[test]
    fn sorted_by_user_then_day() {
        let log = sample_log();
        let days: Vec<(u32, u32)> = log.records().iter().map(|r| (r.user, r.day)).collect();
        assert_eq!(days, vec![(0, 3), (0, 10), (0, 40), (1, 5), (1, 70)]);
    }

    #[test]
    fn universe_sizes() {
        let log = sample_log();
        assert_eq!(log.num_users(), 2);
        assert_eq!(log.num_items(), 3);
        assert_eq!(log.span_months(), 3);
    }

    #[test]
    fn timelines_cover_all_records() {
        let log = sample_log();
        let total: usize = log.timelines().map(|(_, t)| t.len()).sum();
        assert_eq!(total, log.len());
        let users: Vec<u32> = log.timelines().map(|(u, _)| u).collect();
        assert_eq!(users, vec![0, 1]);
    }

    #[test]
    fn timeline_of_single_user() {
        let log = sample_log();
        let t = log.timeline_of(1);
        assert_eq!(t.len(), 2);
        assert!(t.iter().all(|r| r.user == 1));
        assert!(log.timeline_of(7).is_empty());
    }

    #[test]
    fn counts() {
        let log = sample_log();
        assert_eq!(log.item_counts(), vec![1, 2, 2]);
        assert_eq!(log.user_counts(), vec![3, 2]);
        assert_eq!(log.item_counts_in(0, 30), vec![1, 2, 0]);
    }

    #[test]
    fn distinct_pairs_dedup() {
        let log = sample_log();
        // (0,1) appears twice
        assert_eq!(log.distinct_pairs(), 4);
    }

    #[test]
    fn min_interaction_filter() {
        let log = sample_log();
        let filtered = log.filter_min_interactions(2);
        // item 0 has 1 interaction -> dropped; both users have >= 2
        assert!(filtered.records().iter().all(|r| r.item != 0));
        assert_eq!(filtered.len(), 4);
    }
}
