//! Loopback end-to-end test of the serving subsystem: a real `Server` on
//! an ephemeral port, hammered by concurrent client threads, with a model
//! hot-swap in the middle of traffic.
//!
//! The core assertion is *byte identity*: every HTTP response body must
//! equal the bytes produced by serializing a direct in-process
//! `FittedUniMatch` call through the same writer — micro-batching, the
//! embedding cache, and k-grouping must be invisible to clients.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use unimatch_core::persist::save_model;
use unimatch_core::{ModelHandle, UniMatch, UniMatchConfig};
use unimatch_data::DatasetProfile;
use unimatch_serve::{recommend_body, target_body, ServeConfig, Server};

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("unimatch_serve_e2e_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
/// The server closes every connection after one response, so reading to
/// EOF is the framing.
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send head");
    stream.write_all(body).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, response[head_end + 4..].to_vec())
}

/// Reads the value of a single-sample metric line (`name value` or
/// `name{labels} value`).
fn metric_value(metrics: &str, prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing from:\n{metrics}"))
}

#[test]
fn concurrent_serving_is_byte_identical_and_survives_reload() {
    let dir = tmp_dir("full");
    let log = DatasetProfile::EComp.generate(0.15, 21).filter_min_interactions(3);
    let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
    let model_a = UniMatch::new(cfg.clone()).fit(log.clone());
    let model_b = UniMatch::new(UniMatchConfig { seed: 77, ..cfg.clone() }).fit(log.clone());
    let path_a = dir.join("a.json");
    let path_b = dir.join("b.json");
    save_model(&model_a.model, &path_a).expect("save a");
    save_model(&model_b.model, &path_b).expect("save b");

    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &path_a, log).expect("initial checkpoint"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind ephemeral port");
    let addr = server.addr().to_string();
    let num_items = handle.current().fitted.num_items() as u32;
    assert!(num_items > 16, "dataset too small for the test vectors");

    // -- phase 1: concurrent clients, responses byte-identical to direct calls
    let fitted_a = handle.current();
    let mut clients = Vec::new();
    for t in 0..8u32 {
        // /recommend: distinct histories and k so batches mix k-groups
        let history: Vec<u32> = (0..3 + t % 3).map(|j| (t * 5 + j) % num_items).collect();
        let k = 3 + (t as usize % 4);
        let expected = recommend_body(k, &fitted_a.fitted.recommend_items(&history, k));
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let ids: Vec<String> = history.iter().map(u32::to_string).collect();
            let body = format!("{{\"history\":[{}],\"k\":{k}}}", ids.join(","));
            let (status, got) = request(&addr, "POST", "/recommend", body.as_bytes());
            assert_eq!(status, 200, "recommend {t}: {}", String::from_utf8_lossy(&got));
            assert_eq!(got, expected, "recommend {t} not byte-identical");
        }));
    }
    for t in 0..8u32 {
        // /target: distinct items and k
        let item = (t * 7) % num_items;
        let k = 2 + (t as usize % 4);
        let expected = target_body(k, &fitted_a.fitted.target_users(item, k));
        let addr = addr.clone();
        clients.push(std::thread::spawn(move || {
            let body = format!("{{\"item\":{item},\"k\":{k}}}");
            let (status, got) = request(&addr, "POST", "/target", body.as_bytes());
            assert_eq!(status, 200, "target {t}: {}", String::from_utf8_lossy(&got));
            assert_eq!(got, expected, "target {t} not byte-identical");
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // repeat one history so the embedding cache sees a hit
    let history = [1u32, 2, 3];
    let expected = recommend_body(5, &fitted_a.fitted.recommend_items(&history, 5));
    for _ in 0..2 {
        let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
        assert_eq!(status, 200);
        assert_eq!(got, expected);
    }

    // -- phase 2: hot-swap mid-traffic; no admitted request may fail
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let (addr, stop) = (addr.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let (status, body) =
                    request(&addr, "POST", "/recommend", b"{\"history\":[4,5,6],\"k\":4}");
                assert_eq!(
                    status,
                    200,
                    "request failed during reload: {}",
                    String::from_utf8_lossy(&body)
                );
                served += 1;
            }
            served
        })
    };
    let reload_body = format!("{{\"checkpoint\":{:?}}}", path_b.to_str().expect("utf8 path"));
    let (status, body) = request(&addr, "POST", "/reload", reload_body.as_bytes());
    assert_eq!(status, 200, "reload: {}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).expect("utf8 reload body");
    assert!(body.contains("\"version\":2"), "{body}");
    stop.store(true, Ordering::Relaxed);
    let served_during_reload = hammer.join().expect("hammer thread");
    assert!(served_during_reload > 0, "hammer never got a request through");

    // post-swap responses come from model B (and stay byte-identical)
    let fitted_b = handle.current();
    assert_eq!(fitted_b.version, 2);
    let expected_b = recommend_body(5, &fitted_b.fitted.recommend_items(&history, 5));
    let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected_b, "post-reload response must come from the new model");
    assert_ne!(expected_b, expected, "models a and b should rank differently");

    // -- phase 3: malformed input and unknown routes
    let (status, _) = request(&addr, "POST", "/recommend", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = request(&addr, "POST", "/recommend", b"{\"history\":[],\"k\":3}");
    assert_eq!(status, 400, "empty history must be rejected");
    let (status, body) =
        request(&addr, "POST", "/recommend", format!("{{\"history\":[{num_items}]}}").as_bytes());
    assert_eq!(status, 400, "out-of-vocabulary history must be rejected");
    assert!(String::from_utf8_lossy(&body).contains("vocabulary"));
    let (status, _) = request(&addr, "POST", "/target", b"{\"k\":3}");
    assert_eq!(status, 400, "missing item must be rejected");
    let (status, _) = request(&addr, "GET", "/recommend", b"");
    assert_eq!(status, 405);
    let (status, _) = request(&addr, "GET", "/nope", b"");
    assert_eq!(status, 404);
    let (status, _) = request(&addr, "POST", "/reload", b"{\"checkpoint\":\"/missing.json\"}");
    assert_eq!(status, 500, "reload of a missing checkpoint must fail without crashing");
    let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200, "failed reload must leave the server serving");
    assert_eq!(got, expected_b);

    // -- phase 4: the metrics endpoint reflects everything above
    let (status, metrics) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let metrics = String::from_utf8(metrics).expect("utf8 metrics");
    assert!(metric_value(&metrics, "unimatch_requests_total{route=\"recommend\"}") >= 14.0);
    assert!(metric_value(&metrics, "unimatch_requests_total{route=\"target\"}") >= 8.0);
    assert!(metric_value(&metrics, "unimatch_requests_total{route=\"reload\"}") >= 2.0);
    assert!(metric_value(&metrics, "unimatch_responses_total{class=\"4xx\"}") >= 4.0);
    assert!(
        metric_value(&metrics, "unimatch_batch_size_count{route=\"recommend\"}") >= 1.0,
        "batch-size histogram must have observations"
    );
    assert!(metric_value(&metrics, "unimatch_embedding_cache_hits_total") >= 1.0);
    assert!(metric_value(&metrics, "unimatch_reloads_total") >= 1.0);
    assert_eq!(metric_value(&metrics, "unimatch_model_version"), 2.0);

    // -- phase 5: graceful shutdown; the port stops accepting
    drop(server);
    assert!(TcpStream::connect(&addr).is_err(), "server still accepting after shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

/// A parsed exposition: series name with labels → value, in file order.
fn parse_exposition(text: &str) -> Vec<(String, f64)> {
    let mut series = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let (name_part, value_part) =
            line.rsplit_once(' ').unwrap_or_else(|| panic!("line {ln} has no value: {line:?}"));
        let value: f64 = value_part
            .parse()
            .unwrap_or_else(|_| panic!("line {ln} value not a number: {line:?}"));
        assert!(!value.is_nan(), "line {ln} value is NaN: {line:?}");
        let bare = name_part.split('{').next().unwrap();
        assert!(
            !bare.is_empty()
                && bare.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "line {ln} has a malformed metric name: {line:?}"
        );
        if let Some(open) = name_part.find('{') {
            assert!(name_part.ends_with('}'), "line {ln} labels not closed: {line:?}");
            let labels = &name_part[open + 1..name_part.len() - 1];
            for pair in labels.split(',') {
                let (k, v) = pair
                    .split_once('=')
                    .unwrap_or_else(|| panic!("line {ln} label without '=': {line:?}"));
                assert!(
                    k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                    "line {ln} bad label key {k:?}"
                );
                assert!(
                    v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                    "line {ln} label value not quoted: {line:?}"
                );
            }
        }
        series.push((name_part.to_string(), value));
    }
    series
}

/// Checks every histogram family: buckets cumulative and non-decreasing,
/// terminated by `le="+Inf"`, with a matching `_count` series.
fn check_histograms(series: &[(String, f64)]) {
    let mut last: Option<(String, f64)> = None; // (family key, running bucket count)
    let mut inf_counts: Vec<(String, f64)> = Vec::new();
    for (name, value) in series {
        if let Some(open) = name.find("_bucket{") {
            let family = format!(
                "{}{}",
                &name[..open],
                name[open + 7..].replace(['{', '}'], ",")
            );
            let family: String =
                family.split(',').filter(|p| !p.starts_with("le=")).collect::<Vec<_>>().join(",");
            match &mut last {
                Some((prev, running)) if *prev == family => {
                    assert!(
                        *value >= *running,
                        "histogram {name}: bucket {value} below previous cumulative {running}"
                    );
                    *running = *value;
                }
                _ => last = Some((family.clone(), *value)),
            }
            if name.contains("le=\"+Inf\"") {
                inf_counts.push((family, *value));
            }
        }
    }
    assert!(!inf_counts.is_empty(), "exposition has no histogram families");
    for (family, inf) in inf_counts {
        let base = family.split(',').next().unwrap().to_string();
        let labels: Vec<&str> = family.split(',').skip(1).filter(|s| !s.is_empty()).collect();
        let count = series
            .iter()
            .find(|(n, _)| {
                n.starts_with(&format!("{base}_count")) && labels.iter().all(|l| n.contains(l))
            })
            .unwrap_or_else(|| panic!("histogram {family} has no _count series"));
        assert_eq!(count.1, inf, "histogram {family}: _count must equal the +Inf bucket");
        assert!(
            series.iter().any(|(n, _)| n.starts_with(&format!("{base}_sum"))),
            "histogram {family} has no _sum series"
        );
    }
}

/// Serializes the tests that flip the process-global obs flag, so one
/// test disabling collection cannot drop another test's spans mid-run.
static OBS_FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[test]
fn metrics_exposition_is_well_formed_and_counters_are_monotonic() {
    let _obs_guard = OBS_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("metrics");
    let log = DatasetProfile::EComp.generate(0.1, 31).filter_min_interactions(2);
    let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
    let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
    let path = dir.join("m.json");
    save_model(&fitted.model, &path).expect("save");
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &path, log).expect("checkpoint"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle,
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // With observability on, the process-global registry series (ANN search
    // spans fired by the recommend path) must appear in the same scrape as
    // the server's own series — the "one endpoint" contract.
    unimatch_obs::set_enabled(true);
    for _ in 0..3 {
        let (status, _) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
        assert_eq!(status, 200);
    }
    let (status, first) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let first = String::from_utf8(first).expect("utf8 metrics");

    let (status, _) = request(&addr, "POST", "/recommend", b"{\"history\":[2,3,4],\"k\":4}");
    assert_eq!(status, 200);
    let (status, _) = request(&addr, "POST", "/recommend", b"{not json");
    assert_eq!(status, 400);
    let (status, second) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let second = String::from_utf8(second).expect("utf8 metrics");
    unimatch_obs::set_enabled(false);

    // Every line of both scrapes is structurally well-formed.
    let s1 = parse_exposition(&first);
    let s2 = parse_exposition(&second);
    check_histograms(&s1);
    check_histograms(&s2);

    // Serving and registry series share the scrape.
    for required in
        ["unimatch_requests_total{route=\"recommend\"}", "unimatch_ann_searches_total"]
    {
        assert!(
            s2.iter().any(|(n, _)| n.starts_with(required)),
            "scrape missing {required}:\n{second}"
        );
    }

    // Counters and histogram accumulators never go backwards between
    // scrapes; the exercised request counter strictly advances.
    let lookup = |set: &[(String, f64)], name: &str| {
        set.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    };
    let mut compared = 0;
    for (name, v1) in &s1 {
        let base = name.split('{').next().unwrap();
        let monotonic = base.ends_with("_total")
            || base.ends_with("_count")
            || base.ends_with("_sum")
            || base.ends_with("_bucket");
        if !monotonic {
            continue;
        }
        if let Some(v2) = lookup(&s2, name) {
            assert!(v2 >= *v1, "{name} went backwards: {v1} -> {v2}");
            compared += 1;
        }
    }
    assert!(compared > 10, "too few monotonic series compared ({compared})");
    let key = "unimatch_requests_total{route=\"recommend\"}";
    assert!(
        lookup(&s2, key).expect("recommend counter") > lookup(&s1, key).expect("recommend counter"),
        "request counter must strictly increase after a request"
    );

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// A sharded server must advertise its fan-out on `/healthz` and expose
/// the per-shard search and merge histograms through the same `/metrics`
/// scrape as every other series, with responses still byte-identical to
/// a direct in-process call on the sharded index.
#[test]
fn sharded_serving_reports_fanout_and_shard_metrics() {
    let _obs_guard = OBS_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("sharded");
    let log = DatasetProfile::EComp.generate(0.1, 33).filter_min_interactions(2);
    let cfg = UniMatchConfig {
        max_seq_len: 8,
        epochs_per_month: 1,
        retriever: unimatch_core::RetrieverKind::Exact,
        shards: 3,
        ..Default::default()
    };
    let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
    let path = dir.join("m.json");
    save_model(&fitted.model, &path).expect("save");
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &path, log).expect("checkpoint"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let (status, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8(health).expect("utf8 healthz");
    assert!(health.contains("\"shards\":3"), "healthz must report the fan-out: {health}");
    assert!(health.contains("\"retriever\":\"bruteforce\""), "{health}");

    unimatch_obs::set_enabled(true);
    let fitted = handle.current();
    let history = [1u32, 2, 3];
    let expected = recommend_body(5, &fitted.fitted.recommend_items(&history, 5));
    let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "sharded serving must stay byte-identical");
    let (status, _) = request(&addr, "POST", "/target", b"{\"item\":1,\"k\":5}");
    assert_eq!(status, 200);
    let (status, scrape) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    unimatch_obs::set_enabled(false);
    let scrape = String::from_utf8(scrape).expect("utf8 metrics");

    // Every shard's search span and the merge span render as well-formed
    // histogram families in the unified exposition.
    let series = parse_exposition(&scrape);
    check_histograms(&series);
    for shard in 0..3 {
        let family = format!("unimatch_shard_search_us_count{{shard=\"{shard}\"}}");
        assert!(
            metric_value(&scrape, &family) >= 1.0,
            "shard {shard} recorded no searches:\n{scrape}"
        );
    }
    assert!(
        metric_value(&scrape, "unimatch_shard_merge_us_count") >= 1.0,
        "merge span missing from scrape:\n{scrape}"
    );

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}

/// A chain-armed server must advertise its spec on `/healthz`, serve
/// byte-identical (and repeatable) reranked responses, expose the
/// per-stage latency spans on the unified `/metrics` scrape, and refuse
/// a reload whose checkpoint vocabulary invalidates the configured
/// business rules — with the old version serving untouched afterwards.
#[test]
fn reranked_serving_is_byte_identical_and_reload_guards_rule_vocab() {
    let _obs_guard = OBS_FLAG_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp_dir("rerank");
    // Checkpoint A is trained on a larger log than the serving log, so
    // its item vocabulary strictly contains the rules' ids; checkpoint B
    // (small log) cannot serve the denied item — reloading it while the
    // rules are armed must be rejected.
    let big_log = DatasetProfile::EComp.generate(0.15, 8).filter_min_interactions(3);
    let small_log = DatasetProfile::EComp.generate(0.05, 3).filter_min_interactions(3);
    let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
    let model_a = UniMatch::new(cfg.clone()).fit(big_log);
    let model_b = UniMatch::new(cfg.clone()).fit(small_log.clone());
    let big_items = model_a.num_items() as u32;
    let small_items = model_b.num_items() as u32;
    assert!(small_items < big_items, "test needs distinct vocabulary sizes");
    let path_a = dir.join("a.json");
    let path_b = dir.join("b.json");
    save_model(&model_a.model, &path_a).expect("save a");
    save_model(&model_b.model, &path_b).expect("save b");

    // Deny an id only the big checkpoint can serve, and cap a category
    // over the small vocabulary so both rule stages have material.
    let denied = big_items - 1;
    let categories: Vec<String> =
        (0..small_items).map(|id| format!("[{},{}]", id, id % 5)).collect();
    let rules_json =
        format!("{{\"deny\":[{denied}],\"categories\":[{}]}}", categories.join(","));
    let rules = unimatch_rerank::BusinessRules::parse(
        &unimatch_data::json::Json::parse(rules_json.as_bytes()).expect("json"),
    )
    .expect("rules");
    let spec = "debias@0.5,mmr@0.3,filter,explore@0.1";
    let serve_cfg = UniMatchConfig {
        rerank: unimatch_core::RerankConfig {
            spec: spec.to_string(),
            rules: Some(Arc::new(rules)),
        },
        ..cfg
    };
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(serve_cfg), &path_a, small_log)
            .expect("checkpoint A must satisfy the rules vocabulary"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // /healthz advertises the canonical chain spec.
    let (status, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8(health).expect("utf8 healthz");
    assert!(health.contains(&format!("\"rerank\":\"{spec}\"")), "{health}");

    // Reranked responses are byte-identical to the direct call and
    // repeatable — the seeded chain is a pure function of the request.
    unimatch_obs::set_enabled(true);
    let fitted = handle.current();
    let history = [1u32, 2, 3];
    let expected = recommend_body(5, &fitted.fitted.recommend_items(&history, 5));
    for round in 0..2 {
        let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
        assert_eq!(status, 200);
        assert_eq!(got, expected, "round {round} diverged from the direct chained call");
    }
    let expected_t = target_body(4, &fitted.fitted.target_users(2, 4));
    let (status, got) = request(&addr, "POST", "/target", b"{\"item\":2,\"k\":4}");
    assert_eq!(status, 200);
    assert_eq!(got, expected_t, "target path must run the same chain");

    // Per-stage latency spans appear on the unified scrape.
    let (status, scrape) = request(&addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    unimatch_obs::set_enabled(false);
    let scrape = String::from_utf8(scrape).expect("utf8 metrics");
    check_histograms(&parse_exposition(&scrape));
    for stage in ["debias", "mmr", "filter", "explore"] {
        let family = format!("unimatch_rerank_stage_us_count{{stage=\"{stage}\"}}");
        assert!(
            metric_value(&scrape, &family) >= 1.0,
            "stage {stage} recorded no spans:\n{scrape}"
        );
    }

    // Reloading a checkpoint whose vocabulary cannot satisfy the armed
    // rules must fail, leave the version untouched, and keep serving the
    // old model byte-for-byte.
    let reload_body = format!("{{\"checkpoint\":{:?}}}", path_b.to_str().expect("utf8 path"));
    let (status, body) = request(&addr, "POST", "/reload", reload_body.as_bytes());
    assert_eq!(status, 500, "vocab-invalidating reload must be rejected: {}",
        String::from_utf8_lossy(&body));
    assert!(
        String::from_utf8_lossy(&body).contains("rules"),
        "error should name the rules: {}",
        String::from_utf8_lossy(&body)
    );
    assert_eq!(handle.version(), 1, "failed reload must not bump the version");
    let (status, got) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    assert_eq!(got, expected, "old version must keep serving after a rejected reload");

    drop(server);
    std::fs::remove_dir_all(&dir).ok();
}
