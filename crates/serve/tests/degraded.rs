//! Degraded-serving end-to-end tests: partial shard failure and the
//! brownout controller under live HTTP traffic.
//!
//! The contracts under test are the robustness guarantees layered on the
//! chaos suite:
//!
//! * **partial results beat no results**: with a quorum policy
//!   (`min_shards`), a wedged shard turns into `200` responses flagged
//!   `"degraded":true` plus `unimatch_shard_errors_total` /
//!   `unimatch_degraded_responses_total` series — never a corrupt
//!   success, never an unflagged partial one;
//! * **strict stays strict**: without a quorum policy a shard failure is
//!   a typed `500`, exactly the historical all-or-nothing contract;
//! * **recovery is bitwise**: once the fault plan clears, responses are
//!   byte-identical to the pre-fault capture;
//! * **brownout closes the loop**: sustained deadline misses drive the
//!   ladder to `shed`, new queries answer `503` naming the brownout, the
//!   level shows on `/healthz` and `/metrics`, and a calm queue walks the
//!   level back to zero with full byte parity.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};
use unimatch_core::persist::save_model;
use unimatch_core::{ModelHandle, ShardPolicy, UniMatch, UniMatchConfig};
use unimatch_data::{DatasetProfile, InteractionLog};
use unimatch_faults::{FaultKind, FaultPlan, FaultRule};
use unimatch_serve::{BrownoutSpec, ServeConfig, Server};

/// Serializes the tests in this binary: an armed fault plan is process
/// state, and a plan one test arms must not bleed into another's server.
fn fault_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One fitted model, saved once and shared by every test. The fixture
/// config shards both towers two ways so per-shard fault points
/// (`ann.shard.search.0`) have a seam to hit.
struct Fixture {
    checkpoint: PathBuf,
    log: InteractionLog,
    cfg: UniMatchConfig,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let dir =
            std::env::temp_dir().join(format!("unimatch_serve_degraded_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tmp dir");
        let log = DatasetProfile::EComp.generate(0.12, 17).filter_min_interactions(3);
        let cfg =
            UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, shards: 2, ..Default::default() };
        let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
        let checkpoint = dir.join("model.json");
        save_model(&fitted.model, &checkpoint).expect("save fixture checkpoint");
        Fixture { checkpoint, log, cfg }
    })
}

/// A fresh handle over the shared checkpoint with the given shard
/// policy — the policy is serving-side state, so every test picks its
/// own without refitting.
fn handle_with_policy(policy: ShardPolicy) -> Arc<ModelHandle> {
    let f = fixture();
    let cfg = UniMatchConfig { shard_policy: policy, ..f.cfg.clone() };
    Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &f.checkpoint, f.log.clone())
            .expect("fixture checkpoint loads"),
    )
}

/// One HTTP/1.1 request over a fresh connection; returns
/// `(status, head, body)` so callers can assert on headers too.
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, String, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send head");
    stream.write_all(body).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf8 head").to_string();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, head, response[head_end + 4..].to_vec())
}

/// Reads the value of a single-sample metric line (`name value` or
/// `name{labels} value`).
fn metric_value(metrics: &str, prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing from:\n{metrics}"))
}

fn scrape(addr: &str) -> String {
    let (status, _, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    String::from_utf8(body).expect("utf8 metrics")
}

const RECOMMEND: &[u8] = b"{\"history\":[1,2,3],\"k\":5}";
const TARGET: &[u8] = b"{\"item\":1,\"k\":5}";

#[test]
fn wedged_shard_serves_flagged_200s_then_recovers_bitwise() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    let server = Server::start(
        "127.0.0.1:0",
        handle_with_policy(ShardPolicy { deadline: None, min_shards: Some(1) }),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // Healthy baseline: full-quorum answers carry no degraded flag.
    let (status, _, healthy_rec) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&healthy_rec));
    let (status, _, healthy_tgt) = request(&addr, "POST", "/target", TARGET);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&healthy_tgt));
    for body in [&healthy_rec, &healthy_tgt] {
        assert!(
            !String::from_utf8_lossy(body).contains("degraded"),
            "healthy responses must stay byte-identical to the pre-isolation wire format"
        );
    }

    // Wedge shard 0 of every fan-out: quorum (1 of 2) still holds, so
    // both routes keep answering 200 — flagged, counted, never silent.
    unimatch_faults::set_plan(FaultPlan {
        seed: 51,
        rules: vec![FaultRule::new("ann.shard.search.0", FaultKind::IoError).with_probability(1.0)],
    });
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let body = String::from_utf8(body).expect("utf8 body");
    assert!(body.contains("\"degraded\":true"), "partial result must be flagged:\n{body}");
    let (status, _, body) = request(&addr, "POST", "/target", TARGET);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(
        String::from_utf8_lossy(&body).contains("\"degraded\":true"),
        "targeting partial result must be flagged too"
    );

    let metrics = scrape(&addr);
    assert!(
        metric_value(&metrics, "unimatch_shard_errors_total{shard=\"0\"}") >= 2.0,
        "the wedged shard must be attributed by label:\n{metrics}"
    );
    assert!(
        metric_value(&metrics, "unimatch_degraded_responses_total{reason=\"shard\"}") >= 2.0,
        "every flagged response must be counted:\n{metrics}"
    );

    // Fault clears → the very next responses are byte-identical to the
    // healthy baseline: no residue, no flag, no reordering.
    unimatch_faults::clear();
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200);
    assert_eq!(body, healthy_rec, "recovery must be bitwise");
    let (status, _, body) = request(&addr, "POST", "/target", TARGET);
    assert_eq!(status, 200);
    assert_eq!(body, healthy_tgt, "targeting recovery must be bitwise");

    drop(server);
    assert!(TcpStream::connect(&addr).is_err(), "server still accepting after shutdown");
}

#[test]
fn strict_policy_turns_shard_failure_into_typed_500() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    // Default policy: no deadline, no quorum — all-or-nothing, exactly
    // the pre-isolation contract.
    let server = Server::start(
        "127.0.0.1:0",
        handle_with_policy(ShardPolicy::default()),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    unimatch_faults::set_plan(FaultPlan {
        seed: 52,
        rules: vec![FaultRule::new("ann.shard.search.0", FaultKind::IoError).with_probability(1.0)],
    });
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 500, "strict policy must refuse partial results");
    assert!(
        String::from_utf8_lossy(&body).contains("error"),
        "failure must be a typed JSON error:\n{}",
        String::from_utf8_lossy(&body)
    );

    // Clearing the plan restores clean 200s on the same server.
    unimatch_faults::clear();
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert!(!String::from_utf8_lossy(&body).contains("degraded"));
}

#[test]
fn brownout_sheds_under_deadline_misses_and_walks_back_to_zero() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    // up=1: a single controller sample with deadline misses escalates.
    // down=8 @ 25 ms: recovery needs 200 ms of calm — wide enough to
    // observe shedding, short enough for the test to watch it descend.
    let spec = BrownoutSpec::parse("shed;up=1;down=8;interval-ms=25").expect("valid spec");
    let server = Server::start(
        "127.0.0.1:0",
        handle_with_policy(ShardPolicy::default()),
        ServeConfig {
            batch_window: Duration::from_millis(1),
            max_batch: 1,
            request_deadline: Duration::from_millis(10),
            brownout: Some(spec),
            ..Default::default()
        },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    // Healthy baseline with the controller armed but idle: level 0,
    // bodies unflagged.
    let (status, _, healthy_rec) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&healthy_rec));
    assert!(!String::from_utf8_lossy(&healthy_rec).contains("degraded"));
    let metrics = scrape(&addr);
    assert_eq!(metric_value(&metrics, "unimatch_brownout_level"), 0.0);
    let (status, _, body) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(
        String::from_utf8_lossy(&body).contains("\"brownout\":0"),
        "healthz must report the idle level:\n{}",
        String::from_utf8_lossy(&body)
    );

    // Storm: every batch takes 80 ms while the queue deadline is 10 ms
    // and max_batch is 1, so queued jobs expire — sustained deadline
    // misses are exactly the controller's pressure signal.
    unimatch_faults::set_plan(FaultPlan {
        seed: 53,
        rules: vec![
            FaultRule::new("serve.batch", FaultKind::LatencyUs(80_000)).with_probability(1.0)
        ],
    });
    let stop = Arc::new(AtomicBool::new(false));
    let storm: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let _ = request(&addr, "POST", "/recommend", RECOMMEND);
                }
            })
        })
        .collect();

    // The ladder must reach `shed` and refuse new queries by name.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut saw_brownout_shed = false;
    while Instant::now() < deadline {
        if metric_value(&scrape(&addr), "unimatch_brownout_level") >= 1.0 {
            let (status, head, body) = request(&addr, "POST", "/recommend", RECOMMEND);
            if status == 503 && String::from_utf8_lossy(&body).contains("brownout") {
                assert!(head.contains("Retry-After:"), "brownout shed needs Retry-After:\n{head}");
                saw_brownout_shed = true;
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    for t in storm {
        t.join().expect("storm thread");
    }
    assert!(saw_brownout_shed, "ladder never reached shed under sustained deadline misses");
    let metrics = scrape(&addr);
    assert!(
        metric_value(&metrics, "unimatch_requests_shed_total{reason=\"brownout\"}") >= 1.0,
        "brownout sheds must be attributed on /metrics:\n{metrics}"
    );

    // Calm queue → the controller walks the level back to zero and the
    // next response is byte-identical to the pre-storm baseline.
    unimatch_faults::clear();
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut recovered = false;
    while Instant::now() < deadline {
        if metric_value(&scrape(&addr), "unimatch_brownout_level") == 0.0 {
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(recovered, "brownout level never recovered to 0 after the storm");
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    assert_eq!(body, healthy_rec, "post-brownout recovery must be bitwise");
}

#[test]
fn healthz_reports_uptime_brownout_and_last_reload() {
    let _guard = fault_lock();
    unimatch_faults::clear();
    let server = Server::start(
        "127.0.0.1:0",
        handle_with_policy(ShardPolicy::default()),
        ServeConfig::default(),
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let (status, _, body) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let body = String::from_utf8(body).expect("utf8 healthz");
    assert!(body.contains("\"uptime_s\":"), "healthz must report uptime:\n{body}");
    assert!(body.contains("\"brownout\":0"), "no controller configured → level 0:\n{body}");
    assert!(body.contains("\"last_reload\":\"none\""), "no reload yet:\n{body}");

    // A successful reload (same checkpoint) is recorded as accepted.
    let (status, _, body) = request(&addr, "POST", "/reload", b"{}");
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
    let (_, _, body) = request(&addr, "GET", "/healthz", b"");
    let body = String::from_utf8(body).expect("utf8 healthz");
    assert!(
        body.contains("\"last_reload\":{\"outcome\":\"accepted\",\"version\":"),
        "accepted reload must show on healthz:\n{body}"
    );

    // A rejected reload keeps serving and flips the outcome.
    let (status, _, _) =
        request(&addr, "POST", "/reload", b"{\"checkpoint\":\"/nonexistent/model.json\"}");
    assert_eq!(status, 500);
    let (_, _, body) = request(&addr, "GET", "/healthz", b"");
    let body = String::from_utf8(body).expect("utf8 healthz");
    assert!(
        body.contains("\"last_reload\":{\"outcome\":\"rejected\""),
        "rejected reload must show on healthz:\n{body}"
    );
    let (status, _, body) = request(&addr, "POST", "/recommend", RECOMMEND);
    assert_eq!(status, 200, "{}", String::from_utf8_lossy(&body));
}
