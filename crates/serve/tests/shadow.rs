//! End-to-end tests of the shadow deployment plane: a live server with a
//! second pipeline mirroring sampled traffic off the critical path.
//!
//! Two invariants matter:
//!
//! 1. **Shadow-off is byte-identical.** A server started without a
//!    shadow must expose not a single `unimatch_shadow_*` series nor a
//!    `"shadow"` key on `/healthz` — the plane leaves zero trace.
//! 2. **The primary never notices.** With a shadow armed (even at
//!    sample rate 1.0), every response body stays byte-identical to a
//!    direct in-process call on the primary; the paired comparison
//!    series fill in asynchronously. An A/A shadow (same checkpoint)
//!    must converge to overlap 1.0 with zero score delta.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use unimatch_core::persist::save_model;
use unimatch_core::{ModelHandle, UniMatch, UniMatchConfig};
use unimatch_data::DatasetProfile;
use unimatch_serve::{recommend_body, target_body, ServeConfig, Server, ShadowSpec};

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("unimatch_serve_shadow_{}_{}", name, std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// One HTTP/1.1 request over a fresh connection; returns (status, body).
fn request(addr: &str, method: &str, path: &str, body: &[u8]) -> (u16, Vec<u8>) {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    stream
        .write_all(
            format!(
                "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send head");
    stream.write_all(body).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let head_end = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a header/body separator");
    let head = std::str::from_utf8(&response[..head_end]).expect("utf8 head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status code in status line");
    (status, response[head_end + 4..].to_vec())
}

fn metric_value(metrics: &str, prefix: &str) -> f64 {
    metrics
        .lines()
        .find(|l| l.starts_with(prefix))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {prefix} missing from:\n{metrics}"))
}

fn scrape(addr: &str) -> String {
    let (status, body) = request(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    String::from_utf8(body).expect("utf8 metrics")
}

/// Polls `/metrics` until the mirrored pair count reaches `want` (the
/// shadow worker runs asynchronously behind a queue).
fn await_pairs(addr: &str, want: f64) -> String {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let text = scrape(addr);
        let pairs = metric_value(&text, "unimatch_shadow_pairs_total{route=\"recommend\"}")
            + metric_value(&text, "unimatch_shadow_pairs_total{route=\"target\"}");
        if pairs >= want {
            return text;
        }
        assert!(
            Instant::now() < deadline,
            "shadow worker mirrored only {pairs}/{want} pairs:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Trains one small model, saves it, and returns (checkpoint dir, log,
/// training config).
fn fixture(name: &str) -> (PathBuf, unimatch_data::InteractionLog, UniMatchConfig) {
    let dir = tmp_dir(name);
    let log = DatasetProfile::EComp.generate(0.12, 21).filter_min_interactions(3);
    let cfg = UniMatchConfig { max_seq_len: 8, epochs_per_month: 1, ..Default::default() };
    let fitted = UniMatch::new(cfg.clone()).fit(log.clone());
    save_model(&fitted.model, dir.join("model.json")).expect("save model");
    (dir, log, cfg)
}

#[test]
fn shadow_off_serving_exposes_no_shadow_surface() {
    let (dir, log, cfg) = fixture("off");
    let handle = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), dir.join("model.json"), log)
            .expect("checkpoint"),
    );
    let server = Server::start(
        "127.0.0.1:0",
        handle,
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
    )
    .expect("bind");
    let addr = server.addr().to_string();

    let (status, _) = request(&addr, "POST", "/recommend", b"{\"history\":[1,2,3],\"k\":5}");
    assert_eq!(status, 200);
    let text = scrape(&addr);
    assert!(
        !text.contains("unimatch_shadow"),
        "shadow-off scrape leaked shadow series:\n{text}"
    );
    let (status, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8(health).expect("utf8 healthz");
    assert!(!health.contains("\"shadow\""), "shadow-off healthz leaked the block: {health}");
}

#[test]
fn aa_shadow_mirrors_everything_with_perfect_overlap() {
    let (dir, log, cfg) = fixture("aa");
    let path = dir.join("model.json");
    let primary = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg.clone()), &path, log.clone())
            .expect("primary checkpoint"),
    );
    // A/A: the shadow serves the very same checkpoint and config
    let shadow = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &path, log).expect("shadow checkpoint"),
    );
    let server = Server::start_with_shadow(
        "127.0.0.1:0",
        primary.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
        Some(ShadowSpec::new(shadow, 1.0)),
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let fitted = primary.current();
    let num_items = fitted.fitted.num_items() as u32;

    // primary responses stay byte-identical to direct in-process calls
    let mut sent = 0f64;
    for t in 0..6u32 {
        let history: Vec<u32> = (0..3).map(|j| (t * 3 + j) % num_items).collect();
        let k = 3 + (t as usize % 3);
        let expected = recommend_body(k, &fitted.fitted.recommend_items(&history, k));
        let ids: Vec<String> = history.iter().map(u32::to_string).collect();
        let body = format!("{{\"history\":[{}],\"k\":{k}}}", ids.join(","));
        let (status, got) = request(&addr, "POST", "/recommend", body.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(got, expected, "recommend {t} diverged with a shadow armed");
        sent += 1.0;
    }
    for t in 0..4u32 {
        let item = (t * 5) % num_items;
        let k = 2 + (t as usize % 3);
        let expected = target_body(k, &fitted.fitted.target_users(item, k));
        let body = format!("{{\"item\":{item},\"k\":{k}}}");
        let (status, got) = request(&addr, "POST", "/target", body.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(got, expected, "target {t} diverged with a shadow armed");
        sent += 1.0;
    }

    // at sample rate 1.0 every answered query becomes a pair; A/A means
    // perfect overlap and zero score delta
    let text = await_pairs(&addr, sent);
    assert_eq!(metric_value(&text, "unimatch_shadow_sample_rate"), 1.0);
    assert_eq!(
        metric_value(&text, "unimatch_shadow_pairs_total{route=\"recommend\"}"),
        6.0
    );
    assert_eq!(metric_value(&text, "unimatch_shadow_pairs_total{route=\"target\"}"), 4.0);
    assert_eq!(metric_value(&text, "unimatch_shadow_dropped_total"), 0.0);
    assert_eq!(
        metric_value(&text, "unimatch_shadow_overlap_ratio"),
        1.0,
        "an A/A shadow must agree with the primary exactly"
    );
    assert_eq!(metric_value(&text, "unimatch_shadow_score_delta_mean"), 0.0);
    assert!(metric_value(&text, "unimatch_shadow_lag_us_count") >= sent);
    assert!(metric_value(&text, "unimatch_shadow_exec_us_count") >= sent);
    assert_eq!(metric_value(&text, "unimatch_shadow_model_version"), 1.0);

    // the healthz block reports the shadow deployment and its progress
    let (status, health) = request(&addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    let health = String::from_utf8(health).expect("utf8 healthz");
    assert!(health.contains("\"shadow\""), "healthz missing the shadow block: {health}");
    assert!(health.contains("\"sample_rate\":1"), "{health}");
    assert!(health.contains("\"pairs\":10"), "{health}");
    assert!(health.contains("\"dropped\":0"), "{health}");
    assert!(health.contains("\"overlap\":1"), "{health}");
}

#[test]
fn divergent_shadow_compares_without_perturbing_the_primary() {
    let (dir, log, cfg) = fixture("ab");
    let path_a = dir.join("model.json");
    let path_b = dir.join("b.json");
    // a different seed trains a genuinely different model for the shadow
    let model_b = UniMatch::new(UniMatchConfig { seed: 77, ..cfg.clone() }).fit(log.clone());
    save_model(&model_b.model, &path_b).expect("save b");

    let primary = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg.clone()), &path_a, log.clone())
            .expect("primary checkpoint"),
    );
    let shadow = Arc::new(
        ModelHandle::from_checkpoint(UniMatch::new(cfg), &path_b, log)
            .expect("shadow checkpoint"),
    );
    let server = Server::start_with_shadow(
        "127.0.0.1:0",
        primary.clone(),
        ServeConfig { batch_window: Duration::from_millis(1), ..Default::default() },
        Some(ShadowSpec::new(shadow, 1.0)),
    )
    .expect("bind");
    let addr = server.addr().to_string();
    let fitted = primary.current();

    let mut sent = 0f64;
    for t in 0..8u32 {
        let history = vec![t, t + 1, t + 2];
        let expected = recommend_body(5, &fitted.fitted.recommend_items(&history, 5));
        let body = format!("{{\"history\":[{},{},{}],\"k\":5}}", t, t + 1, t + 2);
        let (status, got) = request(&addr, "POST", "/recommend", body.as_bytes());
        assert_eq!(status, 200);
        assert_eq!(got, expected, "primary bytes must come from model A, never the shadow");
        sent += 1.0;
    }

    let text = await_pairs(&addr, sent);
    assert_eq!(metric_value(&text, "unimatch_shadow_dropped_total"), 0.0);
    let overlap = metric_value(&text, "unimatch_shadow_overlap_ratio");
    assert!((0.0..=1.0).contains(&overlap), "overlap ratio out of range: {overlap}");
    assert!(
        overlap < 1.0 || metric_value(&text, "unimatch_shadow_score_delta_mean") > 0.0,
        "two independently-trained models agreed bit-for-bit across 8 queries — \
         the paired comparison is not comparing the shadow's answers:\n{text}"
    );
}
